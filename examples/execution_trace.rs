//! Watch an asynchronous execution unfold: Algorithm 2 with a crash,
//! rendered as a structured trace (starts, deliveries, drops, crashes,
//! terminations with virtual timestamps).
//!
//! ```sh
//! cargo run --example execution_trace
//! ```

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::CrashMultiDownload;
use dr_download::sim::{render_trace, CrashPlan, SimBuilder, StandardAdversary, UniformDelay};

fn main() {
    let (n, k, b) = (32usize, 4usize, 1usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .expect("valid parameters");
    let sim = SimBuilder::new(params)
        .seed(5)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(2)], 2),
        ))
        .trace()
        .build();
    let input = sim.input().clone();
    let report = sim.run().expect("no deadlock");
    report.verify_downloads(&input).expect("exact download");

    println!("Algorithm 2, n = {n}, k = {k}, peer 2 crashes after its second step:\n");
    print!("{}", render_trace(report.trace.as_ref().expect("trace on")));
    println!("\nall surviving peers downloaded the exact input;");
    println!(
        "Q = {} queries (naive = {n}), {} messages, T = {:.2} units",
        report.max_nonfaulty_queries, report.messages_sent, report.virtual_time_units
    );
}
