//! Theorem 3.1/3.2 made tangible: under a Byzantine majority, any peer
//! that skips even one query can be fooled.
//!
//! Runs the two-execution indistinguishability attack against four
//! protocols. Everything that queries fewer than `n` bits is defeated
//! (wrong output at the flipped bit); the naive protocol — the only one
//! paying `Q = n` — survives. This is exactly the paper's dichotomy: for
//! `β ≥ 1/2` the naive protocol is optimal.
//!
//! ```sh
//! cargo run --example majority_attack
//! ```

use dr_download::core::PeerId;
use dr_download::protocols::lower_bound::{deterministic_attack, randomized_attack, AttackOutcome};
use dr_download::protocols::{
    BalancedDownload, CommitteeDownload, NaiveDownload, TwoCycleDownload, TwoCyclePlan,
};

fn main() {
    let (n, k) = (256usize, 8usize);
    println!("deterministic indistinguishability attack (n = {n}, k = {k}, coalition = k−1):\n");

    let outcomes: Vec<(&str, AttackOutcome)> = vec![
        (
            "naive (Q = n)",
            deterministic_attack(n, k, PeerId(0), |_| NaiveDownload::new(), 1),
        ),
        (
            "balanced work-sharing",
            deterministic_attack(n, k, PeerId(0), move |_| BalancedDownload::new(n, k), 2),
        ),
        (
            "committee (t = 2)",
            deterministic_attack(n, k, PeerId(0), move |_| CommitteeDownload::new(n, k, 2), 3),
        ),
    ];
    for (name, outcome) in outcomes {
        match outcome {
            AttackOutcome::FullyQueried { queries } => {
                println!("  {name:24} -> SURVIVES ({queries} queries — paid the full price)");
            }
            AttackOutcome::Violated {
                flipped_index,
                queries,
            } => println!(
                "  {name:24} -> FOOLED   (queried only {queries}/{n}; wrong bit at index {flipped_index})"
            ),
            AttackOutcome::NoTermination { flipped_index } => {
                println!("  {name:24} -> HUNG     (blocked forever; flipped bit {flipped_index})");
            }
        }
    }

    println!("\nrandomized attack (Thm 3.2) on a sampler with budget n/p:");
    for p in [2usize, 4, 8] {
        let plan = TwoCyclePlan::Sampled {
            segments: p,
            threshold: 1,
        };
        let stats = randomized_attack(
            512,
            8,
            PeerId(0),
            move |_| TwoCycleDownload::with_plan(512, 8, 0, plan),
            12,
            24,
            70 + p as u64,
        );
        // The target survives only if it sampled the flipped segment
        // itself (prob 1/p) or no claim covered it (forcing the direct-
        // query fallback): violation ≈ (1 − 1/p) · coverage.
        let coverage = 1.0 - (1.0 - 1.0 / p as f64).powi(7);
        println!(
            "  budget ≈ n/{p}: violation rate {:.2} (prediction ≈ {:.2})",
            stats.violation_rate(),
            (1.0 - 1.0 / p as f64) * coverage,
        );
    }
    println!("\nconclusion: below Q = n, a Byzantine majority always wins — query everything.");
}
