//! Quickstart: download a 4096-bit source with 16 peers while half of
//! them crash mid-protocol under adversarial message delays.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::CrashMultiDownload;
use dr_download::sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};

fn main() {
    let (n, k, b) = (4096usize, 16usize, 8usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .expect("valid parameters");

    // The adversary crashes peers 0..8 just after their first step and
    // delays every message by an arbitrary fraction of the time unit.
    let victims: Vec<PeerId> = (0..b).map(PeerId).collect();
    let adversary =
        StandardAdversary::new(UniformDelay::new(), CrashPlan::before_event(victims, 1));

    let sim = SimBuilder::new(params)
        .seed(2025)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(adversary)
        .build();

    let input = sim.input().clone();
    let report = sim.run().expect("protocol must not deadlock");
    report
        .verify_downloads(&input)
        .expect("every surviving peer downloads the exact input");

    println!(
        "Download complete under beta = {:.2} crash faults",
        b as f64 / k as f64
    );
    println!(
        "  peers               : {k} ({} crashed)",
        report.crashed.len()
    );
    println!("  input bits          : {n}");
    println!("  naive cost would be : {n} queries per peer");
    println!(
        "  measured Q          : {} queries (max over surviving peers)",
        report.max_nonfaulty_queries
    );
    println!(
        "  theory bound        : ~{} (n/k · 1/(1−β) + n/k)",
        (n / k) * 2 + n / k
    );
    println!("  messages sent       : {}", report.messages_sent);
    println!(
        "  virtual time        : {:.1} units",
        report.virtual_time_units
    );
}
