//! The paper's motivating application (§4): a blockchain oracle network
//! pulling a price feed from off-chain sources.
//!
//! Compares the classical sample-and-median Oracle Data Collection
//! (Theorem 4.1) against the Download-based pipeline (Theorem 4.2) on the
//! same fleet: 128 oracle nodes (12 Byzantine), 7 data sources (2 lying),
//! a 128-cell feed.
//!
//! ```sh
//! cargo run --release --example blockchain_oracle
//! ```

use dr_download::oracle::{run_baseline, run_download_based, DownloadEngine, OracleConfig};

fn main() {
    let config = OracleConfig {
        nodes: 128,
        byz_nodes: 12,
        honest_sources: 5,
        corrupt_sources: 2,
        cells: 128,
        truth_base: 1_000_000,
        spread: 250,
        seed: 7,
    };
    println!(
        "oracle network: {} nodes ({} byzantine), {} sources ({} corrupt), {} cells\n",
        config.nodes,
        config.byz_nodes,
        config.sources(),
        config.corrupt_sources,
        config.cells
    );

    let baseline = run_baseline(&config, config.sources());
    println!("baseline ODC (every node reads every source — Thm 4.1):");
    println!("  total source reads : {} bits", baseline.total_read_bits);
    println!(
        "  max per node       : {} bits",
        baseline.max_node_read_bits
    );
    println!("  ODD honest-range ok: {}\n", baseline.odd_satisfied());

    let download = run_download_based(&config, DownloadEngine::TwoCycle);
    println!("download-based ODC (one 2-cycle Download per source — Thm 4.2):");
    println!("  total source reads : {} bits", download.total_read_bits);
    println!(
        "  max per node       : {} bits",
        download.max_node_read_bits
    );
    println!("  ODD honest-range ok: {}", download.odd_satisfied());
    println!(
        "  saving             : {:.1}x total, {:.1}x per node",
        baseline.total_read_bits as f64 / download.total_read_bits as f64,
        baseline.max_node_read_bits as f64 / download.max_node_read_bits as f64
    );

    assert!(baseline.odd_satisfied() && download.odd_satisfied());
    println!(
        "\npublished feed head: {:?} …",
        &download.published[..4.min(download.published.len())]
    );
}
