//! The same protocol state machines, real OS threads: one thread per
//! peer, crossbeam channels as the network, genuine scheduler
//! nondeterminism plus injected latency jitter, and live crash injection.
//!
//! ```sh
//! cargo run --release --example threaded_peers
//! ```

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::CrashMultiDownload;
use dr_download::runtime::{run_threaded, CrashSpec, RuntimeConfig};

fn main() {
    let (n, k, b) = (2048usize, 8usize, 3usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .expect("valid parameters");

    let config = RuntimeConfig::new(params, 99)
        .with_crash(CrashSpec {
            peer: PeerId(0),
            after_events: 0, // dies before its first step
        })
        .with_crash(CrashSpec {
            peer: PeerId(5),
            after_events: 3, // dies mid-protocol
        });

    println!("spawning {k} peer threads, crashing p0 and p5, n = {n} bits …");
    let report = run_threaded(config, move |_| CrashMultiDownload::new(n, k, b))
        .expect("live peers must terminate");
    report
        .verify(&[PeerId(0), PeerId(5)])
        .expect("every live peer downloaded the exact input");

    println!("done in {:?} wall-clock", report.elapsed);
    println!("per-peer query counts: {:?}", report.query_counts);
    println!(
        "max queries by a live peer: {} (naive would be {n})",
        report.max_honest_queries
    );
}
