//! Byzantine-minority Download (`β < 1/2`): the deterministic committee
//! protocol against the randomized 2-cycle and multi-cycle protocols,
//! under an actively hostile Byzantine coalition.
//!
//! ```sh
//! cargo run --release --example byzantine_minority
//! ```

use dr_download::core::{FaultModel, ModelParams, PeerId, SegmentId, Segmentation};
use dr_download::protocols::byz::strategies::{CollusionGroup, Equivocator, RandomNoise};
use dr_download::protocols::{
    CommitteeDownload, MultiCycleDownload, TwoCycleDownload, TwoCyclePlan,
};
use dr_download::sim::{RunReport, SimBuilder};

fn params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .expect("valid parameters")
}

/// Attaches a hostile mix: equivocators, a τ-crossing collusion group,
/// and noise.
fn hostile<M: dr_download::core::ProtocolMessage>(
    mut builder: SimBuilder<M>,
    b: usize,
    seg: Segmentation,
) -> SimBuilder<M>
where
    Equivocator: dr_download::sim::Agent<M>,
    CollusionGroup: dr_download::sim::Agent<M>,
    RandomNoise: dr_download::sim::Agent<M>,
{
    for i in 0..b {
        builder = match i % 3 {
            0 => builder.byzantine(PeerId(i), Equivocator::new(seg, SegmentId(i % seg.count()))),
            1 => builder.byzantine(PeerId(i), CollusionGroup::new(seg, SegmentId(0), 1)),
            _ => builder.byzantine(PeerId(i), RandomNoise::new(seg)),
        };
    }
    builder
}

fn show(name: &str, n: usize, report: &RunReport) {
    println!(
        "  {name:22} Q = {:6}  (naive would be {n}),  M = {:7},  T = {:.1}",
        report.max_nonfaulty_queries, report.messages_sent, report.virtual_time_units
    );
}

fn main() {
    let (n, k, b) = (1usize << 15, 256usize, 32usize);
    println!(
        "n = {n}, k = {k}, b = {b} Byzantine (beta = {:.2}) — hostile mix of\n\
         equivocators, colluders, and noise generators\n",
        b as f64 / k as f64
    );

    // Deterministic committee protocol.
    {
        let sim = SimBuilder::new(params(n, k, b))
            .seed(1)
            .protocol(move |_| CommitteeDownload::new(n, k, b))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        show("committee (Thm 3.4)", n, &report);
    }

    // Randomized 2-cycle protocol under attack.
    {
        let seg = match TwoCyclePlan::choose(n, k, b) {
            TwoCyclePlan::Sampled { segments, .. } => Segmentation::new(n, segments),
            TwoCyclePlan::Naive => panic!("expected sampled plan at this size"),
        };
        let builder = SimBuilder::new(params(n, k, b))
            .seed(2)
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        let sim = hostile(builder, b, seg).build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        show("2-cycle (Thm 3.7)", n, &report);
    }

    // Randomized multi-cycle protocol under attack.
    {
        use dr_download::protocols::MultiCyclePlan;
        let seg = match MultiCyclePlan::choose(n, k, b) {
            MultiCyclePlan::Sampled {
                initial_segments, ..
            } => Segmentation::new(n, initial_segments),
            MultiCyclePlan::Naive => panic!("expected sampled plan at this size"),
        };
        let builder = SimBuilder::new(params(n, k, b))
            .seed(3)
            .protocol(move |_| MultiCycleDownload::new(n, k, b));
        let sim = hostile(builder, b, seg).build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        show("multi-cycle (Thm 3.12)", n, &report);
    }

    println!("\nevery protocol delivered the exact input to every honest peer;");
    println!("the Byzantine coalition only managed to inflate query counts.");
}
