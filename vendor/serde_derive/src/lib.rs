//! `#[derive(Serialize, Deserialize)]` for the offline vendored `serde`.
//!
//! Implemented directly over `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! derives: structs with named fields, tuple/newtype structs, unit
//! structs, and enums whose variants are all unit variants. Anything
//! fancier (generics, data-carrying variants) produces a compile error
//! naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Strips `#[...]` attribute pairs and visibility modifiers from a token
/// sequence.
fn strip_meta(tokens: Vec<TokenTree>) -> Vec<TokenTree> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Drop the following [...] group (the attribute body).
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Drop an optional (crate)/(super)/(in ...) qualifier.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => out.push(tt),
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens = strip_meta(input.into_iter().collect());
    let mut iter = tokens.into_iter().peekable();
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    break word;
                }
            }
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".into()),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive for generic type `{name}` (vendored serde limitation)"
        ));
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::UnitEnum {
            name,
            variants: parse_unit_variants(g.stream())?,
        }),
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok(Item::UnitStruct { name })
        }
        _ => Err(format!("unsupported item shape for `{name}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens = strip_meta(body.into_iter().collect());
    let mut fields = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let field = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        fields.push(field);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens = strip_meta(body.into_iter().collect());
    let mut variants = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let variant = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        match iter.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(other) => {
                return Err(format!(
                    "variant `{variant}` is not a unit variant (found `{other}`); \
                     vendored serde only derives unit-variant enums"
                ))
            }
        }
    }
    Ok(variants)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens = strip_meta(body.into_iter().collect());
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1usize;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {} }}))\n\
                     }}\n\
                 }}",
                arms.join(" ")
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(" ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..arity)
                .map(|i| format!("::serde::element(value, {i})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\"unknown {name} variant '{{other}}'\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().unwrap()
}
