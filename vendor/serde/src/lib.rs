//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace ships a
//! small self-contained serialization framework under the `serde` name.
//! It is value-model based rather than visitor based: types convert to and
//! from a JSON-like [`Value`], and the [`json`] module renders/parses
//! JSON text. The `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` crate, enabled via the `derive` feature) cover
//! plain structs with named fields, newtype/tuple structs, and enums with
//! unit variants — everything this workspace derives.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like data value. Integer values keep full 64-bit fidelity.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a data value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data value.
    ///
    /// # Errors
    ///
    /// Fails when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected integer, found {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected integer, found {}", other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!(
                "expected number, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// Shared-pointer transparency (real serde's `rc` feature): an
// `Arc<T>` serializes exactly as a `T` and deserializes into a fresh,
// unshared allocation.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Extracts and deserializes one field of a [`Value::Map`]. Used by the
/// generated `Deserialize` impls.
///
/// # Errors
///
/// Fails when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Map(_) => {
            let v = value
                .get(name)
                .ok_or_else(|| Error::msg(format!("missing field '{name}'")))?;
            T::from_value(v).map_err(|e| Error::msg(format!("field '{name}': {}", e.0)))
        }
        other => Err(Error::msg(format!(
            "expected object, found {}",
            other.type_name()
        ))),
    }
}

/// Extracts element `index` of a [`Value::Seq`]. Used by the generated
/// `Deserialize` impls for tuple structs.
///
/// # Errors
///
/// Fails when the element is missing or has the wrong shape.
pub fn element<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
    match value {
        Value::Seq(items) => {
            let v = items
                .get(index)
                .ok_or_else(|| Error::msg(format!("missing element {index}")))?;
            T::from_value(v)
        }
        other => Err(Error::msg(format!(
            "expected array, found {}",
            other.type_name()
        ))),
    }
}

pub mod json {
    //! JSON rendering and parsing over [`Value`](super::Value).

    use super::{Deserialize, Error, Serialize, Value};

    /// Renders a value as compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        write_value(&v.to_value(), &mut out, None, 0);
        out
    }

    /// Renders a value as indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        write_value(&v.to_value(), &mut out, Some(2), 0);
        out
    }

    /// Parses JSON text into a `T`.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a shape mismatch.
    pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Parses JSON text into a raw [`Value`].
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or trailing input.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {pos}")));
        }
        Ok(v)
    }

    fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats distinguishable from integers in JSON.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Seq(items) => {
                write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                    write_value(&items[i], out, indent, d);
                });
            }
            Value::Map(entries) => {
                write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                    let (k, val) = &entries[i];
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, d);
                });
            }
        }
    }

    fn write_bracketed(
        out: &mut String,
        open: char,
        close: char,
        len: usize,
        indent: Option<usize>,
        depth: usize,
        mut item: impl FnMut(&mut String, usize, usize),
    ) {
        out.push(open);
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * (depth + 1)));
            }
            item(out, i, depth + 1);
        }
        if len > 0 {
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * depth));
            }
        }
        out.push(close);
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
        if bytes[*pos..].starts_with(token.as_bytes()) {
            *pos += token.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected '{token}' at byte {}", *pos)))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                loop {
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) == Some(&b']') {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    if !items.is_empty() {
                        expect(bytes, pos, ",")?;
                    }
                    items.push(parse_value(bytes, pos)?);
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                loop {
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) == Some(&b'}') {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    if !entries.is_empty() {
                        expect(bytes, pos, ",")?;
                        skip_ws(bytes, pos);
                    }
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, ":")?;
                    let value = parse_value(bytes, pos)?;
                    entries.push((key, value));
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
        expect(bytes, pos, "\"")?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let text =
            std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::json;
    use super::Value;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string(&String::from("a\"b")), "\"a\\\"b\"");
        assert_eq!(json::from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let text = json::to_string(&v);
        assert_eq!(text, "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u64>>(&text).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(json::to_string(&opt), "null");
        assert_eq!(json::from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn map_value_round_trips() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = json::to_string(&v);
        assert_eq!(text, "{\"a\":1,\"b\":[true,null]}");
        assert_eq!(json::parse(&text).unwrap(), v);
        let pretty = json::to_string_pretty(&v);
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_fidelity_preserved() {
        let big = u64::MAX;
        let text = json::to_string(&big);
        assert_eq!(json::from_str::<u64>(&text).unwrap(), big);
    }

    #[test]
    fn errors_are_reported() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::from_str::<u64>("\"x\"").is_err());
        assert!(super::field::<u64>(&Value::Map(vec![]), "missing").is_err());
    }
}
