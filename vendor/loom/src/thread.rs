//! Instrumented thread spawn/join. Inside a model, spawned closures become
//! scheduler-managed model threads; outside, these are thin wrappers over
//! `std::thread`.

use crate::rt::{self, Abort, Scheduler};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<Scheduler>,
        tid: rt::Tid,
        os: std::thread::JoinHandle<()>,
        slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    },
}

pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    /// Like `std::thread::JoinHandle::join`. Under a model this is a
    /// scheduler blocking point; if the joined thread was unwound by a model
    /// abort the joiner unwinds too (the root `model` call reports why).
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Std(handle) => handle.join(),
            Imp::Model {
                sched,
                tid,
                os,
                slot,
            } => {
                let (cur, me) = rt::current()
                    .expect("loom: JoinHandle::join called from outside the model execution");
                cur.yield_point(me);
                cur.join_thread(me, tid);
                let _ = os.join();
                let taken = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                match taken {
                    Some(result) => result,
                    // The child never produced a result: it was unwound by an
                    // abort (deadlock / another thread's panic). Unwind the
                    // joiner as well so the execution can be torn down.
                    None => sched.abort_unwind(),
                }
            }
        }
    }
}

/// Like `std::thread::spawn`, but inside a model the new thread is
/// registered with the scheduler before it runs and only executes when
/// scheduled. Registration happens at a yield point, so schedules where the
/// child runs before the spawner's next operation are explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((sched, me)) = rt::current() {
        let tid = sched.register_thread();
        let slot: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
        let (sched2, slot2) = (sched.clone(), slot.clone());
        let os = std::thread::Builder::new()
            .name(format!("loom-t{tid}"))
            .spawn(move || {
                rt::set_ctx(&sched2, tid);
                sched2.first_schedule(tid);
                let res = panic::catch_unwind(AssertUnwindSafe(f));
                let payload = match res {
                    Ok(value) => {
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
                        None
                    }
                    Err(p) if p.is::<Abort>() => None,
                    Err(p) => Some(p),
                };
                sched2.finish_thread(tid, payload);
            })
            .expect("loom: failed to spawn model thread");
        sched.yield_point(me);
        JoinHandle(Imp::Model {
            sched,
            tid,
            os,
            slot,
        })
    } else {
        JoinHandle(Imp::Std(std::thread::spawn(f)))
    }
}

/// Yield point under a model; `std::thread::yield_now` otherwise.
pub fn yield_now() {
    if let Some((sched, me)) = rt::current() {
        sched.yield_point(me);
    } else {
        std::thread::yield_now();
    }
}
