#![forbid(unsafe_code)]
//! Vendored stand-in for the [`loom`](https://github.com/tokio-rs/loom)
//! concurrency model checker, written offline for this workspace.
//!
//! [`model`] runs a closure under a deterministic scheduler that owns every
//! interleaving decision: each instrumented operation (mutex lock/unlock,
//! condvar wait/notify, atomic access, spawn/join) is a *yield point* where
//! the scheduler picks which runnable thread proceeds. The choice is recorded
//! in a schedule trace; after each execution the trace is advanced
//! depth-first, so repeated executions enumerate **every** schedule of the
//! instrumented operations. Blocked-thread cycles are reported as deadlocks,
//! and a panic on any explored schedule is resumed on the caller with the
//! execution count that triggered it.
//!
//! Differences from real loom, accepted for this offline stand-in:
//!
//! - **Sequential consistency only.** Atomics are serialized at yield points;
//!   weak-memory reorderings (`Relaxed`/`Acquire`/`Release` subtleties) are
//!   not modeled. This checks lock/wakeup/protocol logic, not fence choice —
//!   the `atomic-ordering` lint covers ordering justification separately.
//! - **No spurious condvar wakeups.** `Condvar::wait` returns only after a
//!   notify (callers must loop on their predicate anyway; the lost-wakeup
//!   schedules this tool explores are the bugs that matter).
//! - `notify_one` wakes the lowest-id waiter instead of branching over the
//!   choice of waiter. Use `notify_all` in modeled code (the execution plane
//!   does).
//! - Mutexes and condvars must be **created inside the model closure** (the
//!   scheduler must know every blocking primitive). Using one created outside
//!   panics with a descriptive message. Atomics created outside the model are
//!   tolerated but uninstrumented.
//!
//! Outside a model, every primitive falls back to plain `std::sync`
//! behavior, so code built with the `loom-model` feature still runs normally
//! when not under [`model`].

mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;
