//! Instrumented atomics. Under a model every access is a scheduler yield
//! point and executes sequentially consistent regardless of the ordering
//! argument (the stand-in does not model weak memory — see the crate docs).
//! Outside a model they delegate to `std` untouched.

use crate::rt::ModelHandle;

pub use std::sync::atomic::Ordering;

macro_rules! atomic_int {
    ($name:ident, $std:ident, $prim:ty) => {
        pub struct $name {
            model: Option<ModelHandle>,
            inner: std::sync::atomic::$std,
        }

        impl $name {
            pub fn new(value: $prim) -> Self {
                Self {
                    model: ModelHandle::new_if_in_model(),
                    inner: std::sync::atomic::$std::new(value),
                }
            }

            fn pre(&self) {
                if let Some(h) = &self.model {
                    if let Some((sched, me)) = h.ctx() {
                        sched.yield_point(me);
                    }
                }
            }

            pub fn load(&self, _order: Ordering) -> $prim {
                self.pre();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, value: $prim, _order: Ordering) {
                self.pre();
                self.inner.store(value, Ordering::SeqCst)
            }

            pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                self.pre();
                self.inner.swap(value, Ordering::SeqCst)
            }

            pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                self.pre();
                self.inner.fetch_add(value, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                self.pre();
                self.inner.fetch_sub(value, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, value: $prim, _order: Ordering) -> $prim {
                self.pre();
                self.inner.fetch_max(value, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.pre();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                // The stand-in never fails spuriously; weak == strong here.
                self.compare_exchange(current, new, _success, _failure)
            }

            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::SeqCst))
                    .finish()
            }
        }
    };
}

atomic_int!(AtomicUsize, AtomicUsize, usize);
atomic_int!(AtomicU64, AtomicU64, u64);
atomic_int!(AtomicU32, AtomicU32, u32);
atomic_int!(AtomicU8, AtomicU8, u8);

pub struct AtomicBool {
    model: Option<ModelHandle>,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub fn new(value: bool) -> Self {
        Self {
            model: ModelHandle::new_if_in_model(),
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    fn pre(&self) {
        if let Some(h) = &self.model {
            if let Some((sched, me)) = h.ctx() {
                sched.yield_point(me);
            }
        }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        self.pre();
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, value: bool, _order: Ordering) {
        self.pre();
        self.inner.store(value, Ordering::SeqCst)
    }

    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        self.pre();
        self.inner.swap(value, Ordering::SeqCst)
    }

    pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
        self.pre();
        self.inner.fetch_or(value, Ordering::SeqCst)
    }

    pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
        self.pre();
        self.inner.fetch_and(value, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.pre();
        self.inner
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.inner.load(Ordering::SeqCst))
            .finish()
    }
}
