//! Instrumented drop-ins for `std::sync` primitives. Inside a [`crate::model`]
//! execution every operation is a scheduler yield point; outside one they
//! behave exactly like their `std` counterparts.

use crate::rt::{self, ModelHandle};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::{Arc, LockResult, PoisonError, Weak};

pub mod atomic;

/// Mutex whose lock/unlock are scheduling points under a model.
///
/// The real storage and poisoning semantics are delegated to a `std` mutex;
/// the scheduler serializes logical ownership, so the inner lock is always
/// uncontended by the time it is taken.
pub struct Mutex<T> {
    model: Option<ModelHandle>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            model: ModelHandle::new_if_in_model(),
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = self.model_ctx("Mutex") {
            let obj = self.model.as_ref().map(|h| h.obj).unwrap_or_default();
            sched.yield_point(me);
            sched.acquire(me, obj);
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Scheduler context when — and only when — both this primitive and the
    /// calling thread belong to the same live model execution. Blocking
    /// primitives that straddle the model boundary would hang the real OS
    /// threads behind the scheduler's back, so that misuse panics loudly.
    fn model_ctx(&self, what: &str) -> Option<(std::sync::Arc<crate::rt::Scheduler>, usize)> {
        let in_model = rt::current().is_some();
        match (&self.model, in_model) {
            (Some(h), true) => match h.ctx() {
                Some(ctx) => Some(ctx),
                None => panic!(
                    "loom: {what} created under a different model execution used inside a model; \
                     create primitives inside the model closure"
                ),
            },
            (None, true) => {
                if std::thread::panicking() {
                    // Unwinding drop glue may touch pre-model primitives;
                    // degrade instead of double-panicking.
                    return None;
                }
                panic!(
                    "loom: {what} created outside loom::model used inside a model; \
                     create primitives inside the model closure"
                )
            }
            _ => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard mirroring `std::sync::MutexGuard`; dropping it releases the real
/// lock first and then the scheduler's logical ownership.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("loom: guard already released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("loom: guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: the std guard must be gone before logical release,
        // so the next logical owner finds the inner mutex free.
        self.inner.take();
        if let Some(h) = &self.lock.model {
            if let Some((sched, me)) = h.ctx() {
                sched.release(me, h.obj);
            }
        }
    }
}

/// Condvar whose wait/notify are scheduling points under a model.
pub struct Condvar {
    model: Option<ModelHandle>,
    inner: StdCondvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            model: ModelHandle::new_if_in_model(),
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let in_model = rt::current().is_some();
        if in_model {
            let (cv, mtx) = match (&self.model, &guard.lock.model) {
                (Some(cv), Some(mtx)) if cv.ctx().is_some() && mtx.ctx().is_some() => (cv, mtx),
                _ => panic!(
                    "loom: Condvar::wait needs both the condvar and the mutex to be created \
                     inside the model closure"
                ),
            };
            let (sched, me) = cv.ctx().expect("checked above");
            let lock = guard.lock;
            // Drop only the std guard; logical release happens atomically
            // with parking inside the scheduler. Forget the wrapper so its
            // Drop cannot release logical ownership a second time.
            guard.inner.take();
            std::mem::forget(guard);
            sched.cv_wait(me, cv.obj, mtx.obj);
            return match lock.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                })),
            };
        }
        let lock = guard.lock;
        let std_guard = guard.inner.take().expect("loom: guard already released");
        std::mem::forget(guard);
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(p.into_inner()),
            })),
        }
    }

    pub fn notify_one(&self) {
        if let Some(h) = &self.model {
            if let Some((sched, me)) = h.ctx() {
                sched.yield_point(me);
                sched.notify(h.obj, false);
                return;
            }
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(h) = &self.model {
            if let Some((sched, me)) = h.ctx() {
                sched.yield_point(me);
                sched.notify(h.obj, true);
                return;
            }
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
