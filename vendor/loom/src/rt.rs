//! The deterministic scheduler: one OS thread per model thread, exactly one
//! of them runnable in user code at any instant, and a depth-first-explored
//! trace of every multi-way scheduling decision.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Weak};

pub(crate) type Tid = usize;

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (deadlock, nondeterminism, or another thread's failure). Filtered
/// out before anything escapes to the caller of [`model`].
pub(crate) struct Abort;

/// Upper bound on scheduling decisions recorded in a single execution; a
/// model that exceeds it is looping at a yield point and will never converge.
const MAX_BRANCHES: usize = 1_000_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    Runnable,
    /// Waiting to acquire the mutex with this object id.
    BlockedLock(usize),
    /// Parked on the condvar with this object id.
    BlockedCv(usize),
    /// Waiting for this thread id to finish.
    BlockedJoin(Tid),
    Finished,
}

/// One recorded scheduling decision: which runnable threads existed, and
/// which index into that set was chosen. Only points with more than one
/// choice are recorded — single-choice points replay identically for free.
struct Branch {
    choices: Vec<Tid>,
    chosen: usize,
}

struct Inner {
    states: Vec<State>,
    active: Option<Tid>,
    /// Logical mutex ownership, indexed by object id (condvars allocate an
    /// id from the same space; their slot is simply unused).
    mutex_owner: Vec<Option<Tid>>,
    schedule: Vec<Branch>,
    /// Next index into `schedule` to replay; past the end we are recording.
    pos: usize,
    abort: Option<String>,
    panic_payload: Option<Box<dyn Any + Send + 'static>>,
    finished: usize,
}

pub(crate) struct Scheduler {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
}

impl Scheduler {
    fn new(schedule: Vec<Branch>) -> Self {
        Scheduler {
            inner: StdMutex::new(Inner {
                states: Vec::new(),
                active: None,
                mutex_owner: Vec::new(),
                schedule,
                pos: 0,
                abort: None,
                panic_payload: None,
                finished: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_inner(&self) -> StdMutexGuard<'_, Inner> {
        // A model thread can panic (deliberately) while the scheduler lock is
        // *about* to be taken elsewhere; the scheduler's own state is always
        // consistent at panic points, so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_thread(&self) -> Tid {
        let mut g = self.lock_inner();
        g.states.push(State::Runnable);
        g.states.len() - 1
    }

    fn set_active(&self, tid: Tid) {
        self.lock_inner().active = Some(tid);
    }

    pub(crate) fn alloc_obj(&self) -> usize {
        let mut g = self.lock_inner();
        g.mutex_owner.push(None);
        g.mutex_owner.len() - 1
    }

    /// Record `me`'s new state, pick the next thread to run, and (unless `me`
    /// finished) block until `me` is scheduled again. This is the single
    /// place every scheduling decision flows through.
    fn switch<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, Inner>,
        me: Tid,
        state: State,
    ) -> StdMutexGuard<'a, Inner> {
        g.states[me] = state;
        if state == State::Finished {
            g.finished += 1;
        }
        if g.abort.is_some() {
            self.cv.notify_all();
            if state == State::Finished {
                return g;
            }
            drop(g);
            panic::panic_any(Abort);
        }
        let choices: Vec<Tid> = g
            .states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == State::Runnable)
            .map(|(t, _)| t)
            .collect();
        if choices.is_empty() {
            if g.finished == g.states.len() {
                g.active = None;
                self.cv.notify_all();
                return g;
            }
            let dump: Vec<String> = g
                .states
                .iter()
                .enumerate()
                .map(|(t, s)| format!("t{t}:{s:?}"))
                .collect();
            g.abort = Some(format!(
                "deadlock: no runnable thread [{}]",
                dump.join(", ")
            ));
            g.active = None;
            self.cv.notify_all();
            if state == State::Finished {
                return g;
            }
            drop(g);
            panic::panic_any(Abort);
        }
        let next = if choices.len() == 1 {
            choices[0]
        } else if g.pos < g.schedule.len() {
            let p = g.pos;
            if g.schedule[p].choices != choices {
                g.abort = Some(format!(
                    "nondeterministic model: replay expected runnable set {:?}, found {:?} \
                     (model closures must be deterministic between scheduling decisions)",
                    g.schedule[p].choices, choices
                ));
                self.cv.notify_all();
                if state == State::Finished {
                    return g;
                }
                drop(g);
                panic::panic_any(Abort);
            }
            g.pos += 1;
            choices[g.schedule[p].chosen]
        } else {
            if g.schedule.len() >= MAX_BRANCHES {
                g.abort = Some(format!(
                    "schedule exceeded {MAX_BRANCHES} decisions in one execution; \
                     the model is looping at a yield point"
                ));
                self.cv.notify_all();
                if state == State::Finished {
                    return g;
                }
                drop(g);
                panic::panic_any(Abort);
            }
            g.schedule.push(Branch {
                choices: choices.clone(),
                chosen: 0,
            });
            g.pos += 1;
            choices[0]
        };
        g.active = Some(next);
        self.cv.notify_all();
        if state == State::Finished {
            return g;
        }
        self.wait_scheduled(g, me)
    }

    fn wait_scheduled<'a>(
        &'a self,
        mut g: StdMutexGuard<'a, Inner>,
        me: Tid,
    ) -> StdMutexGuard<'a, Inner> {
        loop {
            if g.abort.is_some() {
                drop(g);
                panic::panic_any(Abort);
            }
            if g.states[me] == State::Runnable && g.active == Some(me) {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain interleaving point: every instrumented operation calls this
    /// first, letting any other runnable thread run instead.
    pub(crate) fn yield_point(&self, me: Tid) {
        if std::thread::panicking() {
            // Drop paths during unwinding must not re-panic or reschedule.
            return;
        }
        let g = self.lock_inner();
        let g = self.switch(g, me, State::Runnable);
        drop(g);
    }

    /// Block a freshly spawned thread until the scheduler first picks it.
    pub(crate) fn first_schedule(&self, me: Tid) {
        let g = self.lock_inner();
        let g = self.wait_scheduled(g, me);
        drop(g);
    }

    /// Acquire logical ownership of mutex `obj`, blocking (in scheduler
    /// terms) while another thread owns it. The caller takes the real
    /// `std` lock afterwards, which is guaranteed uncontended.
    pub(crate) fn acquire(&self, me: Tid, obj: usize) {
        let mut g = self.lock_inner();
        loop {
            if g.mutex_owner[obj].is_none() {
                g.mutex_owner[obj] = Some(me);
                return;
            }
            g = self.switch(g, me, State::BlockedLock(obj));
        }
    }

    /// Release logical ownership and make every thread blocked on this mutex
    /// runnable again (they re-contend at their next scheduling).
    /// Deliberately not a yield point: nothing observable happens between an
    /// unlock and the unlocking thread's next instrumented operation.
    pub(crate) fn release(&self, me: Tid, obj: usize) {
        let mut g = self.lock_inner();
        if g.mutex_owner[obj] == Some(me) {
            g.mutex_owner[obj] = None;
        }
        for s in g.states.iter_mut() {
            if *s == State::BlockedLock(obj) {
                *s = State::Runnable;
            }
        }
    }

    /// Atomically release `mutex_obj`, park on `cv_obj`, and — once notified
    /// and scheduled — reacquire the mutex.
    pub(crate) fn cv_wait(&self, me: Tid, cv_obj: usize, mutex_obj: usize) {
        let mut g = self.lock_inner();
        if g.mutex_owner[mutex_obj] == Some(me) {
            g.mutex_owner[mutex_obj] = None;
        }
        for s in g.states.iter_mut() {
            if *s == State::BlockedLock(mutex_obj) {
                *s = State::Runnable;
            }
        }
        g = self.switch(g, me, State::BlockedCv(cv_obj));
        loop {
            if g.mutex_owner[mutex_obj].is_none() {
                g.mutex_owner[mutex_obj] = Some(me);
                return;
            }
            g = self.switch(g, me, State::BlockedLock(mutex_obj));
        }
    }

    /// Wake parked waiters of `cv_obj`. `all` wakes every waiter;
    /// otherwise only the lowest-id one (documented stand-in behavior).
    pub(crate) fn notify(&self, cv_obj: usize, all: bool) {
        let mut g = self.lock_inner();
        for s in g.states.iter_mut() {
            if *s == State::BlockedCv(cv_obj) {
                *s = State::Runnable;
                if !all {
                    break;
                }
            }
        }
    }

    /// Block until `target` finishes.
    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        let mut g = self.lock_inner();
        while g.states[target] != State::Finished {
            g = self.switch(g, me, State::BlockedJoin(target));
        }
    }

    /// Mark `me` finished, wake joiners, record a user panic if one escaped
    /// the thread, and hand the schedule to the next runnable thread.
    pub(crate) fn finish_thread(&self, me: Tid, user_panic: Option<Box<dyn Any + Send + 'static>>) {
        let mut g = self.lock_inner();
        for s in g.states.iter_mut() {
            if *s == State::BlockedJoin(me) {
                *s = State::Runnable;
            }
        }
        if let Some(p) = user_panic {
            if g.panic_payload.is_none() {
                g.panic_payload = Some(p);
            }
            if g.abort.is_none() {
                g.abort = Some("a model thread panicked".to_string());
            }
        }
        let g = self.switch(g, me, State::Finished);
        drop(g);
        self.cv.notify_all();
    }

    /// Unwind the calling model thread because the execution aborted.
    pub(crate) fn abort_unwind(&self) -> ! {
        panic::panic_any(Abort);
    }

    fn wait_all_finished(&self) {
        let mut g = self.lock_inner();
        while g.finished < g.states.len() {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.lock_inner().panic_payload.take()
    }

    fn take_abort(&self) -> Option<String> {
        self.lock_inner().abort.take()
    }

    fn take_schedule(&self) -> Vec<Branch> {
        std::mem::take(&mut self.lock_inner().schedule)
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(sched: &Arc<Scheduler>, tid: Tid) {
    CTX.with(|c| *c.borrow_mut() = Some((sched.clone(), tid)));
}

/// The scheduler and thread id of the calling thread, if it is a model
/// thread of a live execution.
pub(crate) fn current() -> Option<(Arc<Scheduler>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// Identity of the execution a primitive was created under, so a primitive
/// from a previous execution (or from outside any model) is never confused
/// with an instrumented one.
pub(crate) struct ModelHandle {
    sched: Weak<Scheduler>,
    pub(crate) obj: usize,
}

impl ModelHandle {
    /// Allocate an object id if the constructing thread is inside a model.
    pub(crate) fn new_if_in_model() -> Option<ModelHandle> {
        current().map(|(s, _)| ModelHandle {
            obj: s.alloc_obj(),
            sched: Arc::downgrade(&s),
        })
    }

    /// `Some` only when the calling thread belongs to the same execution
    /// this handle was created under.
    pub(crate) fn ctx(&self) -> Option<(Arc<Scheduler>, Tid)> {
        let (cur, me) = current()?;
        let mine = self.sched.upgrade()?;
        if Arc::ptr_eq(&cur, &mine) {
            Some((cur, me))
        } else {
            None
        }
    }
}

/// Advance the schedule depth-first: bump the last decision that still has
/// an untried choice, discarding everything after it. Returns `false` when
/// the space is exhausted.
fn advance(schedule: &mut Vec<Branch>) -> bool {
    while let Some(last) = schedule.last_mut() {
        if last.chosen + 1 < last.choices.len() {
            last.chosen += 1;
            return true;
        }
        schedule.pop();
    }
    false
}

/// Run `f` under every schedule of its instrumented operations.
///
/// Panics (resuming the original payload) if any execution panics, deadlocks,
/// or behaves nondeterministically, and reports the execution number so the
/// failing schedule can be reasoned about. The closure is re-run once per
/// explored schedule, so it must create its own primitives and threads each
/// call and must be deterministic apart from scheduling.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let max_execs: usize = std::env::var("LOOM_MAX_EXECUTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let mut schedule: Vec<Branch> = Vec::new();
    let mut execs = 0usize;
    loop {
        execs += 1;
        if execs > max_execs {
            panic!(
                "loom: exceeded {max_execs} executions without exhausting the schedule space \
                 (shrink the model or raise LOOM_MAX_EXECUTIONS)"
            );
        }
        let sched = Arc::new(Scheduler::new(schedule));
        let t0 = sched.register_thread();
        sched.set_active(t0);
        let (f2, s2) = (f.clone(), sched.clone());
        let root = std::thread::Builder::new()
            .name("loom-model".to_string())
            .spawn(move || {
                set_ctx(&s2, t0);
                let res = panic::catch_unwind(AssertUnwindSafe(|| f2()));
                let payload = match res {
                    Ok(()) => None,
                    Err(p) if p.is::<Abort>() => None,
                    Err(p) => Some(p),
                };
                s2.finish_thread(t0, payload);
            })
            .expect("loom: failed to spawn model root thread");
        let _ = root.join();
        sched.wait_all_finished();
        if let Some(p) = sched.take_panic() {
            eprintln!("loom: model failed on execution {execs}");
            panic::resume_unwind(p);
        }
        if let Some(reason) = sched.take_abort() {
            panic!("loom: {reason} (execution {execs})");
        }
        schedule = sched.take_schedule();
        if !advance(&mut schedule) {
            return;
        }
    }
}
