//! Self-checks for the vendored model checker: exhaustive exploration,
//! deadlock detection, condvar wakeup modeling, and panic propagation.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex as StdMutex;

#[test]
fn mutex_counter_is_exact_across_all_schedules() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    let mut g = counter.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

#[test]
fn atomic_interleavings_are_fully_explored() {
    // t1: x = 1; r1 = y.   t2: y = 1; r2 = x.
    // Under sequential consistency (r1, r2) ranges over exactly
    // {(0,1), (1,0), (1,1)} — (0,0) is impossible. Collecting outcomes
    // across executions proves the checker both explores every schedule and
    // never produces a non-SC result.
    let outcomes: &'static StdMutex<BTreeSet<(usize, usize)>> =
        Box::leak(Box::new(StdMutex::new(BTreeSet::new())));
    loom::model(move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = loom::thread::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = loom::thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            (r1, r2) != (0, 0),
            "sequential consistency violated: both threads read 0"
        );
        outcomes.lock().unwrap().insert((r1, r2));
    });
    let seen = outcomes.lock().unwrap();
    assert_eq!(
        *seen,
        BTreeSet::from([(0, 1), (1, 0), (1, 1)]),
        "exploration missed an SC outcome"
    );
}

#[test]
fn abba_lock_order_inversion_is_reported_as_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _ga = a1.lock().unwrap();
                let _gb = b1.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = t.join();
        });
    }));
    let err = result.expect_err("ABBA locking must deadlock on some schedule");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn condvar_handshake_has_no_lost_wakeup() {
    // Correct protocol: predicate loop around wait, notify after flipping the
    // flag under the lock. Must complete on every schedule.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let setter = loom::thread::spawn(move || {
            let (flag, cv) = &*pair2;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        });
        let (flag, cv) = &*pair;
        let mut g = flag.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        setter.join().unwrap();
    });
}

#[test]
fn broken_wait_protocol_is_caught() {
    // Bug: the flag is an atomic checked *outside* the condvar's mutex, so
    // the notify can land in the gap between the check and the wait — a
    // classic lost wakeup. The checker must find the schedule where the
    // waiter sleeps forever.
    use loom::sync::atomic::AtomicBool;
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let (flag2, pair2) = (Arc::clone(&flag), Arc::clone(&pair));
            let setter = loom::thread::spawn(move || {
                flag2.store(true, Ordering::SeqCst);
                pair2.1.notify_all();
            });
            if !flag.load(Ordering::SeqCst) {
                let (lock, cv) = &*pair;
                let g = lock.lock().unwrap();
                drop(cv.wait(g).unwrap());
            }
            setter.join().unwrap();
        });
    }));
    let err = result.expect_err("lost-wakeup schedule must be detected");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn assertion_failures_surface_with_original_message() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = loom::thread::spawn(move || {
                v2.store(7, Ordering::SeqCst);
            });
            let seen = v.load(Ordering::SeqCst);
            t.join().unwrap();
            // Fails only on schedules where the child ran first.
            assert_ne!(seen, 7, "child store observed before join");
        });
    }));
    let err = result.expect_err("the racy schedule must be found");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("child store observed before join"),
        "original assertion message lost: {msg}"
    );
}

#[test]
fn primitives_fall_back_to_std_outside_models() {
    let m = Mutex::new(5u8);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 6);
    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
    assert_eq!(a.load(Ordering::Relaxed), 3);
    let t = loom::thread::spawn(|| 41 + 1);
    assert_eq!(t.join().unwrap(), 42);
}
