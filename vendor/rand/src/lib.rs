//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace ships a minimal, fully deterministic implementation of
//! the `rand` 0.8 API surface the project uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait, [`rngs::StdRng`] (a
//! xoshiro256++ generator), and [`rngs::mock::StepRng`].
//!
//! Determinism is the only contract the simulator needs — same seed, same
//! stream — so the generator does not match upstream `StdRng`'s (ChaCha12)
//! output, but it has equivalent statistical quality for experiments.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Values samplable uniformly from the generator's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    start + (rng.next_u64() as $t)
                } else {
                    start + (uniform_u64(rng, span as u64) as $t)
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased draw from `0..span` (`span == 0` means the full u64 range)
/// via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators shipped with this vendored subset.

    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12-based `StdRng`, but a deterministic,
    /// high-quality generator with the same construction API.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Simple mock generators for tests.

        use super::super::RngCore;

        /// A mock generator returning an arithmetic sequence.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a generator yielding `initial`, `initial + increment`, …
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    step: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_produces_all_standard_types() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: bool = rng.gen();
        let _: u64 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn dyn_rng_core_supports_extension_methods() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: u64 = dyn_rng.gen_range(0..10);
        assert!(x < 10);
        let b: bool = dyn_rng.gen();
        let _ = b;
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u32(), 16);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniform_rejection_is_unbiased_smoke() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!(c > 800, "{counts:?}");
        }
    }
}
