//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the
//! workspace uses: non-poisoning `lock()` returning a guard directly.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails: poison from a panicked holder is
/// ignored, matching `parking_lot` semantics closely enough for metering.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
