//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides only the `channel` module surface the runtime crate uses:
//! `unbounded()`, clonable `Sender`, and a `Receiver` with blocking,
//! timeout, and deadline receives. Built on `Mutex<VecDeque>` + `Condvar`
//! (std's mpsc lacks a stable `recv_deadline`).

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by blocking receives when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired with the channel still empty.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks until a value arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Blocks until a value arrives, all senders disconnect, or
        /// `deadline` passes.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_and_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_deadline_times_out_when_empty() {
            let (tx, rx) = unbounded::<u32>();
            let deadline = Instant::now() + Duration::from_millis(20);
            assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
            drop(tx);
            let deadline = Instant::now() + Duration::from_millis(20);
            assert_eq!(
                rx.recv_deadline(deadline),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn drains_queue_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_wakes_on_late_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42u32).unwrap();
            });
            let deadline = Instant::now() + Duration::from_secs(5);
            assert_eq!(rx.recv_deadline(deadline), Ok(42));
            h.join().unwrap();
        }
    }
}
