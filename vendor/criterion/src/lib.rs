//! Offline vendored stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, `BenchmarkId`,
//! and `Bencher::iter` — timing each benchmark with `Instant` and
//! printing a mean per iteration. No warmup modelling, outlier analysis,
//! or HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from one parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Runs the closure under test repeatedly and records elapsed time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<50} {per_iter:>12?}/iter  ({} iters, total {:?})",
        bencher.iterations, bencher.elapsed
    );
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 20);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_with_input(BenchmarkId::from_parameter(64), &3u32, |b, &x| {
                b.iter(|| runs += x as u64)
            });
            group.finish();
        }
        assert_eq!(runs, 15);
    }
}
