//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec` (exact or ranged length), `prop_map`, and the
//! `prop_assert*` macros. Generation is deterministic (seeded from the
//! test name) and there is no shrinking: a failing case panics with the
//! case number so it can be replayed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic generator feeding strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hashes a test name into a stable seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A collection length: exact (`8`) or half-open (`1..12`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod prop {
    /// Strategies producing `Vec`s.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-invocation configuration for [`proptest!`].
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a property holds, panicking with the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn` runs its body once per generated
/// case with the named arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || {
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {:#x})",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        seed,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..2000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..200 {
            let exact = prop::collection::vec(any::<bool>(), 8).generate(&mut rng);
            assert_eq!(exact.len(), 8);
            let ranged = prop::collection::vec(0usize..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&ranged.len()));
            assert!(ranged.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0usize..40, any::<bool>()), 1..120);
        let a: Vec<_> = {
            let mut rng = crate::TestRng::new(7);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::new(7);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::TestRng::new(3);
        let doubled = (1usize..50).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..100).contains(&doubled));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(x in 0usize..100, pair in (0u8..4, any::<bool>()),) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in prop::collection::vec(any::<u64>(), 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }
}
