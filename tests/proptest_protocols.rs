//! Property-based tests on whole protocol executions: randomized crash
//! plans, fault budgets, delays, and inputs — the Download specification
//! must hold in every generated execution.

use dr_download::core::{BitArray, FaultModel, ModelParams, PeerId};
use dr_download::protocols::{CommitteeDownload, CrashMultiDownload, TwoCycleDownload};
use dr_download::sim::{
    CrashDirective, CrashPlan, CrashTrigger, SilentAgent, SimBuilder, StandardAdversary,
    UniformDelay,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_multi_holds_for_random_crash_plans(
        seed in 0u64..10_000,
        k in 3usize..10,
        n_mult in 1usize..8,
        crash_fraction in 0.0f64..0.99,
        crash_event in 0u64..5,
        mid_send in any::<bool>(),
    ) {
        let n = 64 * n_mult;
        let b = ((crash_fraction * k as f64) as usize).min(k - 1);
        let mut plan = CrashPlan::none();
        for v in 0..b {
            let trigger = if mid_send && v % 2 == 0 {
                CrashTrigger::DuringSend { event: crash_event, keep: v % 3 }
            } else {
                CrashTrigger::BeforeEvent(crash_event)
            };
            plan.push(CrashDirective { peer: PeerId(v), trigger });
        }
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Crash, b)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(seed)
            .protocol(move |_| CrashMultiDownload::new(n, k, b))
            .adversary(StandardAdversary::new(UniformDelay::new(), plan))
            .build();
        let input = sim.input().clone();
        let report = sim.run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
        // Query sanity: nobody exceeds the naive cost by more than the
        // terminal slack.
        prop_assert!(report.max_nonfaulty_queries <= (2 * n) as u64);
    }

    #[test]
    fn committee_holds_for_random_silent_subsets(
        seed in 0u64..10_000,
        k in 3usize..12,
        t_raw in 0usize..5,
        n_mult in 1usize..6,
    ) {
        let t = t_raw.min((k - 1) / 2);
        let n = 32 * n_mult;
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, t)
            .build()
            .unwrap();
        let mut builder = SimBuilder::new(params)
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t));
        for i in 0..t {
            builder = builder.byzantine(PeerId((seed as usize + i * 2) % k), SilentAgent::new());
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
        prop_assert!(
            report.max_nonfaulty_queries <= ((n * (2 * t + 1)).div_ceil(k) + 1) as u64
        );
    }

    #[test]
    fn two_cycle_holds_on_structured_inputs(
        seed in 0u64..10_000,
        pattern in 0usize..4,
    ) {
        // Structured inputs (all zeros, all ones, alternating, block) can
        // tickle decision-tree edge cases that random inputs miss.
        let (n, k, b) = (1usize << 12, 96usize, 8usize);
        let input = match pattern {
            0 => BitArray::zeros(n),
            1 => BitArray::from_fn(n, |_| true),
            2 => BitArray::from_fn(n, |i| i % 2 == 0),
            _ => BitArray::from_fn(n, |i| i < n / 2),
        };
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b)
            .build()
            .unwrap();
        let mut builder = SimBuilder::new(params)
            .seed(seed)
            .input(input.clone())
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        for i in 0..b {
            builder = builder.byzantine(PeerId(i), SilentAgent::new());
        }
        let report = builder.build().run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multi_cycle_holds_on_structured_inputs(
        seed in 0u64..10_000,
        pattern in 0usize..4,
        b in 0usize..24,
    ) {
        use dr_download::protocols::MultiCycleDownload;
        let (n, k) = (1usize << 12, 128usize);
        let input = match pattern {
            0 => BitArray::zeros(n),
            1 => BitArray::from_fn(n, |_| true),
            2 => BitArray::from_fn(n, |i| i % 3 == 0),
            _ => BitArray::from_fn(n, |i| (i / 64) % 2 == 0),
        };
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b.max(1))
            .build()
            .unwrap();
        let mut builder = SimBuilder::new(params)
            .seed(seed)
            .input(input.clone())
            .protocol(move |_| MultiCycleDownload::new(n, k, b));
        for i in 0..b {
            builder = builder.byzantine(PeerId(i), SilentAgent::new());
        }
        let report = builder.build().run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
    }

    #[test]
    fn alg1_holds_for_random_single_crash_timing(
        seed in 0u64..10_000,
        k in 3usize..8,
        victim in 0usize..8,
        event in 0u64..6,
        n_mult in 1usize..5,
    ) {
        use dr_download::protocols::SingleCrashDownload;
        let n = 40 * n_mult;
        let victim = PeerId(victim % k);
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Crash, 1)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(seed)
            .protocol(move |_| SingleCrashDownload::new(n, k))
            .adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event([victim], event),
            ))
            .build();
        let input = sim.input().clone();
        let report = sim.run().expect("no deadlock");
        report.verify_downloads(&input).expect("exact download");
        prop_assert!(report.max_nonfaulty_queries <= (n / k + n / (k * (k - 1)) + 2) as u64);
    }
}
