//! Cross-backend agreement: the simulator and the thread runtime drive
//! the same protocol state machines; correctness and query bounds must
//! hold in both worlds.

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::{CrashMultiDownload, SingleCrashDownload};
use dr_download::runtime::{run_threaded, CrashSpec, RuntimeConfig};
use dr_download::sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap()
}

#[test]
fn crash_multi_query_bound_holds_in_both_backends() {
    let (n, k, b) = (512usize, 8usize, 3usize);
    let bound =
        ((n / k) as f64 * (1.0 / (1.0 - b as f64 / k as f64)) + (n / k) as f64 + 16.0) as u64;

    // Simulator.
    let sim = SimBuilder::new(crash_params(n, k, b))
        .seed(5)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event((0..b).map(PeerId), 1),
        ))
        .build();
    let input = sim.input().clone();
    let sim_report = sim.run().unwrap();
    sim_report.verify_downloads(&input).unwrap();
    assert!(
        sim_report.max_nonfaulty_queries <= bound,
        "sim Q = {} > {bound}",
        sim_report.max_nonfaulty_queries
    );

    // Threads.
    let config = RuntimeConfig::new(crash_params(n, k, b), 5)
        .with_crash(CrashSpec {
            peer: PeerId(0),
            after_events: 1,
        })
        .with_crash(CrashSpec {
            peer: PeerId(1),
            after_events: 1,
        });
    let thread_report = run_threaded(config, move |_| CrashMultiDownload::new(n, k, b)).unwrap();
    thread_report.verify(&[PeerId(0), PeerId(1)]).unwrap();
    assert!(
        thread_report.max_honest_queries <= bound,
        "threads Q = {} > {bound}",
        thread_report.max_honest_queries
    );
}

#[test]
fn algorithm_one_works_in_both_backends() {
    let (n, k) = (200usize, 5usize);
    // Simulator with crash.
    let sim = SimBuilder::new(crash_params(n, k, 1))
        .seed(6)
        .protocol(move |_| SingleCrashDownload::new(n, k))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(4)], 2),
        ))
        .build();
    let input = sim.input().clone();
    sim.run().unwrap().verify_downloads(&input).unwrap();
    // Threads with crash.
    let config = RuntimeConfig::new(crash_params(n, k, 1), 6).with_crash(CrashSpec {
        peer: PeerId(4),
        after_events: 2,
    });
    let report = run_threaded(config, move |_| SingleCrashDownload::new(n, k)).unwrap();
    report.verify(&[PeerId(4)]).unwrap();
}

#[test]
fn two_cycle_randomized_under_threads() {
    // The randomized protocol's correctness must survive real scheduler
    // nondeterminism, not just simulated schedules. β budget reserved but
    // no faults injected (the thread runtime models crash faults only).
    use dr_download::protocols::TwoCycleDownload;
    let (n, k, b) = (1usize << 12, 96usize, 8usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .unwrap();
    let config = RuntimeConfig::new(params, 11);
    let report = run_threaded(config, move |_| TwoCycleDownload::new(n, k, b)).unwrap();
    report.verify(&[]).unwrap();
    assert!(
        report.max_honest_queries < n as u64,
        "sampling must beat naive under threads too"
    );
}

#[test]
fn committee_under_threads_with_crashes() {
    use dr_download::protocols::CommitteeDownload;
    let (n, k, t) = (240usize, 8usize, 2usize);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, t)
        .build()
        .unwrap();
    // Crash-style Byzantine behaviour: two peers stop before starting.
    let config = RuntimeConfig::new(params, 12)
        .with_crash(CrashSpec {
            peer: PeerId(1),
            after_events: 0,
        })
        .with_crash(CrashSpec {
            peer: PeerId(5),
            after_events: 0,
        });
    let report = run_threaded(config, move |_| CommitteeDownload::new(n, k, t)).unwrap();
    report.verify(&[PeerId(1), PeerId(5)]).unwrap();
}
