//! Reproducibility: identical seeds produce identical executions for
//! every protocol — the property all experiment records rely on.

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::{
    CommitteeDownload, CrashMultiDownload, MultiCycleDownload, SingleCrashDownload,
    TwoCycleDownload,
};
use dr_download::sim::{CrashPlan, RunReport, SimBuilder, StandardAdversary, UniformDelay};

fn fingerprint(r: &RunReport) -> (Vec<u64>, u64, u64, u64) {
    (
        r.query_counts.clone(),
        r.messages_sent,
        r.virtual_time_ticks,
        r.events,
    )
}

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap()
}

fn byz_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .unwrap()
}

#[test]
fn all_protocols_are_seed_deterministic() {
    let run_alg1 = |seed| {
        let sim = SimBuilder::new(crash_params(120, 4, 1))
            .seed(seed)
            .protocol(|_| SingleCrashDownload::new(120, 4))
            .adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event([PeerId(1)], 1),
            ))
            .build();
        fingerprint(&sim.run().unwrap())
    };
    let run_alg2 = |seed| {
        let sim = SimBuilder::new(crash_params(256, 8, 4))
            .seed(seed)
            .protocol(|_| CrashMultiDownload::new(256, 8, 4))
            .adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event((0..3).map(PeerId), 1),
            ))
            .build();
        fingerprint(&sim.run().unwrap())
    };
    let run_committee = |seed| {
        let sim = SimBuilder::new(byz_params(90, 9, 3))
            .seed(seed)
            .protocol(|_| CommitteeDownload::new(90, 9, 3))
            .build();
        fingerprint(&sim.run().unwrap())
    };
    let run_two_cycle = |seed| {
        let sim = SimBuilder::new(byz_params(1 << 12, 96, 8))
            .seed(seed)
            .protocol(|_| TwoCycleDownload::new(1 << 12, 96, 8))
            .build();
        fingerprint(&sim.run().unwrap())
    };
    let run_multi_cycle = |seed| {
        let sim = SimBuilder::new(byz_params(1 << 12, 96, 8))
            .seed(seed)
            .protocol(|_| MultiCycleDownload::new(1 << 12, 96, 8))
            .build();
        fingerprint(&sim.run().unwrap())
    };

    assert_eq!(run_alg1(1), run_alg1(1));
    assert_eq!(run_alg2(2), run_alg2(2));
    assert_eq!(run_committee(3), run_committee(3));
    assert_eq!(run_two_cycle(4), run_two_cycle(4));
    assert_eq!(run_multi_cycle(5), run_multi_cycle(5));

    // And different seeds genuinely change the execution.
    assert_ne!(run_alg2(2), run_alg2(3));
    assert_ne!(run_two_cycle(4), run_two_cycle(5));
}
