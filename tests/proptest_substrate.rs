//! Property-based tests on the substrate data structures: bit arrays,
//! segmentations, the ownership function, frequency tables, and decision
//! trees.

use dr_download::core::{BitArray, PartialArray, PeerId, SegmentId, Segmentation};
use dr_download::protocols::{owner, DecisionTree, FrequencyTable};
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = BitArray> {
    prop::collection::vec(any::<bool>(), 1..max_len).prop_map(|v| BitArray::from_bools(&v))
}

proptest! {
    #[test]
    fn bitarray_roundtrip_through_slices(bits in arb_bits(512), split in 0usize..512) {
        let split = split % (bits.len() + 1);
        let left = bits.slice(0..split);
        let right = bits.slice(split..bits.len());
        let mut rebuilt = BitArray::zeros(bits.len());
        rebuilt.write_at(0, &left);
        rebuilt.write_at(split, &right);
        prop_assert_eq!(rebuilt, bits);
    }

    #[test]
    fn first_difference_is_symmetric_and_correct(a in arb_bits(256), flips in prop::collection::vec(0usize..256, 0..4)) {
        let mut b = a.clone();
        for &j in &flips {
            if j < b.len() {
                b.flip(j);
            }
        }
        match a.first_difference(&b) {
            None => {
                prop_assert_eq!(&a, &b);
            }
            Some(i) => {
                prop_assert_ne!(a.get(i), b.get(i));
                for j in 0..i {
                    prop_assert_eq!(a.get(j), b.get(j));
                }
                prop_assert_eq!(b.first_difference(&a), Some(i));
            }
        }
    }

    #[test]
    fn partial_array_learning_is_monotone(
        values in arb_bits(256),
        order in prop::collection::vec(0usize..256, 1..256),
    ) {
        let mut p = PartialArray::new(values.len());
        let mut known = 0usize;
        for &raw in &order {
            let j = raw % values.len();
            let newly = !p.is_known(j);
            p.learn(j, values.get(j));
            if newly {
                known += 1;
            }
            prop_assert_eq!(p.unknown_count(), values.len() - known);
            prop_assert_eq!(p.get(j), Some(values.get(j)));
        }
    }

    #[test]
    fn segmentation_tiles_and_nests(n in 2usize..5000, count_exp in 1u32..6) {
        let count = (1usize << count_exp).min(n);
        let seg = Segmentation::new(n, count);
        // Tiles exactly.
        let mut covered = 0;
        for id in seg.ids() {
            let r = seg.range(id);
            prop_assert_eq!(r.start, covered);
            prop_assert!(!r.is_empty());
            covered = r.end;
        }
        prop_assert_eq!(covered, n);
        // Nests under halving.
        if count >= 2 && count % 2 == 0 {
            let coarse = Segmentation::new(n, count / 2);
            for i in 0..count / 2 {
                let parent = coarse.range(SegmentId(i));
                let l = seg.range(SegmentId(2 * i));
                let r = seg.range(SegmentId(2 * i + 1));
                prop_assert_eq!(parent.start, l.start);
                prop_assert_eq!(l.end, r.start);
                prop_assert_eq!(r.end, parent.end);
            }
        }
    }

    #[test]
    fn owner_is_a_valid_peer_and_deterministic(j in 0usize..1_000_000, phase in 1usize..40, k in 1usize..300) {
        let o = owner(j, phase, k);
        prop_assert!(o < k);
        prop_assert_eq!(o, owner(j, phase, k));
    }

    #[test]
    fn decision_tree_always_recovers_a_present_truth(
        strings in prop::collection::vec(prop::collection::vec(any::<bool>(), 8), 1..12),
        truth_idx in 0usize..12,
    ) {
        let set: Vec<BitArray> = strings.iter().map(|s| BitArray::from_bools(s)).collect();
        let truth = &set[truth_idx % set.len()];
        let tree = DecisionTree::build(&set);
        let mut queries = 0usize;
        let out = tree.determine(0..8, &mut |j| {
            queries += 1;
            truth.get(j)
        }).expect("non-empty set");
        prop_assert_eq!(&out, truth);
        // Cost bound of Protocol 3: at most |distinct strings| − 1 queries.
        prop_assert!(queries <= tree.leaves().saturating_sub(1));
        prop_assert_eq!(tree.internal_nodes(), tree.leaves() - 1);
    }

    #[test]
    fn frequency_threshold_bounds_spam(
        claims in prop::collection::vec((0usize..40, any::<bool>()), 1..120),
        tau in 1usize..6,
    ) {
        // Each distinct sender contributes at most one claim; at most
        // senders/τ strings can become τ-frequent.
        let mut table = FrequencyTable::new();
        let mut senders = std::collections::HashSet::new();
        for (i, (sender, bit)) in claims.iter().enumerate() {
            let counted = table.record(
                PeerId(*sender),
                SegmentId(0),
                BitArray::from_bools(&[*bit, i % 2 == 0].map(|b| b)),
            );
            if counted {
                senders.insert(*sender);
            }
        }
        let frequent = table.frequent(SegmentId(0), tau);
        prop_assert!(frequent.len() <= senders.len() / tau);
    }
}
