//! Property-based tests on the substrate data structures: bit arrays,
//! segmentations, the ownership function, frequency tables, and decision
//! trees.

use dr_download::core::{BitArray, PartialArray, PeerId, SegmentId, Segmentation};
use dr_download::protocols::{owner, DecisionTree, FrequencyTable};
use proptest::prelude::*;

fn arb_bits(max_len: usize) -> impl Strategy<Value = BitArray> {
    prop::collection::vec(any::<bool>(), 1..max_len).prop_map(|v| BitArray::from_bools(&v))
}

proptest! {
    #[test]
    fn bitarray_roundtrip_through_slices(bits in arb_bits(512), split in 0usize..512) {
        let split = split % (bits.len() + 1);
        let left = bits.slice(0..split);
        let right = bits.slice(split..bits.len());
        let mut rebuilt = BitArray::zeros(bits.len());
        rebuilt.write_at(0, &left);
        rebuilt.write_at(split, &right);
        prop_assert_eq!(rebuilt, bits);
    }

    #[test]
    fn copy_range_matches_bit_by_bit_model(
        dst in arb_bits(300),
        src in arb_bits(300),
        dst_off in 0usize..300,
        start in 0usize..300,
        len in 0usize..300,
    ) {
        // Clamp to valid (possibly empty, possibly word-straddling) bounds.
        let start = start % src.len();
        let len = len.min(src.len() - start).min(dst.len().saturating_sub(dst_off % dst.len()));
        let dst_off = dst_off % dst.len();
        let mut fast = dst.clone();
        fast.copy_range(dst_off, &src, start..start + len);
        let model = BitArray::from_fn(dst.len(), |i| {
            if i >= dst_off && i < dst_off + len {
                src.get(start + (i - dst_off))
            } else {
                dst.get(i)
            }
        });
        prop_assert_eq!(&fast, &model);
        // Last-word zero-padding invariant: equal arrays must also agree
        // on the packed words, including the padded tail.
        for w in 0..fast.word_count() {
            prop_assert_eq!(fast.word(w), model.word(w));
        }
        let tail = fast.len() % 64;
        if tail != 0 {
            prop_assert_eq!(fast.word(fast.word_count() - 1) >> tail, 0);
        }
    }

    #[test]
    fn or_assign_matches_bit_by_bit_model(a in arb_bits(300), b in arb_bits(300)) {
        let n = a.len().min(b.len());
        let (a, b) = (a.slice(0..n), b.slice(0..n));
        let mut fast = a.clone();
        fast.or_assign(&b);
        prop_assert_eq!(&fast, &BitArray::from_fn(n, |i| a.get(i) | b.get(i)));
        let tail = n % 64;
        if tail != 0 {
            prop_assert_eq!(fast.word(fast.word_count() - 1) >> tail, 0);
        }
    }

    #[test]
    fn learn_slice_matches_bit_by_bit_model(
        n in 1usize..300,
        prelearn in prop::collection::vec((0usize..300, any::<bool>()), 0..40),
        payload in arb_bits(300),
        offset in 0usize..300,
    ) {
        let mut fast = PartialArray::new(n);
        let mut slow = PartialArray::new(n);
        for &(j, v) in &prelearn {
            fast.learn(j % n, v);
            slow.learn(j % n, v);
        }
        let offset = offset % n;
        let len = payload.len().min(n - offset);
        let payload = payload.slice(0..len);
        fast.learn_slice(offset, &payload);
        for i in 0..len {
            slow.learn(offset + i, payload.get(i));
        }
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.unknown_count(), slow.unknown_count());
        let fast_unknown: Vec<usize> = fast.unknown_iter().collect();
        let slow_unknown: Vec<usize> = (0..n).filter(|&i| !slow.is_known(i)).collect();
        prop_assert_eq!(fast_unknown, slow_unknown);
    }

    #[test]
    fn merge_matches_bit_by_bit_model(
        n in 1usize..300,
        a_bits in prop::collection::vec((0usize..300, any::<bool>()), 0..60),
        b_bits in prop::collection::vec((0usize..300, any::<bool>()), 0..60),
    ) {
        let mut a = PartialArray::new(n);
        let mut b = PartialArray::new(n);
        for &(j, v) in &a_bits {
            a.learn(j % n, v);
        }
        for &(j, v) in &b_bits {
            b.learn(j % n, v);
        }
        let mut fast = a.clone();
        fast.merge(&b);
        let mut slow = a.clone();
        for i in 0..n {
            if let Some(v) = b.get(i) {
                slow.learn(i, v);
            }
        }
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.unknown_count(), slow.unknown_count());
    }

    #[test]
    fn first_difference_is_symmetric_and_correct(a in arb_bits(256), flips in prop::collection::vec(0usize..256, 0..4)) {
        let mut b = a.clone();
        for &j in &flips {
            if j < b.len() {
                b.flip(j);
            }
        }
        match a.first_difference(&b) {
            None => {
                prop_assert_eq!(&a, &b);
            }
            Some(i) => {
                prop_assert_ne!(a.get(i), b.get(i));
                for j in 0..i {
                    prop_assert_eq!(a.get(j), b.get(j));
                }
                prop_assert_eq!(b.first_difference(&a), Some(i));
            }
        }
    }

    #[test]
    fn partial_array_learning_is_monotone(
        values in arb_bits(256),
        order in prop::collection::vec(0usize..256, 1..256),
    ) {
        let mut p = PartialArray::new(values.len());
        let mut known = 0usize;
        for &raw in &order {
            let j = raw % values.len();
            let newly = !p.is_known(j);
            p.learn(j, values.get(j));
            if newly {
                known += 1;
            }
            prop_assert_eq!(p.unknown_count(), values.len() - known);
            prop_assert_eq!(p.get(j), Some(values.get(j)));
        }
    }

    #[test]
    fn segmentation_tiles_and_nests(n in 2usize..5000, count_exp in 1u32..6) {
        let count = (1usize << count_exp).min(n);
        let seg = Segmentation::new(n, count);
        // Tiles exactly.
        let mut covered = 0;
        for id in seg.ids() {
            let r = seg.range(id);
            prop_assert_eq!(r.start, covered);
            prop_assert!(!r.is_empty());
            covered = r.end;
        }
        prop_assert_eq!(covered, n);
        // Nests under halving.
        if count >= 2 && count % 2 == 0 {
            let coarse = Segmentation::new(n, count / 2);
            for i in 0..count / 2 {
                let parent = coarse.range(SegmentId(i));
                let l = seg.range(SegmentId(2 * i));
                let r = seg.range(SegmentId(2 * i + 1));
                prop_assert_eq!(parent.start, l.start);
                prop_assert_eq!(l.end, r.start);
                prop_assert_eq!(r.end, parent.end);
            }
        }
    }

    #[test]
    fn owner_is_a_valid_peer_and_deterministic(j in 0usize..1_000_000, phase in 1usize..40, k in 1usize..300) {
        let o = owner(j, phase, k);
        prop_assert!(o < k);
        prop_assert_eq!(o, owner(j, phase, k));
    }

    #[test]
    fn decision_tree_always_recovers_a_present_truth(
        strings in prop::collection::vec(prop::collection::vec(any::<bool>(), 8), 1..12),
        truth_idx in 0usize..12,
    ) {
        let set: Vec<BitArray> = strings.iter().map(|s| BitArray::from_bools(s)).collect();
        let truth = &set[truth_idx % set.len()];
        let tree = DecisionTree::build(&set);
        let mut queries = 0usize;
        let out = tree.determine(0..8, &mut |j| {
            queries += 1;
            truth.get(j)
        }).expect("non-empty set");
        prop_assert_eq!(&out, truth);
        // Cost bound of Protocol 3: at most |distinct strings| − 1 queries.
        prop_assert!(queries <= tree.leaves().saturating_sub(1));
        prop_assert_eq!(tree.internal_nodes(), tree.leaves() - 1);
    }

    #[test]
    fn frequency_threshold_bounds_spam(
        claims in prop::collection::vec((0usize..40, any::<bool>()), 1..120),
        tau in 1usize..6,
    ) {
        // Each distinct sender contributes at most one claim; at most
        // senders/τ strings can become τ-frequent.
        let mut table = FrequencyTable::new();
        let mut senders = std::collections::HashSet::new();
        for (i, (sender, bit)) in claims.iter().enumerate() {
            let counted = table.record(
                PeerId(*sender),
                SegmentId(0),
                BitArray::from_bools(&[*bit, i % 2 == 0].map(|b| b)),
            );
            if counted {
                senders.insert(*sender);
            }
        }
        let frequent = table.frequent(SegmentId(0), tau);
        prop_assert!(frequent.len() <= senders.len() / tau);
    }
}
