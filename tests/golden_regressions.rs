//! Golden-value regression tests: exact metrics of canonical seeded runs.
//!
//! The simulator is deterministic, so any change to a protocol's message
//! flow, query pattern, or the simulator's scheduling shows up here as an
//! exact-value diff. Intentional protocol changes should update these
//! numbers consciously (and re-examine EXPERIMENTS.md); accidental ones
//! get caught.
//!
//! The values are tied to the PRNG stream of the workspace `rand` crate
//! (the vendored xoshiro256++ `StdRng`); swapping the generator requires
//! re-recording them.

use dr_bench::runners::{
    run_committee, run_crash_multi, run_multi_cycle, run_single_crash, run_two_cycle, ByzMix,
};
use dr_download::core::PeerId;

#[test]
fn golden_alg1() {
    let r = run_single_crash(1024, 8, 7, Some(PeerId(2)));
    assert_eq!(
        (
            r.max_nonfaulty_queries,
            r.messages_sent,
            r.virtual_time_ticks
        ),
        (128, 164, 1576)
    );
}

#[test]
fn golden_alg2() {
    let r = run_crash_multi(2048, 16, 8, 8, 1024, false, 7);
    assert_eq!(
        (
            r.max_nonfaulty_queries,
            r.messages_sent,
            r.virtual_time_ticks
        ),
        (256, 813, 5056)
    );
}

#[test]
fn golden_committee() {
    let r = run_committee(512, 8, 2, 2, 7);
    assert_eq!(
        (
            r.max_nonfaulty_queries,
            r.messages_sent,
            r.virtual_time_ticks
        ),
        (320, 42, 1509)
    );
}

#[test]
fn golden_two_cycle() {
    let r = run_two_cycle(4096, 128, 16, ByzMix::Mixed, 7);
    assert_eq!(
        (
            r.max_nonfaulty_queries,
            r.messages_sent,
            r.virtual_time_ticks
        ),
        (1366, 28448, 2651)
    );
}

#[test]
fn golden_multi_cycle() {
    let r = run_multi_cycle(4096, 128, 16, ByzMix::Silent, 7);
    assert_eq!(
        (
            r.max_nonfaulty_queries,
            r.messages_sent,
            r.virtual_time_ticks
        ),
        (2048, 42672, 4085)
    );
}
