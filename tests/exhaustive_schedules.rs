//! Bounded model checking: enumerate *every* message-delivery order of
//! tiny instances and check the Download specification on each.
//!
//! A pass here means the protocol is correct under every asynchronous
//! schedule of the instance (for the given crash pattern) — the same
//! "for every execution" quantifier the paper's theorems carry.

use dr_download::core::{BitArray, PeerId};
use dr_download::protocols::{CommitteeDownload, CrashMultiDownload, SingleCrashDownload};
use dr_download::sim::explore::{explore, ExploreConfig};

fn tiny_input(n: usize) -> BitArray {
    BitArray::from_fn(n, |i| (i * 7 + 3) % 5 < 2)
}

#[test]
fn algorithm_one_is_schedule_proof_without_crash() {
    let n = 6;
    let k = 3;
    let config = ExploreConfig {
        max_schedules: 60_000,
        ..ExploreConfig::new(k, tiny_input(n))
    };
    let report = explore(&config, move |_| SingleCrashDownload::new(n, k));
    assert!(
        report.counterexample.is_none(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.schedules > 0);
}

#[test]
fn algorithm_one_is_schedule_proof_under_each_crash() {
    let n = 6;
    let k = 3;
    for victim in 0..k {
        let config = ExploreConfig {
            max_schedules: 60_000,
            ..ExploreConfig::new(k, tiny_input(n)).with_crashed(vec![PeerId(victim)])
        };
        let report = explore(&config, move |_| SingleCrashDownload::new(n, k));
        assert!(
            report.counterexample.is_none(),
            "victim p{victim}: {:?}",
            report.counterexample
        );
    }
}

#[test]
fn algorithm_two_is_schedule_proof_under_each_crash() {
    let n = 6;
    let k = 3;
    let b = 1;
    for victim in 0..k {
        let config = ExploreConfig {
            max_schedules: 40_000,
            ..ExploreConfig::new(k, tiny_input(n)).with_crashed(vec![PeerId(victim)])
        };
        let report = explore(&config, move |_| CrashMultiDownload::new(n, k, b));
        assert!(
            report.counterexample.is_none(),
            "victim p{victim}: {:?}",
            report.counterexample
        );
        assert!(report.schedules > 0);
    }
}

#[test]
fn algorithm_two_is_schedule_proof_with_two_crashes() {
    let n = 4;
    let k = 4;
    let b = 2;
    let config = ExploreConfig {
        max_schedules: 20_000,
        ..ExploreConfig::new(k, tiny_input(n)).with_crashed(vec![PeerId(0), PeerId(3)])
    };
    let report = explore(&config, move |_| CrashMultiDownload::new(n, k, b));
    assert!(
        report.counterexample.is_none(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn committee_is_schedule_proof_in_its_regime() {
    // k = 3, t = 1: committees of size 3 (everyone), accept on 2 votes.
    // No Byzantine instantiated; exploration covers delivery orders.
    let n = 4;
    let k = 3;
    let config = ExploreConfig {
        max_schedules: 60_000,
        ..ExploreConfig::new(k, tiny_input(n))
    };
    let report = explore(&config, move |_| CommitteeDownload::new(n, k, 1));
    assert!(
        report.counterexample.is_none(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.exhaustive, "should finish exhaustively at this size");
}
