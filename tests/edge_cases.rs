//! Boundary instances: tiny inputs, tiny networks, n < k, and malformed
//! traffic.

use dr_download::core::{BitArray, Context, FaultModel, ModelParams, PeerId, Protocol};
use dr_download::protocols::{
    CommitteeDownload, CrashMultiDownload, MultiCrashMsg, NaiveDownload, TwoCycleDownload,
};
use dr_download::sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};
use rand::RngCore;

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap()
}

#[test]
fn single_bit_input() {
    for (k, b) in [(1usize, 0usize), (4, 2), (8, 7)] {
        let sim = SimBuilder::new(crash_params(1, k, b))
            .seed(k as u64)
            .protocol(move |_| CrashMultiDownload::new(1, k, b))
            .build();
        let input = sim.input().clone();
        sim.run().unwrap().verify_downloads(&input).unwrap();
    }
}

#[test]
fn single_peer_network() {
    let sim = SimBuilder::new(crash_params(100, 1, 0))
        .seed(1)
        .protocol(|_| CrashMultiDownload::new(100, 1, 0))
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert_eq!(report.max_nonfaulty_queries, 100);
    assert_eq!(report.messages_sent, 0);
}

#[test]
fn fewer_bits_than_peers() {
    // n = 3, k = 8: most peers own nothing in most phases.
    let sim = SimBuilder::new(crash_params(3, 8, 3))
        .seed(2)
        .protocol(|_| CrashMultiDownload::new(3, 8, 3))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(0), PeerId(1)], 1),
        ))
        .build();
    let input = sim.input().clone();
    sim.run().unwrap().verify_downloads(&input).unwrap();
}

#[test]
fn two_peer_network_with_one_crash() {
    // k = 2, b = 1: the threshold k − b = 1, so each peer can only count
    // on itself — effectively naive, but must still terminate.
    let sim = SimBuilder::new(crash_params(64, 2, 1))
        .seed(3)
        .protocol(|_| CrashMultiDownload::new(64, 2, 1))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(1)], 0),
        ))
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert_eq!(report.query_counts[0], 64);
}

#[test]
fn committee_with_exactly_half_minus_one() {
    // Largest legal t for k = 9 is 4 (2t + 1 = 9: every peer serves on
    // every committee).
    let sim = SimBuilder::new(
        ModelParams::builder(36, 9)
            .faults(FaultModel::Byzantine, 4)
            .build()
            .unwrap(),
    )
    .seed(4)
    .protocol(|_| CommitteeDownload::new(36, 9, 4))
    .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    // Committee of 9 on every bit: everyone queries everything.
    assert_eq!(report.max_nonfaulty_queries, 36);
}

#[test]
fn two_cycle_tiny_input_falls_back_to_naive() {
    let (n, k, b) = (16usize, 64usize, 8usize);
    let sim = SimBuilder::new(
        ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b)
            .build()
            .unwrap(),
    )
    .seed(5)
    .protocol(move |_| TwoCycleDownload::new(n, k, b))
    .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
}

/// A mock context for driving a protocol instance directly.
struct MockCtx {
    me: PeerId,
    k: usize,
    input: BitArray,
    sent: Vec<(PeerId, MultiCrashMsg)>,
    rng: rand::rngs::mock::StepRng,
    queries: usize,
}

impl Context<MultiCrashMsg> for MockCtx {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.k
    }
    fn input_len(&self) -> usize {
        self.input.len()
    }
    fn send(&mut self, to: PeerId, msg: MultiCrashMsg) {
        self.sent.push((to, msg));
    }
    fn query(&mut self, index: usize) -> bool {
        self.queries += 1;
        self.input.get(index)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }
}

#[test]
fn malformed_traffic_cannot_corrupt_crash_multi() {
    // Crash-model protocol, but defensive handling of garbage must not
    // panic or corrupt state: wrong-length bitmaps, bogus phases, bogus
    // peer IDs, short Final arrays.
    let n = 64;
    let k = 4;
    let mut p = CrashMultiDownload::new(n, k, 1);
    let mut ctx = MockCtx {
        me: PeerId(0),
        k,
        input: BitArray::from_fn(n, |i| i % 3 == 0),
        sent: Vec::new(),
        rng: rand::rngs::mock::StepRng::new(0, 1),
        queries: 0,
    };
    p.on_start(&mut ctx);
    // Wrong-length Response1 (must be rejected, sender not counted).
    p.on_message(
        PeerId(1),
        MultiCrashMsg::Response1 {
            phase: 1,
            values: BitArray::zeros(3),
        },
        &mut ctx,
    );
    assert!(p.output().is_none());
    // Bogus future-phase response is ignored.
    p.on_message(
        PeerId(2),
        MultiCrashMsg::Response1 {
            phase: 999,
            values: BitArray::zeros(n / k),
        },
        &mut ctx,
    );
    // Request about an out-of-range peer answered with "me neither".
    p.on_message(
        PeerId(1),
        MultiCrashMsg::Request2 {
            phase: 1,
            missing: vec![PeerId(77)],
        },
        &mut ctx,
    );
    // Short Final is rejected; protocol keeps running.
    p.on_message(
        PeerId(3),
        MultiCrashMsg::Final {
            bits: BitArray::zeros(n - 1),
        },
        &mut ctx,
    );
    // The bogus Final still triggers termination-by-direct-query, which
    // must produce the *correct* output (queried, not trusted).
    if let Some(bits) = p.output() {
        assert_eq!(bits, &ctx.input)
    }
}

#[test]
fn naive_is_immune_to_any_traffic() {
    let sim = SimBuilder::new(crash_params(32, 3, 0))
        .seed(6)
        .protocol(|_| NaiveDownload::new())
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
}
