//! Meter-equivalence suite for the query admission plane.
//!
//! The admission plane (`CachedSource` + `AdmissionPlane`) must be a pure
//! amortization: caching and coalescing may only *remove* metered queries,
//! never change outputs or shift charges upward. Concretely, for any
//! sequence (or concurrent interleaving) of `query_range` calls:
//!
//! * every cached read is bit-identical to reading the source directly;
//! * the **total** metered Q across all peers equals the uncached
//!   baseline's unique-word cost — 64 bits per distinct word touched,
//!   clipped at the array tail — regardless of request order, overlap, or
//!   which peer got charged for a shared fetch;
//! * with word-aligned requests, **per-peer** attribution never exceeds
//!   what the same peer would have paid against an uncached source.

use dr_download::core::{AdmissionPlane, ArraySource, BitArray, PeerId, QueryMeter, Source};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic pseudo-random input that exercises word boundaries.
fn test_input(n: usize) -> BitArray {
    BitArray::from_fn(n, |i| (i.wrapping_mul(2654435761) >> 9) % 7 < 3)
}

/// The uncached baseline's unique-word cost for a set of requested ranges:
/// 64 bits per distinct word any range touches, clipped at the tail.
fn unique_word_bits(n: usize, ranges: &[Range<usize>]) -> u64 {
    let mut words = BTreeSet::new();
    for r in ranges {
        if r.start < r.end {
            words.extend(r.start / 64..r.end.div_ceil(64));
        }
    }
    words
        .into_iter()
        .map(|w| ((w * 64 + 64).min(n) - w * 64) as u64)
        .sum()
}

proptest! {
    /// Arbitrary (unaligned, overlapping) request sequences: outputs are
    /// bit-identical and the plane's total metered Q collapses to the
    /// unique-word cost no matter how requests interleave across peers.
    #[test]
    fn any_request_sequence_meters_exactly_the_unique_words(
        n in 65usize..1500,
        reqs in prop::collection::vec((0usize..4, 0usize..1500, 0usize..400), 1..12),
    ) {
        let input = test_input(n);
        let plane = AdmissionPlane::new(ArraySource::new(input.clone()), 4, 3);
        let mut ranges = Vec::new();
        for (peer, start, len) in reqs {
            let start = start % n;
            let len = len.min(n - start);
            let range = start..start + len;
            let (bits, receipt) = plane.handle(PeerId(peer)).query_range(range.clone());
            prop_assert_eq!(&bits, &input.slice(range.clone()));
            // Receipts only ever bill word-aligned fetches (tail-clipped).
            prop_assert!(receipt.fetched_bits <= receipt.fetched_words * 64);
            ranges.push(range);
        }
        let expected = unique_word_bits(n, &ranges);
        let metered: u64 = plane.meter().counts().iter().sum();
        prop_assert_eq!(metered, expected);
        prop_assert_eq!(plane.cache().stats().upstream_bits, expected);
    }

    /// Word-aligned request sequences: in addition to the total collapsing
    /// to the unique-word cost, no individual peer is ever charged more
    /// than it would have paid against an uncached source.
    #[test]
    fn aligned_attribution_never_exceeds_the_uncached_run(
        words in 1usize..24,
        reqs in prop::collection::vec((0usize..4, 0usize..24, 1usize..12), 1..12),
    ) {
        let n = words * 64;
        let input = test_input(n);
        let plane = AdmissionPlane::new(ArraySource::new(input.clone()), 4, 2);
        let uncached = QueryMeter::new(4);
        let mut ranges = Vec::new();
        for (peer, start_w, len_w) in reqs {
            let start_w = start_w % words;
            let len_w = len_w.min(words - start_w);
            let range = start_w * 64..(start_w + len_w) * 64;
            let (bits, _) = plane.handle(PeerId(peer)).query_range(range.clone());
            prop_assert_eq!(&bits, &input.slice(range.clone()));
            uncached.record_range(PeerId(peer), range.clone());
            ranges.push(range);
        }
        for peer in 0..4 {
            prop_assert!(
                plane.meter().count(PeerId(peer)) <= uncached.count(PeerId(peer)),
                "peer {} charged {} cached vs {} uncached",
                peer,
                plane.meter().count(PeerId(peer)),
                uncached.count(PeerId(peer)),
            );
        }
        let metered: u64 = plane.meter().counts().iter().sum();
        prop_assert_eq!(metered, unique_word_bits(n, &ranges));
    }
}

/// Concurrent interleavings: four peer threads hammer overlapping windows
/// simultaneously. Single-flight must keep the totals identical to the
/// sequential accounting — each unique word billed exactly once across the
/// whole fleet — while every read stays bit-identical.
#[test]
fn concurrent_interleavings_preserve_the_meter_equivalence() {
    let n = 4096;
    let input = test_input(n);
    let plane = AdmissionPlane::new(ArraySource::new(input.clone()), 4, 4);
    let uncached = QueryMeter::new(4);
    let mut ranges = Vec::new();
    // Word-aligned, heavily overlapping windows: peer p's request r covers
    // bits [r*512 .. r*512 + 1024), so consecutive requests overlap by half
    // and all four peers issue the identical schedule.
    for peer in 0..4usize {
        for r in 0..6usize {
            let range = r * 512..r * 512 + 1024;
            uncached.record_range(PeerId(peer), range.clone());
            ranges.push(range);
        }
    }
    std::thread::scope(|scope| {
        for peer in 0..4usize {
            let plane = plane.clone();
            let input = &input;
            scope.spawn(move || {
                let handle = plane.handle(PeerId(peer));
                for r in 0..6usize {
                    let range = r * 512..r * 512 + 1024;
                    let (bits, _) = handle.query_range(range.clone());
                    assert_eq!(bits, input.slice(range));
                }
            });
        }
    });
    let expected = unique_word_bits(n, &ranges);
    assert_eq!(expected, 3584, "six half-overlapping 1024-bit windows");
    let metered: u64 = plane.meter().counts().iter().sum();
    assert_eq!(metered, expected, "every unique word billed exactly once");
    assert_eq!(plane.cache().stats().upstream_bits, expected);
    for peer in 0..4 {
        assert!(
            plane.meter().count(PeerId(peer)) <= uncached.count(PeerId(peer)),
            "attribution for peer {peer} exceeds the uncached baseline"
        );
    }
}

/// Mixing cached and uncached readers of the same source never perturbs
/// either side: the uncached reader pays full freight, the plane still
/// collapses to unique words, and both see identical bits.
#[test]
fn cached_and_uncached_readers_agree_bit_for_bit() {
    let n = 1000; // deliberately not word-aligned
    let input = test_input(n);
    let raw = ArraySource::new(input.clone());
    let plane = AdmissionPlane::new(ArraySource::new(input.clone()), 2, 2);
    let mut ranges = Vec::new();
    for (i, (start, len)) in [(0, 300), (250, 500), (900, 100), (0, 1000), (63, 65)]
        .into_iter()
        .enumerate()
    {
        let range = start..start + len;
        let (cached_bits, _) = plane.handle(PeerId(i % 2)).query_range(range.clone());
        let uncached_bits = Source::bits(&raw, range.clone());
        assert_eq!(cached_bits, uncached_bits, "request {i} diverged");
        ranges.push(range);
    }
    let metered: u64 = plane.meter().counts().iter().sum();
    assert_eq!(metered, unique_word_bits(n, &ranges));
    // The whole array was touched, so the plane holds every word and the
    // tail word was clipped: total equals n exactly.
    assert_eq!(metered, n as u64);
}
