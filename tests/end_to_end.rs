//! End-to-end integration: every protocol × adversary combination that
//! its fault regime admits must terminate with exact downloads.

use dr_download::core::{FaultModel, ModelParams, PeerId};
use dr_download::protocols::{
    CommitteeDownload, CrashMultiDownload, MultiCycleDownload, NaiveDownload, SingleCrashDownload,
    TwoCycleDownload,
};
use dr_download::sim::{
    CrashDirective, CrashPlan, CrashTrigger, FixedDelay, SilentAgent, SimBuilder,
    StandardAdversary, TargetedSlowdown, UniformDelay,
};

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap()
}

fn byz_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .unwrap()
}

#[test]
fn crash_multi_survives_every_delay_strategy() {
    let (n, k, b) = (300usize, 6usize, 2usize);
    let plans = || CrashPlan::before_event([PeerId(1), PeerId(4)], 2);
    // Uniform random delays.
    for seed in 0..3 {
        let sim = SimBuilder::new(crash_params(n, k, b))
            .seed(seed)
            .protocol(move |_| CrashMultiDownload::new(n, k, b))
            .adversary(StandardAdversary::new(UniformDelay::new(), plans()))
            .build();
        let input = sim.input().clone();
        sim.run().unwrap().verify_downloads(&input).unwrap();
    }
    // Fixed (synchronous-looking) delays.
    let sim = SimBuilder::new(crash_params(n, k, b))
        .seed(9)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(FixedDelay(100), plans()))
        .build();
    let input = sim.input().clone();
    sim.run().unwrap().verify_downloads(&input).unwrap();
    // Targeted starvation of two peers.
    let sim = SimBuilder::new(crash_params(n, k, b))
        .seed(10)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(
            TargetedSlowdown::new(vec![PeerId(0), PeerId(2)], 2),
            plans(),
        ))
        .build();
    let input = sim.input().clone();
    sim.run().unwrap().verify_downloads(&input).unwrap();
}

#[test]
fn every_protocol_in_its_regime() {
    // Naive under maximal Byzantine presence.
    {
        let (n, k, b) = (128usize, 4usize, 3usize);
        let mut builder = SimBuilder::new(byz_params(n, k, b))
            .seed(1)
            .protocol(|_| NaiveDownload::new());
        for i in 1..=b {
            builder = builder.byzantine(PeerId(i), SilentAgent::new());
        }
        let sim = builder.build();
        let input = sim.input().clone();
        sim.run().unwrap().verify_downloads(&input).unwrap();
    }
    // Algorithm 1 with a mid-broadcast crash.
    {
        let (n, k) = (120usize, 5usize);
        let mut plan = CrashPlan::none();
        plan.push(CrashDirective {
            peer: PeerId(2),
            trigger: CrashTrigger::DuringSend { event: 0, keep: 2 },
        });
        let sim = SimBuilder::new(crash_params(n, k, 1))
            .seed(2)
            .protocol(move |_| SingleCrashDownload::new(n, k))
            .adversary(StandardAdversary::new(UniformDelay::new(), plan))
            .build();
        let input = sim.input().clone();
        sim.run().unwrap().verify_downloads(&input).unwrap();
    }
    // Committee under silent Byzantine members.
    {
        let (n, k, t) = (90usize, 9usize, 4usize);
        let mut builder = SimBuilder::new(byz_params(n, k, t))
            .seed(3)
            .protocol(move |_| CommitteeDownload::new(n, k, t));
        for i in 0..t {
            builder = builder.byzantine(PeerId(2 * i), SilentAgent::new());
        }
        let sim = builder.build();
        let input = sim.input().clone();
        sim.run().unwrap().verify_downloads(&input).unwrap();
    }
    // Randomized protocols at sampling scale.
    {
        let (n, k, b) = (1usize << 13, 128usize, 16usize);
        for seed in [4u64, 5] {
            let sim = SimBuilder::new(byz_params(n, k, b))
                .seed(seed)
                .protocol(move |_| TwoCycleDownload::new(n, k, b))
                .build();
            let input = sim.input().clone();
            sim.run().unwrap().verify_downloads(&input).unwrap();
            let sim = SimBuilder::new(byz_params(n, k, b))
                .seed(seed)
                .protocol(move |_| MultiCycleDownload::new(n, k, b))
                .build();
            let input = sim.input().clone();
            sim.run().unwrap().verify_downloads(&input).unwrap();
        }
    }
}

#[test]
fn crash_multi_beta_extremes() {
    // β → 1: only one survivor.
    let (n, k) = (120usize, 6usize);
    let victims: Vec<PeerId> = (1..6).map(PeerId).collect();
    let sim = SimBuilder::new(crash_params(n, k, 5))
        .seed(6)
        .protocol(move |_| CrashMultiDownload::new(n, k, 5))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event(victims, 0),
        ))
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert_eq!(report.nonfaulty.len(), 1);
    // The lone survivor cannot beat n queries (nobody is left to help).
    assert!(report.query_counts[0] as usize >= n);
}

#[test]
fn unused_fault_budget_changes_nothing_about_correctness() {
    // b reserved but nobody crashes: protocols still wait only for k − b
    // and must terminate correctly.
    let (n, k, b) = (240usize, 8usize, 5usize);
    let sim = SimBuilder::new(crash_params(n, k, b))
        .seed(7)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert_eq!(report.crashed.len(), 0);
}

#[test]
fn message_size_one_bit_still_terminates() {
    // Pathological a = 1: every message is packetized bit by bit.
    let params = ModelParams::builder(32, 4)
        .faults(FaultModel::Crash, 1)
        .message_bits(1)
        .build()
        .unwrap();
    let sim = SimBuilder::new(params)
        .seed(8)
        .protocol(move |_| CrashMultiDownload::new(32, 4, 1))
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(3)], 1),
        ))
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert!(
        report.virtual_time_units > 10.0,
        "tiny packets must cost time"
    );
}
