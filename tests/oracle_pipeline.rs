//! Integration tests of the §4 oracle pipeline across fault mixes.

use dr_download::oracle::{
    in_honest_range, run_baseline, run_download_based, DownloadEngine, OracleConfig, SourceFleet,
};

fn config(seed: u64) -> OracleConfig {
    OracleConfig {
        nodes: 16,
        byz_nodes: 3,
        honest_sources: 5,
        corrupt_sources: 2,
        cells: 16,
        truth_base: 500_000,
        spread: 100,
        seed,
    }
}

#[test]
fn both_pipelines_publish_in_honest_range() {
    for seed in 0..5 {
        let cfg = config(seed);
        let base = run_baseline(&cfg, cfg.sources());
        assert!(base.odd_satisfied(), "baseline seed {seed}: {base:?}");
        let dl = run_download_based(&cfg, DownloadEngine::TwoCycle);
        assert!(dl.odd_satisfied(), "download seed {seed}: {dl:?}");
    }
}

#[test]
fn published_values_track_ground_truth() {
    let cfg = config(9);
    let fleet = SourceFleet::generate(
        cfg.honest_sources,
        cfg.corrupt_sources,
        cfg.cells,
        cfg.truth_base,
        cfg.spread,
        cfg.seed,
    );
    let dl = run_download_based(&cfg, DownloadEngine::CrashMulti);
    for (c, &v) in dl.published.iter().enumerate() {
        let t = fleet.truth()[c];
        assert!(
            v.abs_diff(t) <= 2 * cfg.spread,
            "cell {c}: published {v} vs truth {t}"
        );
    }
}

#[test]
fn honest_range_helper_agrees_with_outcome() {
    let cfg = config(3);
    let fleet = SourceFleet::generate(
        cfg.honest_sources,
        cfg.corrupt_sources,
        cfg.cells,
        cfg.truth_base,
        cfg.spread,
        cfg.seed,
    );
    let out = run_baseline(&cfg, cfg.sources());
    for c in 0..cfg.cells {
        let (lo, hi) = fleet.honest_range(c);
        let honest = [lo, hi];
        assert_eq!(
            in_honest_range(out.published[c], &honest),
            (lo..=hi).contains(&out.published[c])
        );
    }
}

#[test]
fn crash_engine_and_two_cycle_agree_on_published_values() {
    // With static sources and no Byzantine nodes, both engines deliver
    // the exact arrays, so the final published values must coincide.
    let mut cfg = config(4);
    cfg.byz_nodes = 0;
    let a = run_download_based(&cfg, DownloadEngine::CrashMulti);
    let b = run_download_based(&cfg, DownloadEngine::TwoCycle);
    assert_eq!(a.published, b.published);
}

#[test]
fn more_corrupt_sources_than_honest_breaks_odd() {
    // Sanity check of the model limits: with a corrupt majority of
    // sources the median can leave the honest range.
    // Corrupt sources alternate low/high manipulation, so a *directional*
    // majority needs the low-ballers alone to reach the median position:
    // with 1 honest and 7 corrupt (4 low, 3 high) the lower median of the
    // 8 per-cell values is a manipulated one.
    let cfg = OracleConfig {
        nodes: 8,
        byz_nodes: 0,
        honest_sources: 1,
        corrupt_sources: 7,
        cells: 8,
        truth_base: 500_000,
        spread: 10,
        seed: 11,
    };
    let out = run_download_based(&cfg, DownloadEngine::CrashMulti);
    assert!(!out.odd_satisfied());
}

#[test]
fn equivocating_sources_are_absorbed_by_full_sampling() {
    // An equivocating minority: every reader sees different garbage from
    // those sources, but full sampling + per-node median keeps every node
    // report — and the published value — inside the honest range.
    use dr_download::oracle::{run_baseline_on, SourceFleet};
    let cfg = config(21);
    let fleet = SourceFleet::generate(5, 0, cfg.cells, cfg.truth_base, cfg.spread, cfg.seed)
        .with_equivocators(2, 0xfeed);
    let out = run_baseline_on(&fleet, &cfg, fleet.len());
    assert!(out.odd_satisfied(), "{out:?}");
}
