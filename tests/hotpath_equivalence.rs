//! Equivalence regression for the word-level bulk query path.
//!
//! `SourceHandle::query_range` now charges the meter in one batched update
//! and reads bits through `Source::bits` (word-aligned for `ArraySource`).
//! This must be observationally identical to the bit-at-a-time path: same
//! outputs, same per-peer query counts (Q), same message totals (M), and
//! the same per-peer query index logs. We run the same seeded executions
//! twice — once against the standard `ArraySource` (bulk word-level reads)
//! and once against a reference `Source` with no `bits` override, so every
//! range read falls back to the per-bit default — and demand identical
//! reports.

use dr_download::core::{BitArray, FaultModel, ModelParams, PeerId, Source};
use dr_download::protocols::{CrashMultiDownload, TwoCycleDownload};
use dr_download::sim::{CrashPlan, RunReport, SimBuilder, StandardAdversary, UniformDelay};
use std::ops::Range;

/// Reference bit-at-a-time source: no `bits` override, so the provided
/// per-bit default (one dynamically dispatched `bit` call per index) is
/// used for every range read.
struct PerBitSource(BitArray);

impl Source for PerBitSource {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn bit(&self, index: usize) -> bool {
        self.0.get(index)
    }
}

/// Deterministic pseudo-random input that straddles word boundaries
/// (length deliberately not a multiple of 64 where callers choose so).
fn test_input(n: usize) -> BitArray {
    BitArray::from_fn(n, |i| (i.wrapping_mul(2654435761) >> 7) % 5 < 2)
}

/// (outputs, per-peer Q, M, message bits, per-peer query index logs).
type Fingerprint = (Vec<Option<BitArray>>, Vec<u64>, u64, u64, Vec<Vec<usize>>);

fn fingerprint(r: &RunReport) -> Fingerprint {
    (
        r.outputs.clone(),
        r.query_counts.clone(),
        r.messages_sent,
        r.message_bits,
        r.query_indices.clone().expect("index tracking enabled"),
    )
}

/// Runs the same seeded simulation with the bulk `ArraySource` and with the
/// per-bit reference source, returning both fingerprints.
fn run_both<P, F>(
    params: ModelParams,
    seed: u64,
    crashes: Range<usize>,
    factory: F,
) -> (Fingerprint, Fingerprint)
where
    P: dr_download::core::Protocol + 'static,
    F: Fn(PeerId) -> P + Send + Clone + 'static,
{
    let input = test_input(params.n());
    let build = |use_reference_source: bool| {
        let mut b = SimBuilder::new(params)
            .seed(seed)
            .protocol(factory.clone())
            .track_query_indices();
        b = if use_reference_source {
            b.source(PerBitSource(input.clone()), input.clone())
        } else {
            b.input(input.clone())
        };
        if !crashes.is_empty() {
            b = b.adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event(crashes.clone().map(PeerId), 1),
            ));
        }
        b.build()
    };
    let bulk = build(false).run().unwrap();
    let reference = build(true).run().unwrap();
    (fingerprint(&bulk), fingerprint(&reference))
}

#[test]
fn crash_multi_bulk_path_matches_per_bit_reference() {
    let (n, k, b) = (3 * 64 + 5, 6, 2);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap();
    let (bulk, reference) = run_both(params, 9, 0..b, move |_| CrashMultiDownload::new(n, k, b));
    assert_eq!(bulk, reference);
}

#[test]
fn two_cycle_bulk_path_matches_per_bit_reference() {
    let (n, k, b) = (1024, 64, 8);
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .unwrap();
    let (bulk, reference) = run_both(params, 13, 0..0, move |_| TwoCycleDownload::new(n, k, b));
    assert_eq!(bulk, reference);
}
