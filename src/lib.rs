//! # dr-download
//!
//! A production-quality Rust implementation of *Distributed Download from
//! an External Data Source in Asynchronous Faulty Settings* (Augustine,
//! Chatterjee, King, Kumar, Meir, Peleg; brief announcement at PODC 2025,
//! full version at DISC 2025): the Data Retrieval (DR) model, every
//! Download protocol the paper presents (crash-fault deterministic,
//! Byzantine deterministic, and Byzantine randomized), executable versions
//! of the Byzantine-majority lower bounds, and the blockchain-oracle
//! application.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`] (`dr-core`) — the model substrate: peers, bit arrays,
//!   the metered external source, segments, assignments, and the
//!   [`Protocol`](core::Protocol)/[`Context`](core::Context) abstraction;
//! * [`sim`] (`dr-sim`) — the deterministic discrete-event simulator with
//!   a full adversary interface (delays, holds, crashes, Byzantine
//!   drivers, quiescence);
//! * [`protocols`] (`dr-protocols`) — the paper's protocols and the
//!   lower-bound attacks;
//! * [`runtime`] (`dr-runtime`) — a thread-per-peer executor over real
//!   channels running the same protocol state machines;
//! * [`oracle`] (`dr-oracle`) — the §4 Oracle Data Delivery application.
//!
//! ## Quickstart
//!
//! ```
//! use dr_download::core::{FaultModel, ModelParams, PeerId};
//! use dr_download::protocols::CrashMultiDownload;
//! use dr_download::sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};
//!
//! // 1024-bit source, 8 peers, up to 3 crash faults — all of which occur.
//! let params = ModelParams::builder(1024, 8)
//!     .faults(FaultModel::Crash, 3)
//!     .build()?;
//! let sim = SimBuilder::new(params)
//!     .seed(7)
//!     .protocol(|_| CrashMultiDownload::new(1024, 8, 3))
//!     .adversary(StandardAdversary::new(
//!         UniformDelay::new(),
//!         CrashPlan::before_event([PeerId(0), PeerId(1), PeerId(2)], 1),
//!     ))
//!     .build();
//! let input = sim.input().clone();
//! let report = sim.run().unwrap();
//! report.verify_downloads(&input).unwrap();
//! assert!(report.max_nonfaulty_queries < 1024); // far below naive
//! # Ok::<(), dr_download::core::InvalidParamsError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the experiment harness regenerating the paper's
//! evaluation artifacts.

#![forbid(unsafe_code)]

pub use dr_core as core;
pub use dr_oracle as oracle;
pub use dr_protocols as protocols;
pub use dr_runtime as runtime;
pub use dr_sim as sim;
