//! Assignment of query responsibility for input bits to peers.
//!
//! The crash-fault protocols (§2) maintain, at every peer, an assignment
//! function `A : bit -> peer` saying who is responsible for querying each
//! bit. Phase 1 starts from the balanced round-robin assignment; in later
//! phases each peer reassigns the bits of peers it did not hear from evenly
//! among all peers (Algorithm 2, stage 3). The protocol's correctness rests
//! on Claim 1: two honest peers either assign a bit to the same peer or at
//! least one of them already knows it — which holds because reassignment is
//! a deterministic function of the missing peer's bit set.

use crate::peer::PeerId;
use serde::{Deserialize, Serialize};

/// An assignment of each input bit to the peer responsible for querying it.
///
/// # Examples
///
/// ```
/// use dr_core::{Assignment, PeerId};
///
/// let a = Assignment::round_robin(10, 3);
/// assert_eq!(a.peer_for(0), PeerId(0));
/// assert_eq!(a.peer_for(4), PeerId(1));
/// assert_eq!(a.bits_of(PeerId(0)), vec![0, 3, 6, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    num_peers: usize,
    owner: Vec<u32>,
}

impl Assignment {
    /// The balanced initial assignment: bit `j` belongs to peer `j mod k`.
    ///
    /// # Panics
    ///
    /// Panics if `num_peers == 0`.
    pub fn round_robin(n: usize, num_peers: usize) -> Self {
        assert!(num_peers > 0, "need at least one peer");
        Assignment {
            num_peers,
            owner: (0..n).map(|j| (j % num_peers) as u32).collect(),
        }
    }

    /// Number of input bits covered.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the assignment covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Number of peers in the universe.
    pub fn num_peers(&self) -> usize {
        self.num_peers
    }

    /// The peer responsible for bit `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn peer_for(&self, j: usize) -> PeerId {
        PeerId(self.owner[j] as usize)
    }

    /// All bits assigned to `peer`, in increasing order.
    pub fn bits_of(&self, peer: PeerId) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == peer.index())
            .map(|(j, _)| j)
            .collect()
    }

    /// Reassigns the given bits evenly among all peers, in a deterministic
    /// order (bits sorted; bit `r`-th in the sorted list goes to peer
    /// `r mod k`). All honest peers reassigning the same missing peer's bit
    /// set therefore produce identical assignments — the property behind
    /// Claim 1 of the paper.
    pub fn reassign_evenly(&mut self, bits: &[usize]) {
        let mut sorted: Vec<usize> = bits.to_vec();
        sorted.sort_unstable();
        for (r, &j) in sorted.iter().enumerate() {
            self.owner[j] = (r % self.num_peers) as u32;
        }
    }

    /// Maximum number of bits assigned to any single peer (the per-phase
    /// query load).
    pub fn max_load(&self) -> usize {
        let mut load = vec![0usize; self.num_peers];
        for &o in &self.owner {
            load[o as usize] += 1;
        }
        load.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced() {
        let a = Assignment::round_robin(100, 7);
        assert!(a.max_load() <= 100usize.div_ceil(7));
        for j in 0..100 {
            assert_eq!(a.peer_for(j), PeerId(j % 7));
        }
    }

    #[test]
    fn bits_of_inverts_peer_for() {
        let a = Assignment::round_robin(20, 4);
        for p in 0..4 {
            for &j in &a.bits_of(PeerId(p)) {
                assert_eq!(a.peer_for(j), PeerId(p));
            }
        }
    }

    #[test]
    fn reassign_is_deterministic_and_balanced() {
        let mut a = Assignment::round_robin(30, 5);
        let mut b = a.clone();
        let missing: Vec<usize> = a.bits_of(PeerId(2));
        a.reassign_evenly(&missing);
        // Same bits in a different order must produce the same result.
        let mut shuffled = missing.clone();
        shuffled.reverse();
        b.reassign_evenly(&shuffled);
        assert_eq!(a, b);
        // Former owner's bits are now spread across peers 0..missing.len().
        for (r, &j) in missing.iter().enumerate() {
            assert_eq!(a.peer_for(j), PeerId(r % 5));
        }
    }

    #[test]
    fn reassign_leaves_other_bits_untouched() {
        let mut a = Assignment::round_robin(12, 3);
        let before: Vec<PeerId> = (0..12).map(|j| a.peer_for(j)).collect();
        a.reassign_evenly(&[1, 4]);
        for (j, &prev) in before.iter().enumerate() {
            if j != 1 && j != 4 {
                assert_eq!(a.peer_for(j), prev);
            }
        }
    }

    #[test]
    fn empty_assignment() {
        let a = Assignment::round_robin(0, 3);
        assert!(a.is_empty());
        assert_eq!(a.max_load(), 0);
    }
}
