//! Segmentation of the input array and segment-valued bit strings.
//!
//! The randomized Byzantine protocols (§3.4) partition the `n`-bit input
//! into contiguous segments of roughly equal length; peers query whole
//! segments and gossip `(segment, string)` pairs. [`Segmentation`] computes
//! the partition, [`SegmentId`] names a segment, and [`SegmentString`] is a
//! claimed value for one segment — the unit that frequency counting and the
//! decision-tree machinery operate on.

use crate::bits::BitArray;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// Identifier of a segment within a [`Segmentation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(pub usize);

impl SegmentId {
    /// Returns the underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A partition of `0..n` into `count` contiguous segments of near-equal
/// length (lengths differ by at most one bit).
///
/// # Examples
///
/// ```
/// use dr_core::{Segmentation, SegmentId};
///
/// let seg = Segmentation::new(10, 3);
/// assert_eq!(seg.count(), 3);
/// assert_eq!(seg.range(SegmentId(0)), 0..3);
/// assert_eq!(seg.range(SegmentId(2)), 6..10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segmentation {
    n: usize,
    count: usize,
}

impl Segmentation {
    /// Creates a segmentation of `n` bits into `count` segments.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `count > n` (a segment must be non-empty).
    pub fn new(n: usize, count: usize) -> Self {
        assert!(count > 0, "segment count must be positive");
        assert!(
            count <= n,
            "cannot split {n} bits into {count} non-empty segments"
        );
        Segmentation { n, count }
    }

    /// Total number of bits being partitioned.
    #[inline]
    pub fn input_len(&self) -> usize {
        self.n
    }

    /// Number of segments.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The bit range covered by segment `id`:
    /// `⌊id·n/count⌋ .. ⌊(id+1)·n/count⌋`.
    ///
    /// Lengths differ by at most one bit and ranges tile `0..n` exactly.
    /// This formula *nests* under halving: with `count` even, segment `i`
    /// of `Segmentation::new(n, count/2)` is exactly the union of segments
    /// `2i` and `2i+1` of `Segmentation::new(n, count)` — the property the
    /// multi-cycle randomized protocol's doubling segments rely on.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn range(&self, id: SegmentId) -> Range<usize> {
        assert!(
            id.0 < self.count,
            "segment {id} out of range {}",
            self.count
        );
        let start = id.0 * self.n / self.count;
        let end = (id.0 + 1) * self.n / self.count;
        start..end
    }

    /// Length in bits of segment `id`.
    pub fn len_of(&self, id: SegmentId) -> usize {
        self.range(id).len()
    }

    /// The segment containing bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn segment_of(&self, i: usize) -> SegmentId {
        assert!(i < self.n, "bit {i} out of range {}", self.n);
        // Binary search over segment starts.
        let (mut lo, mut hi) = (0usize, self.count);
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.range(SegmentId(mid)).start <= i {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SegmentId(lo)
    }

    /// Iterates over all segment IDs.
    pub fn ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.count).map(SegmentId)
    }
}

/// A claimed value for one segment: the pair `(segment id, bit string)` that
/// peers broadcast in the randomized protocols.
///
/// Two segment strings are *overlapping* when they name the same segment and
/// *consistent* when in addition their bits agree (i.e. they are equal).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentString {
    /// Which segment this string claims a value for.
    pub segment: SegmentId,
    /// The claimed bits of the segment.
    pub bits: BitArray,
}

impl SegmentString {
    /// Creates a claimed value for a segment.
    pub fn new(segment: SegmentId, bits: BitArray) -> Self {
        SegmentString { segment, bits }
    }

    /// Whether two strings claim the same segment (possibly different bits).
    pub fn overlaps(&self, other: &SegmentString) -> bool {
        self.segment == other.segment
    }

    /// Whether two strings claim the same segment with identical bits.
    pub fn consistent_with(&self, other: &SegmentString) -> bool {
        self == other
    }

    /// Message size of this string in bits (segment id encoded in 64 bits).
    pub fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_input() {
        for n in [1usize, 7, 64, 100, 1023] {
            for count in [1usize, 2, 3, 7] {
                if count > n {
                    continue;
                }
                let seg = Segmentation::new(n, count);
                let mut covered = 0;
                for id in seg.ids() {
                    let r = seg.range(id);
                    assert_eq!(r.start, covered, "n={n} count={count} id={id:?}");
                    covered = r.end;
                    assert!(!r.is_empty());
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn lengths_differ_by_at_most_one() {
        let seg = Segmentation::new(10, 3);
        let lens: Vec<usize> = seg.ids().map(|id| seg.len_of(id)).collect();
        assert_eq!(lens, vec![3, 3, 4]);
    }

    #[test]
    fn halving_counts_nest_exactly() {
        for n in [16usize, 100, 1023, 4097] {
            for count in [2usize, 4, 8, 16] {
                if count > n {
                    continue;
                }
                let fine = Segmentation::new(n, count);
                let coarse = Segmentation::new(n, count / 2);
                for i in 0..count / 2 {
                    let parent = coarse.range(SegmentId(i));
                    let left = fine.range(SegmentId(2 * i));
                    let right = fine.range(SegmentId(2 * i + 1));
                    assert_eq!(parent.start, left.start);
                    assert_eq!(left.end, right.start);
                    assert_eq!(right.end, parent.end);
                }
            }
        }
    }

    #[test]
    fn segment_of_inverts_range() {
        let seg = Segmentation::new(101, 7);
        for id in seg.ids() {
            for i in seg.range(id) {
                assert_eq!(seg.segment_of(i), id);
            }
        }
    }

    #[test]
    fn overlap_and_consistency() {
        let a = SegmentString::new(SegmentId(1), BitArray::from_bools(&[true, false]));
        let b = SegmentString::new(SegmentId(1), BitArray::from_bools(&[true, true]));
        let c = SegmentString::new(SegmentId(2), BitArray::from_bools(&[true, false]));
        assert!(a.overlaps(&b));
        assert!(!a.consistent_with(&b));
        assert!(!a.overlaps(&c));
        assert!(a.consistent_with(&a.clone()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn too_many_segments_panics() {
        Segmentation::new(3, 4);
    }
}
