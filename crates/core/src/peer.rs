//! Peer identities and sets of peers.
//!
//! The DR model consists of `k` peers with unique IDs drawn from `0..k`,
//! connected by a complete communication network. [`PeerId`] is a newtype
//! over the ID and [`PeerSet`] is a compact bitset over the peer universe,
//! used pervasively by protocols to track which peers they have heard from
//! (the paper's `CORRECT` sets) and which peers are still missing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a peer in the range `0..k`.
///
/// # Examples
///
/// ```
/// use dr_core::PeerId;
///
/// let p = PeerId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub usize);

impl PeerId {
    /// Returns the underlying index of this peer.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for PeerId {
    fn from(i: usize) -> Self {
        PeerId(i)
    }
}

/// A set of peers over a fixed universe `0..k`, stored as a packed bitset.
///
/// # Examples
///
/// ```
/// use dr_core::{PeerId, PeerSet};
///
/// let mut s = PeerSet::new(8);
/// s.insert(PeerId(1));
/// s.insert(PeerId(5));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(PeerId(5)));
/// let ids: Vec<_> = s.iter().map(|p| p.index()).collect();
/// assert_eq!(ids, vec![1, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeerSet {
    universe: usize,
    words: Vec<u64>,
}

impl PeerSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        PeerSet {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates a full set containing every peer in `0..universe`.
    pub fn full(universe: usize) -> Self {
        PeerSet::from_fn(universe, |_| true)
    }

    /// Creates a set from a membership predicate on peer indices, filling
    /// one packed word at a time.
    pub fn from_fn(universe: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut s = PeerSet::new(universe);
        for (w, word) in s.words.iter_mut().enumerate() {
            let base = w * 64;
            let top = 64.min(universe - base);
            let mut v = 0u64;
            for b in 0..top {
                if f(base + b) {
                    v |= 1 << b;
                }
            }
            *word = v;
        }
        s
    }

    /// Size of the peer universe this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a peer; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is outside the universe.
    pub fn insert(&mut self, peer: PeerId) -> bool {
        assert!(
            peer.0 < self.universe,
            "peer {peer} outside universe {}",
            self.universe
        );
        let (w, b) = (peer.0 / 64, peer.0 % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a peer; returns `true` if it was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        if peer.0 >= self.universe {
            return false;
        }
        let (w, b) = (peer.0 / 64, peer.0 % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, peer: PeerId) -> bool {
        peer.0 < self.universe && self.words[peer.0 / 64] & (1 << (peer.0 % 64)) != 0
    }

    /// Number of peers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in increasing ID order.
    pub fn iter(&self) -> impl Iterator<Item = PeerId> + '_ {
        let universe = self.universe;
        (0..universe).map(PeerId).filter(move |&p| self.contains(p))
    }

    /// Complement of the set within its universe.
    pub fn complement(&self) -> PeerSet {
        let mut out = PeerSet::new(self.universe);
        for i in 0..self.universe {
            if !self.contains(PeerId(i)) {
                out.insert(PeerId(i));
            }
        }
        out
    }

    /// Set intersection. Both sets must share the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &PeerSet) -> PeerSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// Set union. Both sets must share the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &PeerSet) -> PeerSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }
}

impl fmt::Debug for PeerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<PeerId> for PeerSet {
    /// Collects peer IDs into a set whose universe is one past the largest ID.
    fn from_iter<T: IntoIterator<Item = PeerId>>(iter: T) -> Self {
        let ids: Vec<PeerId> = iter.into_iter().collect();
        let universe = ids.iter().map(|p| p.0 + 1).max().unwrap_or(0);
        let mut s = PeerSet::new(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = PeerSet::new(100);
        assert!(s.insert(PeerId(0)));
        assert!(s.insert(PeerId(99)));
        assert!(!s.insert(PeerId(0)));
        assert!(s.contains(PeerId(0)));
        assert!(s.contains(PeerId(99)));
        assert!(!s.contains(PeerId(50)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_works() {
        let mut s = PeerSet::full(10);
        assert!(s.remove(PeerId(3)));
        assert!(!s.remove(PeerId(3)));
        assert_eq!(s.len(), 9);
        assert!(!s.contains(PeerId(3)));
    }

    #[test]
    fn complement_partitions_universe() {
        let mut s = PeerSet::new(7);
        s.insert(PeerId(2));
        s.insert(PeerId(4));
        let c = s.complement();
        assert_eq!(c.len(), 5);
        assert_eq!(s.intersection(&c).len(), 0);
        assert_eq!(s.union(&c).len(), 7);
    }

    #[test]
    fn full_set_has_all() {
        let s = PeerSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.contains(PeerId(64)));
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = PeerSet::new(128);
        for i in [5usize, 120, 64, 63, 0] {
            s.insert(PeerId(i));
        }
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 5, 63, 64, 120]);
    }

    #[test]
    fn empty_set() {
        let s = PeerSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        let mut s = PeerSet::new(4);
        s.insert(PeerId(4));
    }

    #[test]
    fn overlap_lemma() {
        // Observation (Overlap Lemma): any two sets of size k - b peers
        // overlap in at least k - 2b peers; for b < k/2 they must intersect.
        let k = 11;
        let b = 5;
        let mut a = PeerSet::new(k);
        let mut c = PeerSet::new(k);
        for i in 0..(k - b) {
            a.insert(PeerId(i));
            c.insert(PeerId(k - 1 - i));
        }
        assert!(a.intersection(&c).len() >= k - 2 * b);
    }
}
