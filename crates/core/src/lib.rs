//! Substrate types for the distributed Data Retrieval (DR) model.
//!
//! The DR model (Augustine, Chatterjee, King, Kumar, Meir, Peleg —
//! *Distributed Download from an External Data Source in Asynchronous
//! Faulty Settings*) consists of `k` peers on a complete asynchronous
//! message-passing network plus a trusted external data source storing an
//! `n`-bit array `X`. Peers learn `X` either through expensive, metered
//! queries to the source or through cheap peer-to-peer messages of at most
//! `a` bits. Up to `b = βk` peers may be faulty (crash or Byzantine).
//!
//! This crate provides the model substrate shared by every other crate in
//! the workspace:
//!
//! * [`PeerId`] / [`PeerSet`] — peer identities and compact peer sets;
//! * [`BitArray`] / [`PartialArray`] — the input array and each peer's
//!   partially-known working copy;
//! * [`collections`] — deterministic [`DetMap`](collections::DetMap) /
//!   [`DetSet`](collections::DetSet) aliases required for keyed state in
//!   the deterministic crate tier (enforced by `dr-lint`);
//! * [`Segmentation`] / [`SegmentString`] — the segment machinery of the
//!   randomized Byzantine protocols (§3.4);
//! * [`Source`], [`ArraySource`], [`SharedSource`], [`SourceHandle`],
//!   [`QueryMeter`] — the external source with per-peer query accounting
//!   (the paper's query-complexity measure `Q`);
//! * [`ChunkedSource`] — a streaming, generate-on-demand source with a
//!   bounded resident set, for `n` far beyond RAM;
//! * [`Assignment`] — the bit-to-peer responsibility function of the
//!   crash-fault protocols (§2);
//! * [`ModelParams`] — validated instance parameters (`n`, `k`, `b`, `a`);
//! * [`Protocol`] / [`Context`] / [`ProtocolMessage`] — the event-driven
//!   state-machine abstraction that both the discrete-event simulator
//!   (`dr-sim`) and the thread runtime (`dr-runtime`) drive.
//!
//! # Examples
//!
//! ```
//! use dr_core::{ArraySource, BitArray, ModelParams, PeerId, SharedSource};
//!
//! let params = ModelParams::fault_free(64, 4)?;
//! let input = BitArray::from_fn(params.n(), |i| i % 5 == 0);
//! let source = SharedSource::new(ArraySource::new(input), params.k());
//! let handle = source.handle(PeerId(0));
//! assert!(handle.query(0));
//! assert_eq!(source.meter().count(PeerId(0)), 1);
//! # Ok::<(), dr_core::InvalidParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod bits;
mod cached;
mod chunked;
pub mod collections;
mod error;
mod params;
mod peer;
mod protocol;
mod segment;
mod source;
pub mod sync;

pub use assignment::Assignment;
pub use bits::{BitArray, PartialArray};
pub use cached::{AdmissionPlane, CacheStats, CachedSource, PlaneHandle, ReadReceipt};
pub use chunked::{ChunkStats, ChunkedSource};
pub use error::InvalidParamsError;
pub use params::{FaultModel, ModelParams, ModelParamsBuilder};
pub use peer::{PeerId, PeerSet};
pub use protocol::{Context, Protocol, ProtocolMessage};
pub use segment::{SegmentId, SegmentString, Segmentation};
pub use source::{ArraySource, MeterDelta, QueryMeter, SharedSource, Source, SourceHandle};
