//! Packed bit arrays and partially-known bit arrays.
//!
//! The external data source stores an `n`-bit input array `X`; every peer
//! must output a copy of it. [`BitArray`] is the packed representation used
//! for both the source contents and protocol outputs. [`PartialArray`] pairs
//! a value array with a "known" mask and is the working state of every
//! Download protocol: bits move from unknown to known as queries are made
//! and messages arrive, and the protocol terminates once nothing is unknown.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A fixed-length packed array of bits.
///
/// Unused high bits of the last word are kept zeroed so that `Eq` and `Hash`
/// are well-defined on the packed representation.
///
/// # Examples
///
/// ```
/// use dr_core::BitArray;
///
/// let mut x = BitArray::zeros(10);
/// x.set(3, true);
/// assert!(x.get(3));
/// assert_eq!(x.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitArray {
    len: usize,
    words: Vec<u64>,
}

impl BitArray {
    /// Creates an all-zero array of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitArray {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an array from a predicate on bit indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use dr_core::BitArray;
    /// let x = BitArray::from_fn(8, |i| i % 2 == 0);
    /// assert_eq!(x.count_ones(), 4);
    /// ```
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut out = BitArray::zeros(len);
        for i in 0..len {
            if f(i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Creates an array from a slice of bools.
    pub fn from_bools(bits: &[bool]) -> Self {
        BitArray::from_fn(bits.len(), |i| bits[i])
    }

    /// Creates a uniformly random array using the given RNG.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut out = BitArray::zeros(len);
        for w in &mut out.words {
            *w = rng.gen();
        }
        out.mask_tail();
        out
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Flips bit `i` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of one-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extracts the bits of `range` as a new array.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> BitArray {
        assert!(
            range.end <= self.len,
            "slice {range:?} out of range {}",
            self.len
        );
        BitArray::from_fn(range.len(), |i| self.get(range.start + i))
    }

    /// Writes `bits` into `self` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write would run past the end.
    pub fn write_at(&mut self, offset: usize, bits: &BitArray) {
        assert!(offset + bits.len() <= self.len, "write_at out of range");
        for i in 0..bits.len() {
            self.set(offset + i, bits.get(i));
        }
    }

    /// Iterates over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Index of the first bit on which `self` and `other` differ, if any.
    ///
    /// This is the "separating index" used by the decision-tree construction
    /// (Protocol 3) to resolve conflicts between inconsistent strings.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn first_difference(&self, other: &BitArray) -> Option<usize> {
        assert_eq!(self.len, other.len, "length mismatch");
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                let bit = w * 64 + diff.trailing_zeros() as usize;
                if bit < self.len {
                    return Some(bit);
                }
            }
        }
        None
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for BitArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitArray[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitArray {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitArray::from_bools(&bits)
    }
}

/// A bit array together with a mask of which positions are known.
///
/// This is each peer's working copy of the input: queried or received bits
/// are recorded with [`PartialArray::learn`], and the protocol may terminate
/// once [`PartialArray::unknown_count`] reaches zero.
///
/// # Examples
///
/// ```
/// use dr_core::PartialArray;
///
/// let mut p = PartialArray::new(4);
/// p.learn(2, true);
/// assert_eq!(p.unknown_count(), 3);
/// assert_eq!(p.get(2), Some(true));
/// assert_eq!(p.get(0), None);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialArray {
    values: BitArray,
    known: BitArray,
    unknown: usize,
}

impl PartialArray {
    /// Creates an array of `len` bits, all unknown.
    pub fn new(len: usize) -> Self {
        PartialArray {
            values: BitArray::zeros(len),
            known: BitArray::zeros(len),
            unknown: len,
        }
    }

    /// Number of bits (known and unknown).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the array has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of still-unknown bits.
    #[inline]
    pub fn unknown_count(&self) -> usize {
        self.unknown
    }

    /// Whether every bit is known.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.unknown == 0
    }

    /// Whether bit `i` is known.
    #[inline]
    pub fn is_known(&self, i: usize) -> bool {
        self.known.get(i)
    }

    /// The value of bit `i` if known.
    pub fn get(&self, i: usize) -> Option<bool> {
        if self.known.get(i) {
            Some(self.values.get(i))
        } else {
            None
        }
    }

    /// Records the value of bit `i`. Re-learning a known bit keeps the first
    /// value (values are never overwritten, matching the protocols in the
    /// paper where honest data is consistent).
    pub fn learn(&mut self, i: usize, value: bool) {
        if !self.known.get(i) {
            self.known.set(i, true);
            self.values.set(i, value);
            self.unknown -= 1;
        }
    }

    /// Records a contiguous run of bits starting at `offset`.
    pub fn learn_slice(&mut self, offset: usize, bits: &BitArray) {
        for i in 0..bits.len() {
            self.learn(offset + i, bits.get(i));
        }
    }

    /// Copies every known bit of `other` into `self`.
    pub fn merge(&mut self, other: &PartialArray) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for i in 0..other.len() {
            if let Some(v) = other.get(i) {
                self.learn(i, v);
            }
        }
    }

    /// Iterates over indices of unknown bits, in order.
    pub fn unknown_iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |&i| !self.known.get(i))
    }

    /// The known values restricted to `range`, or `None` if any bit in the
    /// range is unknown.
    pub fn known_slice(&self, range: Range<usize>) -> Option<BitArray> {
        if range.clone().all(|i| self.known.get(i)) {
            Some(self.values.slice(range))
        } else {
            None
        }
    }

    /// Converts into the completed array.
    ///
    /// # Panics
    ///
    /// Panics if any bit is still unknown.
    pub fn into_complete(self) -> BitArray {
        assert!(self.unknown == 0, "{} bits still unknown", self.unknown);
        self.values
    }

    /// Borrow of the completed array.
    ///
    /// Returns `None` if any bit is still unknown.
    pub fn as_complete(&self) -> Option<&BitArray> {
        if self.unknown == 0 {
            Some(&self.values)
        } else {
            None
        }
    }
}

impl fmt::Debug for PartialArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PartialArray[{} bits, {} unknown]",
            self.len(),
            self.unknown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_set() {
        let mut x = BitArray::zeros(130);
        assert_eq!(x.len(), 130);
        assert_eq!(x.count_ones(), 0);
        x.set(0, true);
        x.set(129, true);
        assert!(x.get(0));
        assert!(x.get(129));
        assert!(!x.get(64));
        assert_eq!(x.count_ones(), 2);
    }

    #[test]
    fn random_is_masked() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = BitArray::random(70, &mut rng);
        // If the tail were unmasked, equality with a from_fn copy would fail.
        let y = BitArray::from_fn(70, |i| x.get(i));
        assert_eq!(x, y);
    }

    #[test]
    fn slice_and_write_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = BitArray::random(200, &mut rng);
        let s = x.slice(50..150);
        assert_eq!(s.len(), 100);
        let mut y = BitArray::zeros(200);
        y.write_at(50, &s);
        for i in 50..150 {
            assert_eq!(x.get(i), y.get(i));
        }
    }

    #[test]
    fn first_difference_finds_separating_index() {
        let a = BitArray::from_bools(&[false, true, false, true]);
        let b = BitArray::from_bools(&[false, true, true, true]);
        assert_eq!(a.first_difference(&b), Some(2));
        assert_eq!(a.first_difference(&a), None);
    }

    #[test]
    fn flip_toggles() {
        let mut x = BitArray::zeros(5);
        assert!(x.flip(2));
        assert!(!x.flip(2));
    }

    #[test]
    fn partial_learn_and_complete() {
        let mut p = PartialArray::new(5);
        assert_eq!(p.unknown_count(), 5);
        for i in 0..5 {
            p.learn(i, i % 2 == 0);
        }
        assert!(p.is_complete());
        let done = p.into_complete();
        assert_eq!(
            done,
            BitArray::from_bools(&[true, false, true, false, true])
        );
    }

    #[test]
    fn learn_never_overwrites() {
        let mut p = PartialArray::new(2);
        p.learn(0, true);
        p.learn(0, false);
        assert_eq!(p.get(0), Some(true));
        assert_eq!(p.unknown_count(), 1);
    }

    #[test]
    fn merge_combines_knowledge() {
        let mut a = PartialArray::new(4);
        a.learn(0, true);
        let mut b = PartialArray::new(4);
        b.learn(3, false);
        a.merge(&b);
        assert_eq!(a.unknown_count(), 2);
        assert_eq!(a.get(3), Some(false));
    }

    #[test]
    fn known_slice_requires_full_knowledge() {
        let mut p = PartialArray::new(6);
        p.learn_slice(2, &BitArray::from_bools(&[true, true]));
        assert!(p.known_slice(2..4).is_some());
        assert!(p.known_slice(1..4).is_none());
    }

    #[test]
    fn unknown_iter_lists_gaps() {
        let mut p = PartialArray::new(4);
        p.learn(1, false);
        let v: Vec<usize> = p.unknown_iter().collect();
        assert_eq!(v, vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let x = BitArray::zeros(3);
        x.get(3);
    }
}
