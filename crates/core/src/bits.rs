//! Packed bit arrays and partially-known bit arrays.
//!
//! The external data source stores an `n`-bit input array `X`; every peer
//! must output a copy of it. [`BitArray`] is the packed representation used
//! for both the source contents and protocol outputs. [`PartialArray`] pairs
//! a value array with a "known" mask and is the working state of every
//! Download protocol: bits move from unknown to known as queries are made
//! and messages arrive, and the protocol terminates once nothing is unknown.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// All-ones mask covering the low `n` bits (`n <= 64`).
#[inline]
fn low_mask(n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Reads 64 bits of `words` starting at bit position `pos`, little-endian
/// within each word. Bits past the end of `words` read as zero.
#[inline]
fn read_word(words: &[u64], pos: usize) -> u64 {
    let (w, s) = (pos / 64, pos % 64);
    let lo = words.get(w).copied().unwrap_or(0) >> s;
    if s == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - s))
    }
}

/// A fixed-length packed array of bits.
///
/// Unused high bits of the last word are kept zeroed so that `Eq` and `Hash`
/// are well-defined on the packed representation.
///
/// The word buffer is a shared copy-on-write store: [`Clone`] is `O(1)`
/// (it bumps a reference count instead of copying `n` bits), and the
/// first mutation of a shared array transparently un-shares it. This is
/// what makes broadcast payloads in the simulator zero-copy — `k − 1`
/// clones of an `n`-bit message cost `O(k)`, not `O(k·n)` — while
/// `Eq`/`Hash`/`Ord`/serde all keep value semantics over the bit
/// contents, never the sharing state.
///
/// # Examples
///
/// ```
/// use dr_core::BitArray;
///
/// let mut x = BitArray::zeros(10);
/// x.set(3, true);
/// assert!(x.get(3));
/// assert_eq!(x.count_ones(), 1);
///
/// // Cloning shares the buffer; mutation un-shares it.
/// let snapshot = x.clone();
/// assert!(x.shares_buffer_with(&snapshot));
/// x.set(4, true);
/// assert!(!x.shares_buffer_with(&snapshot));
/// assert!(!snapshot.get(4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitArray {
    len: usize,
    words: Arc<Vec<u64>>,
}

impl BitArray {
    /// Creates an all-zero array of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitArray {
            len,
            words: Arc::new(vec![0; len.div_ceil(64)]),
        }
    }

    /// Mutable access to the word store, un-sharing it first if any
    /// other array aliases it (the copy-on-write step). Cheap when the
    /// buffer is unshared: one reference-count check, no copy.
    #[inline]
    fn words_mut(&mut self) -> &mut Vec<u64> {
        Arc::make_mut(&mut self.words)
    }

    /// Creates an array from a predicate on bit indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use dr_core::BitArray;
    /// let x = BitArray::from_fn(8, |i| i % 2 == 0);
    /// assert_eq!(x.count_ones(), 4);
    /// ```
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = vec![0u64; len.div_ceil(64)];
        for (w, word) in words.iter_mut().enumerate() {
            let base = w * 64;
            let top = 64.min(len - base);
            let mut v = 0u64;
            for b in 0..top {
                if f(base + b) {
                    v |= 1 << b;
                }
            }
            *word = v;
        }
        BitArray {
            len,
            words: Arc::new(words),
        }
    }

    /// Creates an array from a slice of bools.
    pub fn from_bools(bits: &[bool]) -> Self {
        BitArray::from_fn(bits.len(), |i| bits[i])
    }

    /// Creates an array of `len` bits directly from packed 64-bit words
    /// (bit `i` is bit `i % 64` of word `i / 64`). Unused high bits of the
    /// last word are cleared, keeping the canonical-tail invariant that
    /// `Eq`/`Hash`/`Ord` rely on. This is the zero-rearrangement path for
    /// word-generating sources (see `ChunkedSource`).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count does not match bit length {len}"
        );
        let mut out = BitArray {
            len,
            words: Arc::new(words),
        };
        out.mask_tail();
        out
    }

    /// Creates a uniformly random array using the given RNG.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut out = BitArray::zeros(len);
        for w in out.words_mut() {
            *w = rng.gen();
        }
        out.mask_tail();
        out
    }

    /// An independent copy with its own word buffer, never sharing with
    /// `self`. [`Clone`] is the right call almost everywhere (it is
    /// `O(1)` and copy-on-write protects both sides); `deep_clone`
    /// exists for the cases that need a guaranteed-unaliased buffer —
    /// aliasing tests and the pre-rewrite cost baseline in the
    /// `sim_scaling` benchmarks.
    pub fn deep_clone(&self) -> BitArray {
        BitArray {
            len: self.len,
            words: Arc::new(self.words.as_ref().clone()),
        }
    }

    /// Whether `self` and `other` currently share one word buffer (the
    /// observable side of copy-on-write; contents-equal arrays may or
    /// may not share).
    pub fn shares_buffer_with(&self, other: &BitArray) -> bool {
        Arc::ptr_eq(&self.words, &other.words)
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words_mut()[i / 64];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Number of 64-bit words in the packed representation.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Reads the `w`-th 64-bit word of the packed representation.
    ///
    /// Bit `i` of the array is bit `i % 64` of word `i / 64`. Unused high
    /// bits of the last word are always zero.
    ///
    /// # Panics
    ///
    /// Panics if `w >= word_count()`.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Flips bit `i` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) -> bool {
        let v = !self.get(i);
        self.set(i, v);
        v
    }

    /// Number of one-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extracts the bits of `range` as a new array.
    ///
    /// Runs in `O(range.len() / 64)` word operations, shifting across word
    /// boundaries as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> BitArray {
        assert!(
            range.end <= self.len,
            "slice {range:?} out of range {}",
            self.len
        );
        let mut out = BitArray::zeros(range.len());
        for (w, word) in out.words_mut().iter_mut().enumerate() {
            *word = read_word(&self.words, range.start + w * 64);
        }
        out.mask_tail();
        out
    }

    /// Copies `src[src_range]` into `self` starting at bit `dst_offset`,
    /// overwriting whatever was there. Word-level: each loop iteration
    /// transfers up to 64 bits with shift/mask operations.
    ///
    /// # Panics
    ///
    /// Panics if `src_range` is out of bounds for `src` or the copy would
    /// run past the end of `self`.
    pub fn copy_range(&mut self, dst_offset: usize, src: &BitArray, src_range: Range<usize>) {
        assert!(
            src_range.end <= src.len,
            "copy_range source {src_range:?} out of range {}",
            src.len
        );
        let len = src_range.len();
        assert!(
            dst_offset + len <= self.len,
            "copy_range destination {dst_offset}..{} out of range {}",
            dst_offset + len,
            self.len
        );
        if len == 0 {
            return;
        }
        let words = Arc::make_mut(&mut self.words);
        let mut done = 0;
        while done < len {
            let pos = dst_offset + done;
            let (w, bit) = (pos / 64, pos % 64);
            // Fill the destination word from `bit` upward (at most 64 - bit
            // bits), so every subsequent iteration is destination-aligned.
            let take = (64 - bit).min(len - done);
            let chunk = read_word(&src.words, src_range.start + done) & low_mask(take);
            words[w] = (words[w] & !(low_mask(take) << bit)) | (chunk << bit);
            done += take;
        }
    }

    /// Writes `bits` into `self` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the write would run past the end.
    pub fn write_at(&mut self, offset: usize, bits: &BitArray) {
        self.copy_range(offset, bits, 0..bits.len());
    }

    /// Bitwise OR of `other` into `self`, one word at a time.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitArray) {
        assert_eq!(self.len, other.len, "length mismatch");
        // OR-ing an array into itself (possible through sharing) is a
        // no-op; skip it so `make_mut` does not copy for nothing.
        if Arc::ptr_eq(&self.words, &other.words) {
            return;
        }
        for (a, b) in self.words_mut().iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Iterates over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Index of the first bit on which `self` and `other` differ, if any.
    ///
    /// This is the "separating index" used by the decision-tree construction
    /// (Protocol 3) to resolve conflicts between inconsistent strings.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn first_difference(&self, other: &BitArray) -> Option<usize> {
        assert_eq!(self.len, other.len, "length mismatch");
        for (w, (a, b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                let bit = w * 64 + diff.trailing_zeros() as usize;
                if bit < self.len {
                    return Some(bit);
                }
            }
        }
        None
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl PartialOrd for BitArray {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitArray {
    /// Lexicographic order over the bit sequence (bit 0 first, `false <
    /// true`), with a proper prefix ordering before its extensions —
    /// exactly the order of the equivalent `Vec<bool>`. This makes
    /// `BitArray` usable as a `DetMap`/`DetSet` key whose iteration order
    /// is a pure function of the data, which deterministic-tier protocol
    /// state relies on (e.g. the τ-frequent string table).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let words = self.words.len().min(other.words.len());
        for w in 0..words {
            // Bit 0 is the LSB of word 0; reversing each word makes the
            // earliest bit the most significant, so plain `u64` order is
            // bit-lexicographic order. Tail bits past `len` are kept
            // zeroed, so a prefix compares equal through its last word
            // and the length comparison below settles it.
            let a = self.words[w].reverse_bits();
            let b = other.words[w].reverse_bits();
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => {}
                diff => {
                    // The differing word might only differ past one
                    // array's end; the length check covers that case.
                    let first_diff = (a ^ b).leading_zeros() as usize + w * 64;
                    if first_diff >= self.len.min(other.len) {
                        break;
                    }
                    return diff;
                }
            }
        }
        self.len.cmp(&other.len)
    }
}

impl fmt::Debug for BitArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitArray[{}; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitArray {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitArray::from_bools(&bits)
    }
}

/// A bit array together with a mask of which positions are known.
///
/// This is each peer's working copy of the input: queried or received bits
/// are recorded with [`PartialArray::learn`], and the protocol may terminate
/// once [`PartialArray::unknown_count`] reaches zero.
///
/// Representation invariant: `values` is zero wherever `known` is zero.
/// Every mutator preserves this, which is what lets [`PartialArray::learn_slice`]
/// and [`PartialArray::merge`] OR newly-learned bits in a word at a time.
///
/// # Examples
///
/// ```
/// use dr_core::PartialArray;
///
/// let mut p = PartialArray::new(4);
/// p.learn(2, true);
/// assert_eq!(p.unknown_count(), 3);
/// assert_eq!(p.get(2), Some(true));
/// assert_eq!(p.get(0), None);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialArray {
    values: BitArray,
    known: BitArray,
    unknown: usize,
}

impl PartialArray {
    /// Creates an array of `len` bits, all unknown.
    pub fn new(len: usize) -> Self {
        PartialArray {
            values: BitArray::zeros(len),
            known: BitArray::zeros(len),
            unknown: len,
        }
    }

    /// Number of bits (known and unknown).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the array has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of still-unknown bits.
    #[inline]
    pub fn unknown_count(&self) -> usize {
        self.unknown
    }

    /// Whether every bit is known.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.unknown == 0
    }

    /// Whether bit `i` is known.
    #[inline]
    pub fn is_known(&self, i: usize) -> bool {
        self.known.get(i)
    }

    /// The value of bit `i` if known.
    pub fn get(&self, i: usize) -> Option<bool> {
        if self.known.get(i) {
            Some(self.values.get(i))
        } else {
            None
        }
    }

    /// Records the value of bit `i`. Re-learning a known bit keeps the first
    /// value (values are never overwritten, matching the protocols in the
    /// paper where honest data is consistent).
    pub fn learn(&mut self, i: usize, value: bool) {
        if !self.known.get(i) {
            self.known.set(i, true);
            self.values.set(i, value);
            self.unknown -= 1;
        }
    }

    /// Records a contiguous run of bits starting at `offset`. Word-level:
    /// bits already known keep their first value (an invariant of the
    /// representation is that `values` is zero wherever `known` is zero,
    /// so newly-learned bits can be OR-ed in without a read-modify-write
    /// per bit).
    ///
    /// # Panics
    ///
    /// Panics if the run would extend past the end.
    pub fn learn_slice(&mut self, offset: usize, bits: &BitArray) {
        let len = bits.len();
        assert!(
            offset + len <= self.len(),
            "learn_slice {offset}..{} out of range {}",
            offset + len,
            self.len()
        );
        let mut done = 0;
        while done < len {
            let pos = offset + done;
            let (w, bit) = (pos / 64, pos % 64);
            let take = (64 - bit).min(len - done);
            let window = low_mask(take) << bit;
            let fresh = window & !self.known.words[w];
            if fresh != 0 {
                let incoming = (read_word(&bits.words, done) & low_mask(take)) << bit;
                self.values.words_mut()[w] |= incoming & fresh;
                self.known.words_mut()[w] |= fresh;
                self.unknown -= fresh.count_ones() as usize;
            }
            done += take;
        }
    }

    /// Copies every known bit of `other` into `self`, one word at a time.
    /// Bits known in both keep `self`'s value.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merge(&mut self, other: &PartialArray) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for w in 0..self.known.words.len() {
            let fresh = other.known.words[w] & !self.known.words[w];
            if fresh != 0 {
                self.values.words_mut()[w] |= other.values.words[w] & fresh;
                self.known.words_mut()[w] |= fresh;
                self.unknown -= fresh.count_ones() as usize;
            }
        }
    }

    /// Iterates over indices of unknown bits, in order, skipping fully-known
    /// words in one step.
    pub fn unknown_iter(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len();
        let words = &self.known.words;
        let mut w = 0usize;
        let mut cur = words.first().map_or(0, |k| !k);
        std::iter::from_fn(move || loop {
            if w >= words.len() {
                return None;
            }
            if cur != 0 {
                let i = w * 64 + cur.trailing_zeros() as usize;
                if i >= len {
                    // Only the zero-padded tail of the last word remains.
                    w = words.len();
                    return None;
                }
                cur &= cur - 1;
                return Some(i);
            }
            w += 1;
            cur = words.get(w).map_or(0, |k| !k);
        })
    }

    /// The known values restricted to `range`, or `None` if any bit in the
    /// range is unknown. The all-known check runs word-at-a-time.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn known_slice(&self, range: Range<usize>) -> Option<BitArray> {
        assert!(
            range.end <= self.len(),
            "known_slice {range:?} out of range {}",
            self.len()
        );
        let len = range.len();
        let mut done = 0;
        while done < len {
            let pos = range.start + done;
            let (w, bit) = (pos / 64, pos % 64);
            let take = (64 - bit).min(len - done);
            let window = low_mask(take) << bit;
            if self.known.words[w] & window != window {
                return None;
            }
            done += take;
        }
        Some(self.values.slice(range))
    }

    /// Converts into the completed array.
    ///
    /// # Panics
    ///
    /// Panics if any bit is still unknown.
    pub fn into_complete(self) -> BitArray {
        assert!(self.unknown == 0, "{} bits still unknown", self.unknown);
        self.values
    }

    /// Borrow of the completed array.
    ///
    /// Returns `None` if any bit is still unknown.
    pub fn as_complete(&self) -> Option<&BitArray> {
        if self.unknown == 0 {
            Some(&self.values)
        } else {
            None
        }
    }
}

impl fmt::Debug for PartialArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PartialArray[{} bits, {} unknown]",
            self.len(),
            self.unknown
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_set() {
        let mut x = BitArray::zeros(130);
        assert_eq!(x.len(), 130);
        assert_eq!(x.count_ones(), 0);
        x.set(0, true);
        x.set(129, true);
        assert!(x.get(0));
        assert!(x.get(129));
        assert!(!x.get(64));
        assert_eq!(x.count_ones(), 2);
    }

    #[test]
    fn random_is_masked() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = BitArray::random(70, &mut rng);
        // If the tail were unmasked, equality with a from_fn copy would fail.
        let y = BitArray::from_fn(70, |i| x.get(i));
        assert_eq!(x, y);
    }

    #[test]
    fn slice_and_write_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = BitArray::random(200, &mut rng);
        let s = x.slice(50..150);
        assert_eq!(s.len(), 100);
        let mut y = BitArray::zeros(200);
        y.write_at(50, &s);
        for i in 50..150 {
            assert_eq!(x.get(i), y.get(i));
        }
    }

    #[test]
    fn first_difference_finds_separating_index() {
        let a = BitArray::from_bools(&[false, true, false, true]);
        let b = BitArray::from_bools(&[false, true, true, true]);
        assert_eq!(a.first_difference(&b), Some(2));
        assert_eq!(a.first_difference(&a), None);
    }

    #[test]
    fn flip_toggles() {
        let mut x = BitArray::zeros(5);
        assert!(x.flip(2));
        assert!(!x.flip(2));
    }

    #[test]
    fn partial_learn_and_complete() {
        let mut p = PartialArray::new(5);
        assert_eq!(p.unknown_count(), 5);
        for i in 0..5 {
            p.learn(i, i % 2 == 0);
        }
        assert!(p.is_complete());
        let done = p.into_complete();
        assert_eq!(
            done,
            BitArray::from_bools(&[true, false, true, false, true])
        );
    }

    #[test]
    fn learn_never_overwrites() {
        let mut p = PartialArray::new(2);
        p.learn(0, true);
        p.learn(0, false);
        assert_eq!(p.get(0), Some(true));
        assert_eq!(p.unknown_count(), 1);
    }

    #[test]
    fn merge_combines_knowledge() {
        let mut a = PartialArray::new(4);
        a.learn(0, true);
        let mut b = PartialArray::new(4);
        b.learn(3, false);
        a.merge(&b);
        assert_eq!(a.unknown_count(), 2);
        assert_eq!(a.get(3), Some(false));
    }

    #[test]
    fn known_slice_requires_full_knowledge() {
        let mut p = PartialArray::new(6);
        p.learn_slice(2, &BitArray::from_bools(&[true, true]));
        assert!(p.known_slice(2..4).is_some());
        assert!(p.known_slice(1..4).is_none());
    }

    #[test]
    fn unknown_iter_lists_gaps() {
        let mut p = PartialArray::new(4);
        p.learn(1, false);
        let v: Vec<usize> = p.unknown_iter().collect();
        assert_eq!(v, vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let x = BitArray::zeros(3);
        x.get(3);
    }

    #[test]
    fn copy_range_matches_per_bit_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let src = BitArray::random(300, &mut rng);
        for &(dst_off, start, end) in &[
            (0, 0, 300),
            (5, 63, 191),
            (64, 1, 2),
            (17, 100, 100),
            (250, 0, 50),
        ] {
            let mut fast = BitArray::random(310, &mut rng);
            let mut slow = fast.clone();
            fast.copy_range(dst_off, &src, start..end);
            for i in start..end {
                slow.set(dst_off + (i - start), src.get(i));
            }
            assert_eq!(fast, slow, "copy_range({dst_off}, {start}..{end})");
        }
    }

    #[test]
    fn slice_straddles_word_boundaries() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = BitArray::random(200, &mut rng);
        for &(a, b) in &[(0, 0), (60, 70), (63, 64), (64, 128), (1, 200), (199, 200)] {
            let s = x.slice(a..b);
            assert_eq!(s.len(), b - a);
            for i in a..b {
                assert_eq!(s.get(i - a), x.get(i), "slice({a}..{b}) bit {i}");
            }
            // Last-word padding must stay zeroed for Eq/Hash.
            assert_eq!(s, BitArray::from_fn(b - a, |i| x.get(a + i)));
        }
    }

    #[test]
    fn or_assign_sets_union() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = BitArray::random(130, &mut rng);
        let b = BitArray::random(130, &mut rng);
        let mut u = a.clone();
        u.or_assign(&b);
        for i in 0..130 {
            assert_eq!(u.get(i), a.get(i) | b.get(i));
        }
    }

    #[test]
    fn word_accessor_exposes_packed_words() {
        let mut x = BitArray::zeros(130);
        x.set(0, true);
        x.set(65, true);
        x.set(129, true);
        assert_eq!(x.word_count(), 3);
        assert_eq!(x.word(0), 1);
        assert_eq!(x.word(1), 2);
        assert_eq!(x.word(2), 2);
    }

    #[test]
    fn learn_slice_word_level_matches_per_bit() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 257;
        for trial in 0..20 {
            let mut fast = PartialArray::new(n);
            let mut slow = PartialArray::new(n);
            // Pre-learn a scattered pattern so overlaps are exercised.
            for i in (trial..n).step_by(7) {
                fast.learn(i, i % 3 == 0);
                slow.learn(i, i % 3 == 0);
            }
            let off = trial * 9 % 64;
            let bits = BitArray::random(n - off - trial, &mut rng);
            fast.learn_slice(off, &bits);
            for i in 0..bits.len() {
                slow.learn(off + i, bits.get(i));
            }
            assert_eq!(fast, slow);
            assert_eq!(fast.unknown_count(), slow.unknown_count());
        }
    }

    #[test]
    fn merge_word_level_matches_per_bit() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 190;
        let mut a = PartialArray::new(n);
        let mut b = PartialArray::new(n);
        for i in 0..n {
            if rng.gen_bool(0.5) {
                a.learn(i, rng.gen_bool(0.5));
            }
            if rng.gen_bool(0.5) {
                b.learn(i, rng.gen_bool(0.5));
            }
        }
        let mut fast = a.clone();
        fast.merge(&b);
        let mut slow = a.clone();
        for i in 0..n {
            if let Some(v) = b.get(i) {
                slow.learn(i, v);
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn unknown_iter_skips_full_words() {
        let mut p = PartialArray::new(200);
        p.learn_slice(0, &BitArray::zeros(128));
        p.learn(130, true);
        let v: Vec<usize> = p.unknown_iter().collect();
        let expect: Vec<usize> = (128..200).filter(|&i| i != 130).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_operations_are_noops() {
        let mut x = BitArray::zeros(70);
        let src = BitArray::zeros(0);
        x.copy_range(70, &src, 0..0);
        x.write_at(0, &src);
        assert_eq!(x.slice(70..70).len(), 0);
        let mut p = PartialArray::new(0);
        p.learn_slice(0, &src);
        assert!(p.is_complete());
        assert_eq!(p.unknown_iter().count(), 0);
        assert_eq!(BitArray::zeros(0).word_count(), 0);
    }
}
