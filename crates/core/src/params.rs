//! Model parameters: input size, peer count, fault budget, message size.
//!
//! A DR instance is described by `n` (bits of input), `k` (peers), `b`
//! (fault budget, `b = βk`), the fault model (crash or Byzantine), and the
//! message-size parameter `a` (maximum bits per message). [`ModelParams`]
//! validates the combination and derives the quantities the protocols and
//! bounds are stated in terms of (`β`, `γ = 1 − β`, `k − b`, …).

use crate::error::InvalidParamsError;
use serde::{Deserialize, Serialize};

/// Which failure model the adversary operates under (§1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModel {
    /// Faulty peers halt permanently, possibly mid-send.
    Crash,
    /// Faulty peers deviate arbitrarily from the protocol.
    Byzantine,
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModel::Crash => write!(f, "crash"),
            FaultModel::Byzantine => write!(f, "byzantine"),
        }
    }
}

/// Validated parameters of one DR instance.
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams};
///
/// let p = ModelParams::builder(1024, 16)
///     .faults(FaultModel::Crash, 4)
///     .message_bits(256)
///     .build()?;
/// assert_eq!(p.beta(), 0.25);
/// assert_eq!(p.min_honest(), 12);
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    n: usize,
    k: usize,
    b: usize,
    fault_model: FaultModel,
    msg_bits: usize,
}

impl ModelParams {
    /// Starts building parameters for `n` input bits and `k` peers.
    pub fn builder(n: usize, k: usize) -> ModelParamsBuilder {
        ModelParamsBuilder {
            n,
            k,
            b: 0,
            fault_model: FaultModel::Crash,
            msg_bits: 1024,
        }
    }

    /// Convenience constructor for a fault-free instance.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `k == 0`.
    pub fn fault_free(n: usize, k: usize) -> Result<Self, InvalidParamsError> {
        ModelParams::builder(n, k).build()
    }

    /// Number of input bits.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of peers.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fault budget `b` (maximum number of faulty peers).
    #[inline]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Fault fraction `β = b / k`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.b as f64 / self.k as f64
    }

    /// Honest fraction `γ = 1 − β`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        1.0 - self.beta()
    }

    /// Guaranteed number of nonfaulty peers, `k − b`.
    #[inline]
    pub fn min_honest(&self) -> usize {
        self.k - self.b
    }

    /// The failure model in force.
    #[inline]
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Maximum message size `a`, in bits.
    #[inline]
    pub fn msg_bits(&self) -> usize {
        self.msg_bits
    }

    /// Whether faulty peers form a minority (`b < k/2`), the regime of the
    /// §3.2 Byzantine protocols.
    pub fn is_fault_minority(&self) -> bool {
        2 * self.b < self.k
    }

    /// The naive query complexity (every peer queries everything).
    pub fn naive_query_complexity(&self) -> usize {
        self.n
    }

    /// The balanced fault-free query complexity `⌈n/k⌉`.
    pub fn balanced_query_complexity(&self) -> usize {
        self.n.div_ceil(self.k)
    }
}

impl std::fmt::Display for ModelParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} k={} b={} ({}) a={}",
            self.n, self.k, self.b, self.fault_model, self.msg_bits
        )
    }
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone)]
pub struct ModelParamsBuilder {
    n: usize,
    k: usize,
    b: usize,
    fault_model: FaultModel,
    msg_bits: usize,
}

impl ModelParamsBuilder {
    /// Sets the fault model and budget.
    pub fn faults(mut self, model: FaultModel, b: usize) -> Self {
        self.fault_model = model;
        self.b = b;
        self
    }

    /// Sets the fault budget from a fraction `β`, rounding down.
    pub fn fault_fraction(mut self, model: FaultModel, beta: f64) -> Self {
        self.fault_model = model;
        self.b = ((beta * self.k as f64).floor() as usize).min(self.k);
        self
    }

    /// Sets the maximum message size in bits.
    pub fn message_bits(mut self, a: usize) -> Self {
        self.msg_bits = a;
        self
    }

    /// Validates and produces the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] when `n == 0`, `k == 0`, `b >= k`
    /// (at least one peer must be nonfaulty), or `msg_bits == 0`.
    pub fn build(self) -> Result<ModelParams, InvalidParamsError> {
        if self.n == 0 {
            return Err(InvalidParamsError::new("input length n must be positive"));
        }
        if self.k == 0 {
            return Err(InvalidParamsError::new("peer count k must be positive"));
        }
        if self.b >= self.k {
            return Err(InvalidParamsError::new(format!(
                "fault budget b={} must leave at least one nonfaulty peer out of k={}",
                self.b, self.k
            )));
        }
        if self.msg_bits == 0 {
            return Err(InvalidParamsError::new("message size must be positive"));
        }
        Ok(ModelParams {
            n: self.n,
            k: self.k,
            b: self.b,
            fault_model: self.fault_model,
            msg_bits: self.msg_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let p = ModelParams::fault_free(100, 10).unwrap();
        assert_eq!(p.b(), 0);
        assert_eq!(p.beta(), 0.0);
        assert_eq!(p.gamma(), 1.0);
        assert_eq!(p.min_honest(), 10);
        assert_eq!(p.balanced_query_complexity(), 10);
    }

    #[test]
    fn fraction_rounds_down() {
        let p = ModelParams::builder(10, 7)
            .fault_fraction(FaultModel::Byzantine, 0.5)
            .build()
            .unwrap();
        assert_eq!(p.b(), 3);
        assert!(p.is_fault_minority());
    }

    #[test]
    fn majority_detected() {
        let p = ModelParams::builder(10, 6)
            .faults(FaultModel::Byzantine, 3)
            .build()
            .unwrap();
        assert!(!p.is_fault_minority());
    }

    #[test]
    fn rejects_all_faulty() {
        let err = ModelParams::builder(10, 4)
            .faults(FaultModel::Crash, 4)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nonfaulty"));
    }

    #[test]
    fn rejects_zero_sizes() {
        assert!(ModelParams::fault_free(0, 4).is_err());
        assert!(ModelParams::fault_free(4, 0).is_err());
        assert!(ModelParams::builder(4, 2).message_bits(0).build().is_err());
    }

    #[test]
    fn display_is_informative() {
        let p = ModelParams::builder(8, 4)
            .faults(FaultModel::Byzantine, 1)
            .build()
            .unwrap();
        let s = p.to_string();
        assert!(s.contains("n=8") && s.contains("byzantine"));
    }
}
