//! Synchronization facade for the query admission plane.
//!
//! The single-flight coalescing protocol in [`crate::cached`] is the only
//! blocking cross-thread protocol this crate owns: concurrent cache misses
//! elect a leader that fetches from the upstream source while followers
//! park on a condvar. Its primitives are constructed through this module —
//! `std::sync` by default, the vendored `loom` model checker under the
//! `loom-model` feature (std-equivalent outside `loom::model`) — so
//! `tests/loom_admission.rs` can exhaustively interleave the
//! claim/fetch/fill/notify protocol, including leader panics, without a
//! second copy of the code.
//!
//! The `sync-primitive-outside-facade` lint keys off this file: raw
//! primitive construction elsewhere in the deterministic tier needs a
//! justified allow.

#[cfg(feature = "loom-model")]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

#[cfg(not(feature = "loom-model"))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
