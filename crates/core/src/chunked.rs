//! A streaming, generate-on-demand external data source.
//!
//! [`ArraySource`](crate::ArraySource) materializes all `n` bits in RAM,
//! which caps simulated runs at whatever the host can hold. The paper's
//! setting is the opposite regime — the input is *external* precisely
//! because no single machine wants to store it — so billion-bit
//! experiments need a source whose resident footprint is bounded and
//! independent of `n`.
//!
//! [`ChunkedSource`] derives every 64-bit word of the array from a seed
//! with a splitmix64-style finalizer, materializing words lazily in
//! fixed-size chunks. A bounded FIFO cache keeps recently generated
//! chunks resident; everything else is regenerated on demand. Because
//! word values are pure functions of `(seed, word index)`, query results
//! are identical regardless of cache geometry or access order — the
//! static-data assumption holds by construction, and the same `(len,
//! seed)` pair always denotes the same array (so a verifier can rebuild
//! an equivalent source independently of the run it checks).
//!
//! The chunk size is a whole number of words, so chunk boundaries are
//! word-aligned and the [`Source::bits`] override assembles word-level
//! output (shift/mask across word boundaries) without per-bit loops —
//! the same fast path [`ArraySource`](crate::ArraySource) uses.

use crate::bits::BitArray;
use crate::collections::DetMap;
use crate::source::Source;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::ops::Range;

/// Default words per chunk (1024 words = 64 Kibit = 8 KiB per chunk).
const DEFAULT_CHUNK_WORDS: usize = 1024;

/// Default maximum resident chunks (64 × 8 KiB = 512 KiB resident).
const DEFAULT_MAX_RESIDENT: usize = 64;

/// Derives word `w` of the array from the seed: a splitmix64-style
/// finalizer over the word index. Pure, so any two sources with equal
/// `(seed, len)` agree on every bit forever.
fn word_value(seed: u64, w: u64) -> u64 {
    let mut z = seed ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Point-in-time cache statistics of a [`ChunkedSource`].
///
/// `hits`/`misses` are word-granular — one count per word read, hit when
/// the word's chunk was resident — matching the admission plane's
/// [`CacheStats`](crate::CacheStats) accounting so the two cache layers
/// report comparable numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    /// Chunks generated so far (including regenerations after eviction).
    pub generated: u64,
    /// Chunks evicted so far.
    pub evicted: u64,
    /// Word reads served by a resident chunk.
    pub hits: u64,
    /// Word reads that had to generate their chunk first.
    pub misses: u64,
    /// Peak number of simultaneously resident chunks.
    pub peak_resident: usize,
    /// Chunks resident right now.
    pub resident: usize,
}

struct ChunkCache {
    /// Resident chunks, keyed by chunk index. Deterministic map: the
    /// cache never influences results, but det-tier code stays free of
    /// unordered iteration by policy.
    chunks: DetMap<usize, Vec<u64>>,
    /// Insertion order for FIFO eviction.
    fifo: VecDeque<usize>,
    generated: u64,
    evicted: u64,
    hits: u64,
    misses: u64,
    peak_resident: usize,
}

impl ChunkCache {
    /// Reads global word `w`, generating (and possibly evicting) chunks
    /// as needed.
    fn word(&mut self, seed: u64, chunk_words: usize, max_resident: usize, w: usize) -> u64 {
        let chunk = w / chunk_words;
        if self.chunks.contains_key(&chunk) {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if !self.chunks.contains_key(&chunk) {
            // Make room first so residency never exceeds the cap, even
            // transiently.
            while self.chunks.len() >= max_resident {
                let oldest = self.fifo.pop_front().expect("fifo tracks chunks");
                self.chunks.remove(&oldest);
                self.evicted += 1;
            }
            let base = (chunk * chunk_words) as u64;
            let words: Vec<u64> = (0..chunk_words as u64)
                .map(|i| word_value(seed, base + i))
                .collect();
            self.chunks.insert(chunk, words);
            self.fifo.push_back(chunk);
            self.generated += 1;
            self.peak_resident = self.peak_resident.max(self.chunks.len());
        }
        self.chunks[&chunk][w % chunk_words]
    }
}

/// A seeded source that generates word blocks on demand and keeps only a
/// bounded set of chunks resident — `n` can exceed RAM by orders of
/// magnitude. See the module docs for the determinism argument.
pub struct ChunkedSource {
    len: usize,
    seed: u64,
    chunk_words: usize,
    max_resident: usize,
    cache: Mutex<ChunkCache>,
}

impl ChunkedSource {
    /// Creates a source of `len` bits derived from `seed`, with the
    /// default geometry (8 KiB chunks, at most 64 resident).
    pub fn new(len: usize, seed: u64) -> Self {
        ChunkedSource::with_geometry(len, seed, DEFAULT_CHUNK_WORDS, DEFAULT_MAX_RESIDENT)
    }

    /// Creates a source with explicit geometry: `chunk_words` 64-bit
    /// words per chunk and at most `max_resident` chunks cached. Results
    /// are independent of the geometry — only generation/eviction
    /// traffic changes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_words` or `max_resident` is zero.
    pub fn with_geometry(len: usize, seed: u64, chunk_words: usize, max_resident: usize) -> Self {
        assert!(chunk_words >= 1, "chunk_words must be at least 1");
        assert!(max_resident >= 1, "max_resident must be at least 1");
        ChunkedSource {
            len,
            seed,
            chunk_words,
            max_resident,
            // dr-lint: allow(sync-primitive-outside-facade): parking_lot cache lock private to one source; serializes chunk generation only, no cross-lock protocol for loom to model
            cache: Mutex::new(ChunkCache {
                chunks: DetMap::new(),
                fifo: VecDeque::new(),
                generated: 0,
                evicted: 0,
                hits: 0,
                misses: 0,
                peak_resident: 0,
            }),
        }
    }

    /// The seed this source derives its bits from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Maximum chunks the cache may keep resident.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Current cache statistics (generation, eviction, residency peaks).
    pub fn stats(&self) -> ChunkStats {
        let cache = self.cache.lock();
        ChunkStats {
            generated: cache.generated,
            evicted: cache.evicted,
            hits: cache.hits,
            misses: cache.misses,
            peak_resident: cache.peak_resident,
            resident: cache.chunks.len(),
        }
    }

    fn word_count(&self) -> usize {
        self.len.div_ceil(64)
    }
}

impl std::fmt::Debug for ChunkedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedSource")
            .field("len", &self.len)
            .field("seed", &self.seed)
            .field("chunk_words", &self.chunk_words)
            .field("max_resident", &self.max_resident)
            .finish()
    }
}

impl Source for ChunkedSource {
    fn len(&self) -> usize {
        self.len
    }

    fn bit(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mut cache = self.cache.lock();
        let word = cache.word(self.seed, self.chunk_words, self.max_resident, index / 64);
        word & (1 << (index % 64)) != 0
    }

    fn bits(&self, range: Range<usize>) -> BitArray {
        assert!(
            range.end <= self.len,
            "bits {range:?} out of range {}",
            self.len
        );
        let out_len = range.len();
        let total_words = self.word_count();
        let mut cache = self.cache.lock();
        let mut src = |w: usize| {
            if w < total_words {
                cache.word(self.seed, self.chunk_words, self.max_resident, w)
            } else {
                0
            }
        };
        let (w0, sh) = (range.start / 64, range.start % 64);
        let words: Vec<u64> = (0..out_len.div_ceil(64))
            .map(|r| {
                // Word r of the output spans source words w0+r and w0+r+1
                // unless the range is word-aligned (sh == 0).
                let lo = src(w0 + r) >> sh;
                if sh == 0 {
                    lo
                } else {
                    lo | (src(w0 + r + 1) << (64 - sh))
                }
            })
            .collect();
        BitArray::from_words(out_len, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The same array accessed through the per-bit default path, with no
    /// caching — the semantic reference for `bits` overrides.
    struct PerBitReference {
        len: usize,
        seed: u64,
    }

    impl Source for PerBitReference {
        fn len(&self) -> usize {
            self.len
        }
        fn bit(&self, index: usize) -> bool {
            word_value(self.seed, (index / 64) as u64) & (1 << (index % 64)) != 0
        }
    }

    #[test]
    fn bits_matches_per_bit_default() {
        let n = 1000;
        // Tiny chunks and a 2-chunk cache so ranges cross chunk
        // boundaries and force evictions mid-range.
        let src = ChunkedSource::with_geometry(n, 99, 4, 2);
        let reference = PerBitReference { len: n, seed: 99 };
        for range in [
            0..n,
            0..0,
            0..64,
            63..65,
            7..999,
            512..768,
            999..1000,
            250..260,
        ] {
            assert_eq!(
                src.bits(range.clone()),
                reference.bits(range.clone()),
                "range {range:?}"
            );
        }
    }

    #[test]
    fn single_bits_match_bulk_reads() {
        let n = 300;
        let src = ChunkedSource::with_geometry(n, 7, 2, 1);
        let all = src.bits(0..n);
        for i in 0..n {
            assert_eq!(src.bit(i), all.get(i), "bit {i}");
        }
    }

    #[test]
    fn results_independent_of_geometry() {
        let n = 4096;
        let a = ChunkedSource::with_geometry(n, 5, 1, 1);
        let b = ChunkedSource::with_geometry(n, 5, 512, 64);
        let c = ChunkedSource::new(n, 5);
        assert_eq!(a.bits(0..n), b.bits(0..n));
        assert_eq!(b.bits(0..n), c.bits(0..n));
        // Access order must not matter either.
        let d = ChunkedSource::with_geometry(n, 5, 8, 2);
        let back = d.bits(2048..n);
        let front = d.bits(0..2048);
        let mut joined = BitArray::zeros(n);
        joined.write_at(0, &front);
        joined.write_at(2048, &back);
        assert_eq!(joined, c.bits(0..n));
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChunkedSource::new(256, 1);
        let b = ChunkedSource::new(256, 2);
        assert_ne!(a.bits(0..256), b.bits(0..256));
    }

    #[test]
    fn residency_stays_bounded() {
        let n = 64 * 4 * 100; // 100 chunks of 4 words
        let src = ChunkedSource::with_geometry(n, 3, 4, 5);
        let _ = src.bits(0..n);
        let stats = src.stats();
        assert!(stats.peak_resident <= 5, "peak {}", stats.peak_resident);
        assert!(stats.resident <= 5);
        assert_eq!(stats.generated, 100);
        assert_eq!(stats.evicted, 95);
    }

    #[test]
    fn hit_miss_counters_join_the_plane_accounting() {
        // Regression guard for the counter unification: hits/misses are
        // new, and the residency numbers (peak_resident above all) must
        // be exactly what they were before the refactor.
        let n = 64 * 4 * 100; // 100 chunks of 4 words
        let src = ChunkedSource::with_geometry(n, 3, 4, 5);
        let _ = src.bits(0..n);
        let stats = src.stats();
        assert_eq!(stats.peak_resident, 5, "peak_resident changed");
        assert_eq!(stats.generated, 100);
        assert_eq!(stats.evicted, 95);
        // 400 word reads: the first of each chunk misses, the rest hit.
        assert_eq!(stats.misses, 100);
        assert_eq!(stats.hits, 300);
        // A warm re-read of a resident chunk is all hits.
        let tail_chunk_lo = n - 64 * 4;
        let _ = src.bits(tail_chunk_lo..n);
        let warm = src.stats();
        assert_eq!(warm.misses, 100);
        assert_eq!(warm.hits, 304);
    }

    #[test]
    fn regeneration_after_eviction_is_identical() {
        let n = 64 * 2 * 8;
        let src = ChunkedSource::with_geometry(n, 11, 2, 1);
        let first = src.bits(0..128);
        let _ = src.bits(n - 128..n); // evict the front chunks
        let again = src.bits(0..128); // regenerate them
        assert_eq!(first, again);
        assert!(src.stats().evicted > 0);
    }

    #[test]
    fn tail_word_is_masked() {
        let src = ChunkedSource::new(70, 13);
        let bits = src.bits(0..70);
        assert_eq!(bits.len(), 70);
        // Canonical tail: equal to a from_fn rebuild of the same bits.
        let rebuilt = BitArray::from_fn(70, |i| src.bit(i));
        assert_eq!(bits, rebuilt);
    }
}
