//! The external data source and per-peer query accounting.
//!
//! The DR model's second component is a trusted external source storing the
//! `n`-bit input array `X`, accessed through queries `Query(i) -> X[i]`.
//! Queries are the expensive resource: the central complexity measure of the
//! paper is the maximum number of bits queried by any nonfaulty peer.
//!
//! [`Source`] abstracts the read-only array; [`ArraySource`] is the standard
//! in-memory implementation; [`QueryMeter`] counts queries per peer (and can
//! optionally record the exact set of indices each peer touched, which the
//! lower-bound adversaries of §3.1 need); [`SharedSource`] bundles the two
//! behind an `Arc` so both the simulator and the threaded runtime can hand
//! out per-peer [`SourceHandle`]s.

use crate::bits::BitArray;
use crate::peer::PeerId;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read-only access to the external input array.
///
/// Implementations must be deterministic: repeated queries for the same
/// index return the same bit (the paper's static-data assumption, see §4).
pub trait Source: Send + Sync {
    /// Number of bits stored.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `index >= len()`.
    fn bit(&self, index: usize) -> bool;

    /// Returns the bits of `range` as a packed array.
    ///
    /// The provided implementation calls [`Source::bit`] once per bit;
    /// in-memory sources should override it with a word-level copy (see
    /// [`ArraySource`]). Overrides must agree bit-for-bit with the default —
    /// metering is handled by the caller, never here.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `range.end > len()`.
    fn bits(&self, range: Range<usize>) -> BitArray {
        BitArray::from_fn(range.len(), |i| self.bit(range.start + i))
    }
}

impl Source for Box<dyn Source> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn bit(&self, index: usize) -> bool {
        (**self).bit(index)
    }
    fn bits(&self, range: Range<usize>) -> BitArray {
        (**self).bits(range)
    }
}

/// Shared sources: lets a caller hand a source to a consumer that wants
/// ownership (e.g. a streaming simulation) while keeping a handle for
/// post-run inspection (cache statistics, verification).
impl<S: Source + ?Sized> Source for std::sync::Arc<S> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn bit(&self, index: usize) -> bool {
        (**self).bit(index)
    }
    fn bits(&self, range: Range<usize>) -> BitArray {
        (**self).bits(range)
    }
}

/// The standard in-memory source backed by a [`BitArray`].
#[derive(Debug, Clone)]
pub struct ArraySource {
    bits: BitArray,
}

impl ArraySource {
    /// Creates a source over the given input array.
    pub fn new(bits: BitArray) -> Self {
        ArraySource { bits }
    }

    /// Borrow of the underlying input array (for test assertions; real
    /// peers only see it through queries).
    pub fn bits(&self) -> &BitArray {
        &self.bits
    }
}

impl Source for ArraySource {
    fn len(&self) -> usize {
        self.bits.len()
    }

    fn bit(&self, index: usize) -> bool {
        self.bits.get(index)
    }

    fn bits(&self, range: Range<usize>) -> BitArray {
        // Word-aligned copy (shift/mask across word boundaries) instead of
        // the per-bit default.
        self.bits.slice(range)
    }
}

/// Per-peer query counters, with optional per-peer index tracking.
///
/// Thread-safe: counters are atomics and the optional index log is behind a
/// mutex, so the threaded runtime can share one meter across peer threads.
#[derive(Debug)]
pub struct QueryMeter {
    counts: Vec<AtomicU64>,
    index_log: Option<Vec<Mutex<Vec<usize>>>>,
}

impl QueryMeter {
    /// Creates a meter for `num_peers` peers, counting only.
    pub fn new(num_peers: usize) -> Self {
        QueryMeter {
            // dr-lint: allow(sync-primitive-outside-facade): per-peer counters shared across shard jobs; the fold protocol over them is modelled by dr-sim's loom_fold suite at the slots layer
            counts: (0..num_peers).map(|_| AtomicU64::new(0)).collect(),
            index_log: None,
        }
    }

    /// Creates a meter that additionally records every queried index per
    /// peer (needed by the lower-bound adversaries, which must find a bit a
    /// target peer never queried).
    pub fn with_index_tracking(num_peers: usize) -> Self {
        QueryMeter {
            // dr-lint: allow(sync-primitive-outside-facade): same counters as `new`, covered by the loom_fold suite
            counts: (0..num_peers).map(|_| AtomicU64::new(0)).collect(),
            // dr-lint: allow(sync-primitive-outside-facade): parking_lot index log; appended under lock, read only after the run
            index_log: Some((0..num_peers).map(|_| Mutex::new(Vec::new())).collect()),
        }
    }

    /// Records that `peer` queried `index`.
    pub fn record(&self, peer: PeerId, index: usize) {
        // dr-lint: allow(atomic-ordering): independent monotonic counter; readers observe it only past a barrier or at end of run, never to publish other data
        self.counts[peer.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(log) = &self.index_log {
            log[peer.index()].lock().push(index);
        }
    }

    /// Records that `peer` queried every index in `range`: one atomic add
    /// of `range.len()`, and — when index tracking is on — one lock
    /// acquisition extending the log with the indices in ascending order.
    /// Equivalent to calling [`QueryMeter::record`] for each index in turn,
    /// both in counts and in the recorded log.
    pub fn record_range(&self, peer: PeerId, range: Range<usize>) {
        // dr-lint: allow(atomic-ordering): same counter discipline as `record`
        self.counts[peer.index()].fetch_add(range.len() as u64, Ordering::Relaxed);
        if let Some(log) = &self.index_log {
            log[peer.index()].lock().extend(range);
        }
    }

    /// Number of queries made by `peer` so far.
    pub fn count(&self, peer: PeerId) -> u64 {
        // dr-lint: allow(atomic-ordering): count read for reporting; callers sequence it after the writes they care about (join/barrier)
        self.counts[peer.index()].load(Ordering::Relaxed)
    }

    /// Query counts for every peer, indexed by peer ID.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            // dr-lint: allow(atomic-ordering): same read-side discipline as `count`
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Maximum query count over the given set of peers (the paper's `Q`
    /// when restricted to nonfaulty peers).
    pub fn max_over(&self, peers: impl IntoIterator<Item = PeerId>) -> u64 {
        peers.into_iter().map(|p| self.count(p)).max().unwrap_or(0)
    }

    /// The exact indices `peer` queried, in order, if tracking is enabled.
    pub fn indices(&self, peer: PeerId) -> Option<Vec<usize>> {
        self.index_log
            .as_ref()
            .map(|log| log[peer.index()].lock().clone())
    }

    /// Creates an empty [`MeterDelta`] for the peers shard `shard` of
    /// `num_shards` owns (`peer % num_shards == shard`), with index
    /// buffering matching this meter's tracking mode.
    pub fn delta(&self, shard: usize, num_shards: usize) -> MeterDelta {
        assert!(shard < num_shards, "shard {shard} out of {num_shards}");
        let k = self.counts.len();
        // Shards past the peer count (oversharding) own no peers.
        let locals = if shard < k {
            (k - shard).div_ceil(num_shards)
        } else {
            0
        };
        MeterDelta {
            shard,
            num_shards,
            counts: vec![0; locals],
            indices: self
                .index_log
                .as_ref()
                .map(|_| (0..locals).map(|_| Vec::new()).collect()),
            dirty: Vec::new(),
            in_dirty: vec![false; locals],
        }
    }

    /// Merges (and clears) a shard's buffered counts and index logs into
    /// this meter: one atomic add per peer the delta touched since the
    /// last fold, instead of one per query.
    ///
    /// Per-peer index logs keep the exact order the peer issued its
    /// queries in, because each peer's queries are buffered by exactly
    /// one delta and appended contiguously here.
    pub fn fold(&self, delta: &mut MeterDelta) {
        debug_assert_eq!(
            self.index_log.is_some(),
            delta.indices.is_some(),
            "meter/delta tracking modes diverged"
        );
        for l in delta.dirty.drain(..) {
            let l = l as usize;
            delta.in_dirty[l] = false;
            let peer = l * delta.num_shards + delta.shard;
            // dr-lint: allow(atomic-ordering): fold runs on the window coordinator after the executor barrier; the delta values are already synchronized by the join
            self.counts[peer].fetch_add(delta.counts[l], Ordering::Relaxed);
            delta.counts[l] = 0;
            if let (Some(log), Some(buf)) = (&self.index_log, &mut delta.indices) {
                log[peer].lock().append(&mut buf[l]);
            }
        }
    }
}

/// Shard-local query-count buffer: the lock-free, allocation-reusing
/// stand-in for [`QueryMeter`] on the simulator's dispatch hot path.
///
/// Each simulation shard records its peers' queries into plain `u64`
/// counters (plus index buffers when tracking is on) and merges them
/// into the shared meter with [`QueryMeter::fold`] at the window
/// barrier — one atomic add per active peer per window instead of one
/// per query, and no atomic traffic at all from within a window.
#[derive(Debug)]
pub struct MeterDelta {
    shard: usize,
    num_shards: usize,
    /// Buffered counts, indexed by local slot `peer / num_shards`.
    counts: Vec<u64>,
    /// Buffered query indices per local slot (tracking mode only).
    indices: Option<Vec<Vec<usize>>>,
    /// Local slots touched since the last fold.
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
}

impl MeterDelta {
    fn local_of(&self, peer: PeerId) -> usize {
        debug_assert_eq!(peer.index() % self.num_shards, self.shard);
        peer.index() / self.num_shards
    }

    fn touch(&mut self, l: usize) {
        if !self.in_dirty[l] {
            self.in_dirty[l] = true;
            self.dirty.push(l as u32);
        }
    }

    /// Buffers one query by `peer` (must belong to this delta's shard).
    pub fn record(&mut self, peer: PeerId, index: usize) {
        let l = self.local_of(peer);
        self.touch(l);
        self.counts[l] += 1;
        if let Some(buf) = &mut self.indices {
            buf[l].push(index);
        }
    }

    /// Buffers a range query by `peer`, charging one query per bit —
    /// identical accounting to [`QueryMeter::record_range`].
    pub fn record_range(&mut self, peer: PeerId, range: Range<usize>) {
        let l = self.local_of(peer);
        self.touch(l);
        self.counts[l] += range.len() as u64;
        if let Some(buf) = &mut self.indices {
            buf[l].extend(range);
        }
    }

    /// Whether any counts are buffered and not yet folded.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// A source plus its meter, shared by all peers of a run.
#[derive(Clone)]
pub struct SharedSource {
    source: Arc<dyn Source>,
    meter: Arc<QueryMeter>,
}

impl SharedSource {
    /// Bundles a source with a fresh meter for `num_peers` peers.
    pub fn new(source: impl Source + 'static, num_peers: usize) -> Self {
        SharedSource {
            source: Arc::new(source),
            meter: Arc::new(QueryMeter::new(num_peers)),
        }
    }

    /// As [`SharedSource::new`] but with per-peer index tracking enabled.
    pub fn with_index_tracking(source: impl Source + 'static, num_peers: usize) -> Self {
        SharedSource {
            source: Arc::new(source),
            meter: Arc::new(QueryMeter::with_index_tracking(num_peers)),
        }
    }

    /// Number of bits in the underlying source.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// Whether the underlying source is empty.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// The meter accumulating query counts for this run.
    pub fn meter(&self) -> &QueryMeter {
        &self.meter
    }

    /// A shared handle to the raw (unmetered) source, for contexts that
    /// do their own accounting through a [`MeterDelta`].
    pub fn source_arc(&self) -> Arc<dyn Source> {
        Arc::clone(&self.source)
    }

    /// Creates the query handle for one peer.
    pub fn handle(&self, peer: PeerId) -> SourceHandle {
        SourceHandle {
            source: Arc::clone(&self.source),
            meter: Arc::clone(&self.meter),
            peer,
        }
    }
}

impl std::fmt::Debug for SharedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSource[{} bits]", self.source.len())
    }
}

/// One peer's metered access to the source.
///
/// Every call is charged to the owning peer: `query` costs one bit,
/// `query_range` costs one bit per bit in the range. This realizes the
/// paper's query-complexity accounting exactly.
#[derive(Clone)]
pub struct SourceHandle {
    source: Arc<dyn Source>,
    meter: Arc<QueryMeter>,
    peer: PeerId,
}

impl SourceHandle {
    /// The peer this handle meters.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// Number of bits in the source.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.source.is_empty()
    }

    /// Queries a single bit (cost: 1).
    pub fn query(&self, index: usize) -> bool {
        self.meter.record(self.peer, index);
        self.source.bit(index)
    }

    /// Queries a contiguous range of bits.
    ///
    /// Cost accounting: one bit is charged per bit in the range — exactly as
    /// if [`SourceHandle::query`] were called for each index in ascending
    /// order — but the whole charge lands in a single meter update
    /// ([`QueryMeter::record_range`]: one atomic add, and one lock
    /// acquisition when index tracking is on). Combined with
    /// [`Source::bits`], a range query is `O(range.len() / 64)` word
    /// operations for in-memory sources instead of one dynamically
    /// dispatched, individually metered call per bit.
    pub fn query_range(&self, range: Range<usize>) -> BitArray {
        self.meter.record_range(self.peer, range.clone());
        self.source.bits(range)
    }

    /// Queries made so far by this handle's peer.
    pub fn queries_so_far(&self) -> u64 {
        self.meter.count(self.peer)
    }
}

impl std::fmt::Debug for SourceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SourceHandle[{}]", self.peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn source(n: usize) -> SharedSource {
        SharedSource::new(ArraySource::new(BitArray::from_fn(n, |i| i % 3 == 0)), 4)
    }

    #[test]
    fn query_returns_source_bits() {
        let s = source(10);
        let h = s.handle(PeerId(0));
        assert!(h.query(0));
        assert!(!h.query(1));
        assert!(h.query(3));
    }

    #[test]
    fn meter_counts_per_peer() {
        let s = source(10);
        let h0 = s.handle(PeerId(0));
        let h1 = s.handle(PeerId(1));
        h0.query(0);
        h0.query(1);
        h1.query(2);
        assert_eq!(s.meter().count(PeerId(0)), 2);
        assert_eq!(s.meter().count(PeerId(1)), 1);
        assert_eq!(s.meter().count(PeerId(2)), 0);
        assert_eq!(s.meter().counts(), vec![2, 1, 0, 0]);
    }

    #[test]
    fn range_query_costs_length() {
        let s = source(20);
        let h = s.handle(PeerId(3));
        let bits = h.query_range(3..9);
        assert_eq!(bits.len(), 6);
        assert_eq!(h.queries_so_far(), 6);
        assert!(bits.get(0)); // index 3 is divisible by 3
    }

    #[test]
    fn delta_folds_match_direct_metering() {
        // Two meters, one fed directly and one through per-shard deltas,
        // must agree on counts and per-peer index logs.
        let direct = QueryMeter::with_index_tracking(5);
        let deltas_target = QueryMeter::with_index_tracking(5);
        let mut deltas: Vec<MeterDelta> = (0..2).map(|s| deltas_target.delta(s, 2)).collect();
        let queries: [(usize, usize); 5] = [(0, 3), (1, 7), (2, 1), (0, 2), (3, 9)];
        for (p, i) in queries {
            direct.record(PeerId(p), i);
            deltas[p % 2].record(PeerId(p), i);
        }
        direct.record_range(PeerId(4), 2..6);
        deltas[0].record_range(PeerId(4), 2..6);
        for d in &mut deltas {
            deltas_target.fold(d);
            assert!(d.is_empty());
        }
        assert_eq!(direct.counts(), deltas_target.counts());
        for p in 0..5 {
            assert_eq!(
                direct.indices(PeerId(p)),
                deltas_target.indices(PeerId(p)),
                "peer {p}"
            );
        }
        // A reused delta keeps folding correctly.
        deltas[1].record(PeerId(1), 4);
        deltas_target.fold(&mut deltas[1]);
        direct.record(PeerId(1), 4);
        assert_eq!(direct.counts(), deltas_target.counts());
    }

    #[test]
    fn repeated_queries_are_recounted() {
        let s = source(5);
        let h = s.handle(PeerId(0));
        h.query(1);
        h.query(1);
        assert_eq!(h.queries_so_far(), 2);
    }

    #[test]
    fn max_over_restricts_to_given_peers() {
        let s = source(10);
        s.handle(PeerId(0)).query_range(0..7);
        s.handle(PeerId(2)).query(1);
        let honest = [PeerId(1), PeerId(2)];
        assert_eq!(s.meter().max_over(honest), 1);
        assert_eq!(s.meter().max_over([PeerId(0)]), 7);
    }

    #[test]
    fn index_tracking_records_indices() {
        let s = SharedSource::with_index_tracking(ArraySource::new(BitArray::zeros(8)), 2);
        let h = s.handle(PeerId(1));
        h.query(4);
        h.query(2);
        assert_eq!(s.meter().indices(PeerId(1)), Some(vec![4, 2]));
        assert_eq!(s.meter().indices(PeerId(0)), Some(vec![]));
    }

    #[test]
    fn tracking_disabled_returns_none() {
        let s = source(4);
        s.handle(PeerId(0)).query(0);
        assert_eq!(s.meter().indices(PeerId(0)), None);
    }

    /// A source with no `bits` override, exercising the per-bit default.
    struct PerBitSource(BitArray);

    impl Source for PerBitSource {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn bit(&self, index: usize) -> bool {
            self.0.get(index)
        }
    }

    #[test]
    fn bits_default_matches_array_override() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let input = BitArray::random(300, &mut rng);
        let fast = ArraySource::new(input.clone());
        let slow = PerBitSource(input.clone());
        for range in [0..300, 0..0, 63..65, 7..300, 128..192, 299..300] {
            assert_eq!(
                Source::bits(&fast, range.clone()),
                slow.bits(range.clone()),
                "range {range:?}"
            );
            assert_eq!(slow.bits(range.clone()), input.slice(range.clone()));
        }
    }

    #[test]
    fn record_range_matches_per_bit_record() {
        let a = QueryMeter::with_index_tracking(2);
        let b = QueryMeter::with_index_tracking(2);
        a.record_range(PeerId(0), 3..9);
        a.record_range(PeerId(0), 9..9); // empty: no-op
        a.record_range(PeerId(1), 0..2);
        for i in 3..9 {
            b.record(PeerId(0), i);
        }
        for i in 0..2 {
            b.record(PeerId(1), i);
        }
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.indices(PeerId(0)), b.indices(PeerId(0)));
        assert_eq!(a.indices(PeerId(1)), b.indices(PeerId(1)));
    }

    #[test]
    fn query_range_through_custom_source_uses_one_meter_update() {
        let s = SharedSource::with_index_tracking(ArraySource::new(BitArray::zeros(64)), 1);
        let h = s.handle(PeerId(0));
        h.query_range(10..20);
        assert_eq!(h.queries_so_far(), 10);
        assert_eq!(s.meter().indices(PeerId(0)), Some((10..20).collect()));
    }
}
