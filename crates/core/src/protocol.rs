//! The protocol abstraction shared by the simulator and the threaded
//! runtime.
//!
//! A Download protocol is an event-driven state machine, one instance per
//! peer. The environment (simulator or thread executor) calls
//! [`Protocol::on_start`] once when the peer begins executing and
//! [`Protocol::on_message`] for every delivered message; the protocol reacts
//! through its [`Context`] — sending messages, querying the source, and
//! drawing randomness. A peer has terminated once [`Protocol::output`]
//! returns `Some`.
//!
//! This mirrors the paper's asynchronous cycle structure (§1.2): each event
//! handler invocation is one atomic local step in which the peer may query
//! the source (queries are answered within the cycle — the cycle's first
//! stage is "sending queries and getting answers"), send messages, and then
//! return to waiting. The adversary fixes message latencies at send time and
//! may only fail a peer between events, exactly as the model's cycle-based
//! adversary prescribes.

use crate::bits::BitArray;
use crate::peer::PeerId;
use rand::RngCore;
use std::ops::Range;

/// A message type usable by a protocol: cloneable (for broadcast),
/// debuggable (for traces), and sized in bits (for message-size accounting
/// against the model's parameter `a`).
pub trait ProtocolMessage: Clone + std::fmt::Debug + Send + 'static {
    /// The size of this message in bits, as charged against the model's
    /// message-size parameter. Used for message-complexity accounting and
    /// to charge transmission time for over-long messages.
    fn bit_len(&self) -> usize;
}

/// The environment a protocol instance runs against.
///
/// Both the discrete-event simulator and the thread-based runtime implement
/// this trait, so protocol code is written once and runs in both.
pub trait Context<M: ProtocolMessage> {
    /// This peer's ID.
    fn me(&self) -> PeerId;

    /// Number of peers `k` in the network.
    fn num_peers(&self) -> usize;

    /// Number of bits `n` in the external source.
    fn input_len(&self) -> usize;

    /// Sends `msg` to `to`. Self-sends are permitted and delivered like any
    /// other message.
    fn send(&mut self, to: PeerId, msg: M);

    /// Queries one bit of the external source (cost: 1 query).
    fn query(&mut self, index: usize) -> bool;

    /// Queries a contiguous bit range (cost: length of the range, exactly
    /// one bit charged per bit in the range).
    ///
    /// The provided implementation loops over [`Context::query`]; contexts
    /// backed by a real [`SourceHandle`](crate::SourceHandle) override it
    /// with the bulk word-level path (one batched meter update, identical
    /// accounting). Contexts that answer queries from somewhere other than
    /// the handle — e.g. the lower-bound fake-source context — keep this
    /// default so the per-bit semantics stay authoritative.
    fn query_range(&mut self, range: Range<usize>) -> BitArray {
        let mut out = BitArray::zeros(range.len());
        for (off, i) in range.enumerate() {
            if self.query(i) {
                out.set(off, true);
            }
        }
        out
    }

    /// Source of randomness for randomized protocols. Deterministic
    /// environments seed this per peer so runs are reproducible.
    fn rng(&mut self) -> &mut dyn RngCore;

    /// Sends `msg` to every peer other than `self` (the paper's broadcast;
    /// `k − 1` point-to-point messages).
    fn broadcast(&mut self, msg: M) {
        let me = self.me();
        for p in 0..self.num_peers() {
            if p != me.index() {
                self.send(PeerId(p), msg.clone());
            }
        }
    }
}

/// One peer's half of a Download protocol.
pub trait Protocol: Send {
    /// The message type exchanged between peers running this protocol.
    type Msg: ProtocolMessage;

    /// Called exactly once, when this peer starts executing. The adversary
    /// controls when each peer starts (no simultaneous start).
    fn on_start(&mut self, ctx: &mut dyn Context<Self::Msg>);

    /// Called for every message delivered to this peer.
    fn on_message(&mut self, from: PeerId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>);

    /// The peer's output: `Some(array)` once the peer has terminated with
    /// its copy of the input, `None` while still running. The Download
    /// problem requires the output to equal the source array exactly.
    fn output(&self) -> Option<&BitArray>;

    /// Whether this peer has terminated. Equivalent to
    /// `self.output().is_some()`.
    fn is_terminated(&self) -> bool {
        self.output().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[derive(Debug, Clone)]
    struct Ping;
    impl ProtocolMessage for Ping {
        fn bit_len(&self) -> usize {
            1
        }
    }

    struct TestCtx {
        me: PeerId,
        k: usize,
        sent: VecDeque<(PeerId, Ping)>,
        rng: rand::rngs::mock::StepRng,
    }

    impl Context<Ping> for TestCtx {
        fn me(&self) -> PeerId {
            self.me
        }
        fn num_peers(&self) -> usize {
            self.k
        }
        fn input_len(&self) -> usize {
            0
        }
        fn send(&mut self, to: PeerId, msg: Ping) {
            self.sent.push_back((to, msg));
        }
        fn query(&mut self, _index: usize) -> bool {
            false
        }
        fn rng(&mut self) -> &mut dyn RngCore {
            &mut self.rng
        }
    }

    #[test]
    fn broadcast_skips_self() {
        let mut ctx = TestCtx {
            me: PeerId(1),
            k: 4,
            sent: VecDeque::new(),
            rng: rand::rngs::mock::StepRng::new(0, 1),
        };
        ctx.broadcast(Ping);
        let targets: Vec<usize> = ctx.sent.iter().map(|(p, _)| p.index()).collect();
        assert_eq!(targets, vec![0, 2, 3]);
    }

    #[test]
    fn default_query_range_uses_query() {
        struct CountingCtx {
            inner: TestCtx,
            queried: Vec<usize>,
        }
        impl Context<Ping> for CountingCtx {
            fn me(&self) -> PeerId {
                self.inner.me
            }
            fn num_peers(&self) -> usize {
                self.inner.k
            }
            fn input_len(&self) -> usize {
                8
            }
            fn send(&mut self, to: PeerId, msg: Ping) {
                self.inner.send(to, msg);
            }
            fn query(&mut self, index: usize) -> bool {
                self.queried.push(index);
                index % 2 == 1
            }
            fn rng(&mut self) -> &mut dyn RngCore {
                self.inner.rng()
            }
        }
        let mut ctx = CountingCtx {
            inner: TestCtx {
                me: PeerId(0),
                k: 1,
                sent: VecDeque::new(),
                rng: rand::rngs::mock::StepRng::new(0, 1),
            },
            queried: vec![],
        };
        let bits = ctx.query_range(2..6);
        assert_eq!(ctx.queried, vec![2, 3, 4, 5]);
        assert!(!bits.get(0) && bits.get(1) && !bits.get(2) && bits.get(3));
    }
}
