//! Query admission plane: a concurrent, sharded, word-level cache over
//! [`Source`] with single-flight coalescing and range batching.
//!
//! Every query a peer sends to the external source costs real money in the
//! oracle-network deployments the paper's §4 motivates; when many clients
//! pull overlapping ranges through one fleet, re-paying `Q` per request is
//! pure waste. [`CachedSource`] sits between callers and an upstream
//! [`Source`] and guarantees each 64-bit word of the input is fetched
//! upstream **at most once**, no matter how many concurrent readers race:
//!
//! * **Word-level cache.** The keyspace is word indices (`bit / 64`),
//!   striped contiguously across shards so adjacent words land in the same
//!   shard and a range read touches few locks. Each shard owns a
//!   [`DetMap`] of filled words behind one mutex.
//! * **Single-flight coalescing.** A miss elects the first arriving reader
//!   as *leader* for a contiguous run of absent words: it records the run
//!   in the shard's in-flight list, drops the lock, performs one upstream
//!   [`Source::bits`] call, fills the words, and notifies. Readers that
//!   miss on a word already in flight park on the shard condvar and are
//!   handed the filled words without an upstream query of their own.
//! * **Range batching.** Absent words are claimed as maximal contiguous
//!   runs, so `r` adjacent missing words become one upstream `bits` call —
//!   riding the PR 2 word-level fast paths instead of `r` round trips.
//!
//! Metering stays with the caller, exactly as the [`Source`] contract
//! demands: [`CachedSource`] never touches a [`QueryMeter`]. Instead
//! [`CachedSource::read_range_with`] reports each upstream fetch through a
//! callback and returns a [`ReadReceipt`] so fronting layers (the
//! `dr-runtime` front door, the oracle ODC pipeline) can attribute
//! *amortized* query cost: the leader's peer is charged for the fetched
//! words, coalesced waiters and cache hits are free. Under any
//! interleaving, total metered upstream bits equal 64 × the number of
//! unique words touched (clipped at the tail) — the invariant the
//! meter-equivalence suite pins.
//!
//! Memory ordering: all cross-thread state transfer happens through the
//! per-shard mutex/condvar pairs from [`crate::sync`]; the statistics
//! counters are independent monotonic `Relaxed` atomics that never gate
//! control flow (see DESIGN.md §4). The loom model in
//! `crates/core/tests/loom_admission.rs` exhaustively interleaves the
//! claim/fetch/fill/notify protocol, including leader panics.

use crate::bits::BitArray;
use crate::collections::DetMap;
use crate::peer::PeerId;
use crate::source::{QueryMeter, Source};
use crate::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Word classification for one `read_range_with` call. First-wins: a word
/// that this call led the fetch for stays `LED` even though the re-check
/// after the fill sees it cached.
const CLASS_NONE: u8 = 0;
const CLASS_HIT: u8 = 1;
const CLASS_COALESCED: u8 = 2;
const CLASS_LED: u8 = 3;

/// Per-shard cache state, guarded by the shard mutex.
#[derive(Debug, Default)]
struct ShardState {
    /// Filled words: word index → word value. Never evicted.
    words: DetMap<usize, u64>,
    /// Word runs currently being fetched upstream by a leader.
    inflight: Vec<Range<usize>>,
    /// Bumped by [`CachedSource::invalidate_all`]; a leader only fills
    /// words if the epoch it claimed under is still current.
    epoch: u64,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// Cumulative counters for a [`CachedSource`], word-granular to match
/// [`ChunkStats`](crate::ChunkStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Words served from the cache without waiting.
    pub hits: u64,
    /// Words that were absent on first classification (led or coalesced).
    pub misses: u64,
    /// Words obtained by waiting on another reader's in-flight fetch.
    pub coalesced: u64,
    /// Upstream [`Source::bits`] calls issued (one per claimed run).
    pub upstream_calls: u64,
    /// Total bits fetched upstream. With no eviction this equals
    /// 64 × unique words touched, clipped at the array tail.
    pub upstream_bits: u64,
    /// Words currently resident across all shards.
    pub resident_words: u64,
}

/// Per-call accounting returned by [`CachedSource::read_range_with`].
///
/// `hit_words + fetched_words + coalesced_words` equals the word span of
/// the requested range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadReceipt {
    /// Words served directly from the cache.
    pub hit_words: u64,
    /// Words this call fetched upstream as a single-flight leader.
    pub fetched_words: u64,
    /// Words another in-flight reader fetched while this call waited.
    pub coalesced_words: u64,
    /// Bits this call fetched upstream (tail-clipped).
    pub fetched_bits: u64,
    /// Upstream `bits` calls this call issued.
    pub upstream_calls: u64,
}

impl ReadReceipt {
    /// Whether this read was served entirely without an upstream query.
    pub fn is_free(&self) -> bool {
        self.upstream_calls == 0
    }

    /// Folds another receipt into this one (per-request aggregation).
    pub fn absorb(&mut self, other: &ReadReceipt) {
        self.hit_words += other.hit_words;
        self.fetched_words += other.fetched_words;
        self.coalesced_words += other.coalesced_words;
        self.fetched_bits += other.fetched_bits;
        self.upstream_calls += other.upstream_calls;
    }
}

/// A sharded, single-flight, word-level cache over an upstream [`Source`].
///
/// See the [module docs](self) for the protocol. `CachedSource` itself
/// implements [`Source`], so anything that reads through the trait — the
/// simulator, the oracle pipeline, [`SharedSource`](crate::SharedSource) —
/// transparently gains cross-request amortization.
pub struct CachedSource {
    inner: Arc<dyn Source>,
    len: usize,
    shards: Vec<Shard>,
    /// Words per shard stripe (contiguous striping keeps range reads on
    /// few shards).
    stripe: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    upstream_calls: AtomicU64,
    upstream_bits: AtomicU64,
}

impl std::fmt::Debug for CachedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedSource")
            .field("len", &self.len)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Locks a shard mutex, treating poisoning as recoverable: the protocol
/// invariant (a panicking leader un-claims its runs before unwinding) is
/// restored by the panic path itself, so waiters can safely continue.
fn lock_shard(shard: &Shard) -> MutexGuard<'_, ShardState> {
    shard
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

impl CachedSource {
    /// Wraps `inner` with `shards` cache shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(inner: impl Source + 'static, shards: usize) -> Self {
        Self::from_arc(Arc::new(inner), shards)
    }

    /// Wraps an already-shared source.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn from_arc(inner: Arc<dyn Source>, shards: usize) -> Self {
        assert!(shards > 0, "CachedSource needs at least one shard");
        let len = inner.len();
        let words_total = len.div_ceil(64);
        // Every shard gets a contiguous stripe; the last also owns the
        // remainder. `max(1)` keeps `shard_of` well-defined for tiny inputs.
        let stripe = words_total.div_ceil(shards).max(1);
        let shards = (0..shards)
            .map(|_| Shard {
                state: Mutex::new(ShardState::default()),
                cv: Condvar::new(),
            })
            .collect();
        CachedSource {
            inner,
            len,
            shards,
            stripe,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            upstream_calls: AtomicU64::new(0),
            upstream_bits: AtomicU64::new(0),
        }
    }

    /// Shard owning word `w`.
    fn shard_of(&self, w: usize) -> usize {
        (w / self.stripe).min(self.shards.len() - 1)
    }

    /// First word index NOT owned by shard `s` (exclusive stripe end).
    fn stripe_end(&self, s: usize) -> usize {
        if s + 1 == self.shards.len() {
            usize::MAX
        } else {
            (s + 1) * self.stripe
        }
    }

    /// Current cumulative statistics. `resident_words` takes each shard
    /// lock briefly; intended for post-run inspection, not hot paths.
    pub fn stats(&self) -> CacheStats {
        let resident: u64 = self
            .shards
            .iter()
            .map(|s| lock_shard(s).words.len() as u64)
            .sum();
        CacheStats {
            // dr-lint: allow(atomic-ordering): independent monotonic counters; reads are statistical, never gate control flow
            hits: self.hits.load(Ordering::Relaxed),
            // dr-lint: allow(atomic-ordering): independent monotonic counters; reads are statistical, never gate control flow
            misses: self.misses.load(Ordering::Relaxed),
            // dr-lint: allow(atomic-ordering): independent monotonic counters; reads are statistical, never gate control flow
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // dr-lint: allow(atomic-ordering): independent monotonic counters; reads are statistical, never gate control flow
            upstream_calls: self.upstream_calls.load(Ordering::Relaxed),
            // dr-lint: allow(atomic-ordering): independent monotonic counters; reads are statistical, never gate control flow
            upstream_bits: self.upstream_bits.load(Ordering::Relaxed),
            resident_words: resident,
        }
    }

    /// Drops every cached word and bumps each shard's epoch so in-flight
    /// fetches from before the invalidation are discarded, not re-filled.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            {
                let mut state = lock_shard(shard);
                state.words.clear();
                state.epoch += 1;
            }
            // Wake waiters so they re-classify against the empty map and
            // elect fresh leaders instead of waiting on stale fills.
            shard.cv.notify_all();
        }
    }

    /// Reads `range`, reporting each upstream fetch (as a bit range) to
    /// `on_fetch` *before* returning, and returns the bits plus a
    /// [`ReadReceipt`]. `on_fetch` is the metering hook: pass
    /// `|r| meter.record_range(peer, r)` to charge the leading peer for
    /// exactly the bits that actually went upstream.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`. Propagates panics from the upstream
    /// source (after un-claiming this call's in-flight runs so parked
    /// waiters re-elect instead of deadlocking).
    pub fn read_range_with(
        &self,
        range: Range<usize>,
        on_fetch: &mut dyn FnMut(Range<usize>),
    ) -> (BitArray, ReadReceipt) {
        assert!(
            range.end <= self.len,
            "range {range:?} out of bounds for source of {} bits",
            self.len
        );
        let mut receipt = ReadReceipt::default();
        if range.is_empty() {
            return (BitArray::zeros(0), receipt);
        }
        let w0 = range.start / 64;
        let w1 = range.end.div_ceil(64);
        let span = w1 - w0;
        let mut out = vec![0u64; span];
        let mut class = vec![CLASS_NONE; span];

        // Walk the word span stripe by stripe so each iteration deals with
        // exactly one shard's lock.
        let mut w = w0;
        while w < w1 {
            let s = self.shard_of(w);
            let seg_end = self.stripe_end(s).min(w1);
            self.read_shard_span(s, w..seg_end, w0, &mut out, &mut class, &mut receipt, on_fetch);
            w = seg_end;
        }

        for &c in &class {
            match c {
                CLASS_HIT => receipt.hit_words += 1,
                CLASS_COALESCED => receipt.coalesced_words += 1,
                CLASS_LED => receipt.fetched_words += 1,
                _ => unreachable!("unclassified word after shard pass"),
            }
        }
        // dr-lint: allow(atomic-ordering): independent monotonic counter; statistics only, never gates control flow
        self.hits.fetch_add(receipt.hit_words, Ordering::Relaxed);
        let missed = receipt.fetched_words + receipt.coalesced_words;
        // dr-lint: allow(atomic-ordering): independent monotonic counter; statistics only, never gates control flow
        self.misses.fetch_add(missed, Ordering::Relaxed);
        self.coalesced
            // dr-lint: allow(atomic-ordering): independent monotonic counter; statistics only, never gates control flow
            .fetch_add(receipt.coalesced_words, Ordering::Relaxed);

        let sh = range.start % 64;
        let out_len = range.len();
        let words: Vec<u64> = (0..out_len.div_ceil(64))
            .map(|r| {
                let lo = out[r] >> sh;
                if sh == 0 {
                    lo
                } else {
                    lo | out.get(r + 1).copied().unwrap_or(0) << (64 - sh)
                }
            })
            .collect();
        (BitArray::from_words(out_len, words), receipt)
    }

    /// Resolves words `span` (all owned by shard `s`) into `out`/`class`
    /// (indexed relative to `base`), leading or coalescing fetches as
    /// needed. Loops until every word in the span is present.
    #[allow(clippy::too_many_arguments)]
    fn read_shard_span(
        &self,
        s: usize,
        span: Range<usize>,
        base: usize,
        out: &mut [u64],
        class: &mut [u8],
        receipt: &mut ReadReceipt,
        on_fetch: &mut dyn FnMut(Range<usize>),
    ) {
        let shard = &self.shards[s];
        let mut state = lock_shard(shard);
        loop {
            // Classify every word in the span under the lock. Absent words
            // not covered by an in-flight run accumulate into maximal
            // contiguous runs for this call to lead.
            let mut runs: Vec<Range<usize>> = Vec::new();
            let mut wait_needed = false;
            for w in span.clone() {
                let i = w - base;
                if let Some(&v) = state.words.get(&w) {
                    out[i] = v;
                    if class[i] == CLASS_NONE {
                        class[i] = CLASS_HIT;
                    }
                } else if state.inflight.iter().any(|r| r.contains(&w)) {
                    wait_needed = true;
                    if class[i] == CLASS_NONE {
                        class[i] = CLASS_COALESCED;
                    }
                } else {
                    match runs.last_mut() {
                        Some(last) if last.end == w => last.end = w + 1,
                        _ => runs.push(w..w + 1),
                    }
                    if class[i] == CLASS_NONE {
                        class[i] = CLASS_LED;
                    }
                }
            }
            if runs.is_empty() {
                if !wait_needed {
                    return;
                }
                // Everything is cached or in flight: park until a leader
                // fills and notifies, then re-classify from scratch.
                state = shard
                    .cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            // Claim the runs, remember the epoch, and fetch unlocked.
            let epoch = state.epoch;
            state.inflight.extend(runs.iter().cloned());
            drop(state);
            self.lead_fetch(s, &runs, epoch, receipt, on_fetch);
            state = lock_shard(shard);
        }
    }

    /// Performs the upstream fetches for `runs` (claimed by this call),
    /// fills the shard map, and notifies waiters. On upstream panic,
    /// un-claims the remaining runs and re-raises so parked waiters
    /// re-elect a leader instead of deadlocking.
    fn lead_fetch(
        &self,
        s: usize,
        runs: &[Range<usize>],
        epoch: u64,
        receipt: &mut ReadReceipt,
        on_fetch: &mut dyn FnMut(Range<usize>),
    ) {
        let shard = &self.shards[s];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for run in runs {
                let bit_lo = run.start * 64;
                let bit_hi = (run.end * 64).min(self.len);
                let fetched = self.inner.bits(bit_lo..bit_hi);
                {
                    let mut state = lock_shard(shard);
                    state.inflight.retain(|r| r != run);
                    if state.epoch == epoch {
                        for (j, w) in run.clone().enumerate() {
                            state.words.insert(w, fetched.word(j));
                        }
                    }
                }
                shard.cv.notify_all();
                let nbits = (bit_hi - bit_lo) as u64;
                receipt.fetched_bits += nbits;
                receipt.upstream_calls += 1;
                // dr-lint: allow(atomic-ordering): independent monotonic counter; statistics only, never gates control flow
                self.upstream_calls.fetch_add(1, Ordering::Relaxed);
                // dr-lint: allow(atomic-ordering): independent monotonic counter; statistics only, never gates control flow
                self.upstream_bits.fetch_add(nbits, Ordering::Relaxed);
                on_fetch(bit_lo..bit_hi);
            }
        }));
        if let Err(payload) = outcome {
            // The panicking run and any not-yet-fetched runs are still
            // claimed; release them so waiters can lead their own fetch.
            {
                let mut state = lock_shard(shard);
                state.inflight.retain(|r| !runs.contains(r));
            }
            shard.cv.notify_all();
            resume_unwind(payload);
        }
    }
}

impl Source for CachedSource {
    fn len(&self) -> usize {
        self.len
    }

    fn bit(&self, index: usize) -> bool {
        self.bits(index..index + 1).get(0)
    }

    fn bits(&self, range: Range<usize>) -> BitArray {
        self.read_range_with(range, &mut |_| {}).0
    }
}

/// A [`CachedSource`] bundled with a [`QueryMeter`], handing out per-peer
/// [`PlaneHandle`]s that attribute *amortized* query cost: a peer is
/// charged only for the bits its reads actually pulled upstream.
///
/// This is the admission-plane analogue of
/// [`SharedSource`](crate::SharedSource) — same shape (shared source +
/// meter + handles), but reads flow through the cache, so two handles
/// asking overlapping ranges pay `Q` once between them.
#[derive(Debug, Clone)]
pub struct AdmissionPlane {
    cache: Arc<CachedSource>,
    meter: Arc<QueryMeter>,
}

impl AdmissionPlane {
    /// Builds a plane over `source` for `num_peers` metered peers with
    /// `shards` cache shards.
    pub fn new(source: impl Source + 'static, num_peers: usize, shards: usize) -> Self {
        AdmissionPlane {
            cache: Arc::new(CachedSource::new(source, shards)),
            meter: Arc::new(QueryMeter::new(num_peers)),
        }
    }

    /// Builds a plane around an existing cache (e.g. one also registered
    /// with a simulator) and its meter.
    pub fn from_parts(cache: Arc<CachedSource>, meter: Arc<QueryMeter>) -> Self {
        AdmissionPlane { cache, meter }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &Arc<CachedSource> {
        &self.cache
    }

    /// The shared meter.
    pub fn meter(&self) -> &Arc<QueryMeter> {
        &self.meter
    }

    /// Bits in the underlying source.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the underlying source is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.len() == 0
    }

    /// A handle that attributes amortized cost to `peer`.
    pub fn handle(&self, peer: PeerId) -> PlaneHandle {
        PlaneHandle {
            cache: Arc::clone(&self.cache),
            meter: Arc::clone(&self.meter),
            peer,
        }
    }
}

/// A peer-attributed reader over an [`AdmissionPlane`].
#[derive(Debug, Clone)]
pub struct PlaneHandle {
    cache: Arc<CachedSource>,
    meter: Arc<QueryMeter>,
    peer: PeerId,
}

impl PlaneHandle {
    /// The peer this handle charges.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// Reads `range` through the cache, charging this handle's peer for
    /// exactly the bit ranges that went upstream (nothing on hits or
    /// coalesced waits).
    pub fn query_range(&self, range: Range<usize>) -> (BitArray, ReadReceipt) {
        let meter = &self.meter;
        let peer = self.peer;
        self.cache
            .read_range_with(range, &mut |r| meter.record_range(peer, r))
    }

    /// Reads a single bit through the cache (metered like
    /// [`PlaneHandle::query_range`] with a 1-bit range).
    pub fn query(&self, index: usize) -> (bool, ReadReceipt) {
        let (bits, receipt) = self.query_range(index..index + 1);
        (bits.get(0), receipt)
    }
}

#[cfg(all(test, not(feature = "loom-model")))]
mod tests {
    use super::*;
    use crate::source::ArraySource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, seed: u64) -> BitArray {
        let mut rng = StdRng::seed_from_u64(seed);
        BitArray::random(n, &mut rng)
    }

    #[test]
    fn cached_reads_are_bit_identical() {
        let n = 1000;
        let input = sample(n, 7);
        let cache = CachedSource::new(ArraySource::new(input.clone()), 4);
        for range in [0..0, 0..1, 63..65, 0..n, 17..991, 128..256, 960..1000] {
            let got = cache.bits(range.clone());
            assert_eq!(got, input.slice(range.clone()), "range {range:?}");
            // Warm pass must agree too.
            assert_eq!(cache.bits(range.clone()), input.slice(range));
        }
    }

    #[test]
    fn repeat_reads_hit_without_upstream_traffic() {
        let input = sample(640, 3);
        let cache = CachedSource::new(ArraySource::new(input.clone()), 2);
        let (_, cold) = cache.read_range_with(64..320, &mut |_| {});
        assert_eq!(cold.fetched_words, 4);
        assert_eq!(cold.fetched_bits, 256);
        assert_eq!(cold.upstream_calls, 1, "contiguous run batches into one call");
        let (_, warm) = cache.read_range_with(64..320, &mut |_| {});
        assert!(warm.is_free());
        assert_eq!(warm.hit_words, 4);
        let stats = cache.stats();
        assert_eq!(stats.upstream_bits, 256);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.resident_words, 4);
    }

    #[test]
    fn partial_overlap_fetches_only_the_gap() {
        let input = sample(1024, 11);
        let cache = CachedSource::new(ArraySource::new(input.clone()), 1);
        let (_, first) = cache.read_range_with(0..256, &mut |_| {});
        assert_eq!(first.fetched_words, 4);
        // Overlaps words 2..4, extends to 8: only 4 new words fetched.
        let mut fetched = Vec::new();
        let (bits, second) = cache.read_range_with(128..512, &mut |r| fetched.push(r));
        assert_eq!(bits, input.slice(128..512));
        assert_eq!(second.hit_words, 2);
        assert_eq!(second.fetched_words, 4);
        assert_eq!(fetched, vec![256..512]);
    }

    #[test]
    fn tail_word_is_clipped() {
        let n = 130; // 3 words, last holds 2 bits
        let input = sample(n, 5);
        let cache = CachedSource::new(ArraySource::new(input.clone()), 3);
        let (bits, receipt) = cache.read_range_with(0..n, &mut |_| {});
        assert_eq!(bits, input);
        assert_eq!(receipt.fetched_words, 3);
        assert_eq!(receipt.fetched_bits, n as u64);
    }

    #[test]
    fn invalidate_all_refetches() {
        let input = sample(256, 9);
        let cache = CachedSource::new(ArraySource::new(input.clone()), 2);
        cache.bits(0..256);
        assert_eq!(cache.stats().resident_words, 4);
        cache.invalidate_all();
        assert_eq!(cache.stats().resident_words, 0);
        assert_eq!(cache.bits(0..256), input);
        assert_eq!(cache.stats().upstream_bits, 512);
    }

    #[test]
    fn plane_handle_meters_amortized_cost() {
        let input = sample(512, 21);
        let plane = AdmissionPlane::new(ArraySource::new(input.clone()), 3, 2);
        let a = plane.handle(PeerId(0));
        let b = plane.handle(PeerId(1));
        let (bits_a, ra) = a.query_range(0..256);
        assert_eq!(bits_a, input.slice(0..256));
        assert_eq!(ra.fetched_bits, 256);
        assert_eq!(plane.meter().count(PeerId(0)), 256);
        // Full overlap: peer 1 pays nothing.
        let (bits_b, rb) = b.query_range(0..256);
        assert_eq!(bits_b, input.slice(0..256));
        assert!(rb.is_free());
        assert_eq!(plane.meter().count(PeerId(1)), 0);
        // Partial overlap: peer 1 pays only the gap.
        let (_, rb2) = b.query_range(128..512);
        assert_eq!(rb2.fetched_bits, 256);
        assert_eq!(plane.meter().count(PeerId(1)), 256);
    }

    #[test]
    fn leader_panic_unclaims_and_unwinds() {
        struct Grenade;
        impl Source for Grenade {
            fn len(&self) -> usize {
                128
            }
            fn bit(&self, _index: usize) -> bool {
                panic!("upstream exploded");
            }
        }
        let cache = Arc::new(CachedSource::new(Grenade, 1));
        let result = catch_unwind(AssertUnwindSafe(|| cache.bits(0..128)));
        assert!(result.is_err());
        // The failed claim must not linger: a later reader must classify
        // the words as absent (and panic again on fetch, not deadlock).
        let again = catch_unwind(AssertUnwindSafe(|| cache.bits(0..128)));
        assert!(again.is_err());
        assert_eq!(cache.stats().upstream_bits, 0);
    }

    #[test]
    fn concurrent_overlap_fetches_each_word_once() {
        let n = 64 * 64;
        let input = sample(n, 33);
        let cache = Arc::new(CachedSource::new(ArraySource::new(input.clone()), 4));
        // dr-lint: allow(raw-thread-spawn): concurrent reader threads in a test, joined by scope exit
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                let input = &input;
                scope.spawn(move || {
                    let lo = (t % 4) * 512;
                    let got = cache.bits(lo..lo + 2048);
                    assert_eq!(got, input.slice(lo..lo + 2048));
                });
            }
        });
        let stats = cache.stats();
        // Words 0..3584 bits... threads cover bits 0..3584 → 56 words.
        assert_eq!(stats.upstream_bits, 3584);
        assert_eq!(stats.resident_words, 56);
        assert_eq!(stats.hits + stats.misses, 8 * 32);
    }
}
