//! Deterministic collection aliases for protocol and simulator state.
//!
//! Everything the repo promises about reproducibility — bit-identical
//! schedule replay, seed-equivalent parallel trials, 1-minimal chaos
//! repros — rests on iteration order being a pure function of the data.
//! `std::collections::HashMap`/`HashSet` break that promise: their
//! iteration order depends on a per-instance random hash seed, so any
//! code that iterates one is one refactor away from silently breaking
//! replay. The `dr-lint` static-analysis pass therefore bans unordered
//! maps in the deterministic crate tier (`core`, `sim`, `protocols`,
//! `oracle`) and this module provides the sanctioned replacements:
//!
//! * [`DetMap`] — a `BTreeMap`: iteration in ascending key order.
//! * [`DetSet`] — a `BTreeSet`: iteration in ascending element order.
//!
//! The aliases carry intent ("this map is protocol state whose order can
//! leak into behaviour") and give the workspace a single seam should a
//! faster deterministic map (e.g. an insertion-ordered index map) ever be
//! vendored.
//!
//! # Examples
//!
//! ```
//! use dr_core::collections::{DetMap, DetSet};
//!
//! let mut votes: DetMap<u32, usize> = DetMap::new();
//! votes.insert(7, 1);
//! votes.insert(3, 2);
//! // Iteration order is the key order, not insertion or hash order.
//! assert_eq!(votes.keys().copied().collect::<Vec<_>>(), vec![3, 7]);
//!
//! let mut seen: DetSet<(u32, u32)> = DetSet::new();
//! assert!(seen.insert((1, 2)));
//! assert!(!seen.insert((1, 2)));
//! ```

/// Deterministic map: iterates in ascending key order regardless of
/// insertion order. Use for any keyed state in the deterministic crate
/// tier (`dr-lint` rule `unordered-collections`).
pub type DetMap<K, V> = std::collections::BTreeMap<K, V>;

/// Deterministic set: iterates in ascending element order regardless of
/// insertion order. Use for any set-shaped state in the deterministic
/// crate tier (`dr-lint` rule `unordered-collections`).
pub type DetSet<T> = std::collections::BTreeSet<T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_insertion_independent() {
        let mut a: DetMap<u64, u64> = DetMap::new();
        let mut b: DetMap<u64, u64> = DetMap::new();
        for i in 0..64 {
            a.insert(i, i * i);
            b.insert(63 - i, (63 - i) * (63 - i));
        }
        assert!(a.iter().eq(b.iter()));

        let mut s: DetSet<u64> = DetSet::new();
        let mut t: DetSet<u64> = DetSet::new();
        for i in 0..64 {
            s.insert(i ^ 0x2a);
            t.insert((63 - i) ^ 0x2a);
        }
        assert!(s.iter().eq(t.iter()));
    }
}
