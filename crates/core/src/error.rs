//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// Returned when model parameters are inconsistent (e.g. zero peers, or a
/// fault budget that leaves no nonfaulty peer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParamsError {
    message: String,
}

impl InvalidParamsError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        InvalidParamsError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model parameters: {}", self.message)
    }
}

impl Error for InvalidParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_message() {
        let e = InvalidParamsError::new("boom");
        assert_eq!(e.to_string(), "invalid model parameters: boom");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<InvalidParamsError>();
    }
}
