//! Exhaustive model checks for the admission plane's single-flight path.
//!
//! Run with `cargo test -p dr-core --features loom-model --test
//! loom_admission`. Under the `loom-model` feature the `crate::sync`
//! facade swaps the per-shard mutex/condvar for the vendored loom
//! implementations, and `loom::model` explores every interleaving of the
//! claim/fetch/fill/notify protocol. Three properties are load-bearing:
//!
//! 1. **Exactly one upstream query per coalesced group** — concurrent
//!    misses on the same words must produce one upstream `bits` call, no
//!    matter how claim and wait steps interleave.
//! 2. **No lost wakeups** — a waiter parked on the shard condvar is
//!    always eventually released by the leader's fill (a lost wakeup
//!    shows up as a deadlock, which loom detects).
//! 3. **Leader panic does not deadlock followers** — a panicking
//!    upstream unwinds through the leader, un-claims its runs, and wakes
//!    waiters so they re-elect (and themselves observe the panic) rather
//!    than parking forever.
#![cfg(feature = "loom-model")]

use dr_core::{ArraySource, BitArray, CachedSource, Source};
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn concurrent_misses_coalesce_to_one_upstream_query() {
    loom::model(|| {
        let input = BitArray::from_fn(64, |i| i % 3 == 0);
        let cache = Arc::new(CachedSource::new(ArraySource::new(input.clone()), 1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let input = input.clone();
                loom::thread::spawn(move || {
                    assert_eq!(Source::bits(&*cache, 0..64), input);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        // Whether the readers raced (one leads, one coalesces) or ran
        // sequentially (one leads, one hits), the word went upstream once.
        assert_eq!(stats.upstream_calls, 1);
        assert_eq!(stats.upstream_bits, 64);
        assert_eq!(stats.misses + stats.hits, 2);
    });
}

#[test]
fn overlapping_ranges_never_double_fetch_or_lose_waiters() {
    loom::model(|| {
        let input = BitArray::from_fn(128, |i| i % 5 == 0);
        let cache = Arc::new(CachedSource::new(ArraySource::new(input.clone()), 1));
        let a = {
            let cache = Arc::clone(&cache);
            let input = input.clone();
            loom::thread::spawn(move || {
                assert_eq!(Source::bits(&*cache, 0..128), input);
            })
        };
        let b = {
            let cache = Arc::clone(&cache);
            let input = input.clone();
            loom::thread::spawn(move || {
                assert_eq!(Source::bits(&*cache, 64..128), input.slice(64..128));
            })
        };
        // A lost wakeup would leave a reader parked on the shard condvar
        // with no leader left to notify — loom reports that as deadlock.
        a.join().unwrap();
        b.join().unwrap();
        // Word 1 overlaps both readers; it still went upstream once.
        assert_eq!(cache.stats().upstream_bits, 128);
    });
}

#[test]
fn leader_panic_unclaims_and_wakes_followers() {
    struct Grenade;
    impl Source for Grenade {
        fn len(&self) -> usize {
            64
        }
        fn bit(&self, _index: usize) -> bool {
            panic!("upstream exploded");
        }
    }
    loom::model(|| {
        let cache = Arc::new(CachedSource::new(Grenade, 1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                loom::thread::spawn(move || {
                    // Each reader either leads (and observes the upstream
                    // panic directly) or coalesces behind the leader, gets
                    // woken by the panic cleanup, re-elects itself, and
                    // then observes the panic. Parking forever is the bug
                    // class under check; loom flags it as deadlock.
                    catch_unwind(AssertUnwindSafe(|| {
                        let _ = Source::bits(&*cache, 0..64);
                    }))
                    .is_err()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap(), "every reader must observe the panic");
        }
        // Nothing was ever successfully fetched or left claimed.
        let stats = cache.stats();
        assert_eq!(stats.upstream_bits, 0);
        assert_eq!(stats.resident_words, 0);
    });
}
