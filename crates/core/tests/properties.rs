//! Crate-local property tests for `dr-core` invariants.

use dr_core::{ArraySource, Assignment, BitArray, PeerId, PeerSet, SharedSource, Source};
use proptest::prelude::*;

proptest! {
    #[test]
    fn peerset_roundtrip(universe in 1usize..200, members in prop::collection::vec(0usize..200, 0..40)) {
        let mut s = PeerSet::new(universe);
        let mut expected = std::collections::BTreeSet::new();
        for m in members {
            let m = m % universe;
            s.insert(PeerId(m));
            expected.insert(m);
        }
        prop_assert_eq!(s.len(), expected.len());
        let got: Vec<usize> = s.iter().map(|p| p.index()).collect();
        let want: Vec<usize> = expected.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn peerset_complement_is_involutive(universe in 1usize..128, members in prop::collection::vec(0usize..128, 0..32)) {
        let mut s = PeerSet::new(universe);
        for m in members {
            s.insert(PeerId(m % universe));
        }
        prop_assert_eq!(s.complement().complement(), s);
    }

    #[test]
    fn overlap_lemma_for_any_two_large_sets(
        k in 3usize..40,
        b_frac in 0.0f64..0.49,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        // Any two sets of size k − b with b < k/2 must intersect
        // (Observation "Overlap Lemma").
        let b = (b_frac * k as f64) as usize;
        let size = k - b;
        let pick = |seed: u64| {
            let mut s = PeerSet::new(k);
            let mut x = seed;
            while s.len() < size {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.insert(PeerId((x >> 33) as usize % k));
            }
            s
        };
        let a = pick(seed_a);
        let c = pick(seed_b);
        prop_assert!(a.intersection(&c).len() >= k - 2 * b);
        prop_assert!(!a.intersection(&c).is_empty());
    }

    #[test]
    fn assignment_reassignment_is_permutation_invariant(
        n in 1usize..300,
        k in 1usize..12,
        picks in prop::collection::vec(0usize..300, 0..30),
    ) {
        let mut a = Assignment::round_robin(n, k);
        let mut b = a.clone();
        let bits: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let mut rev = bits.clone();
        rev.reverse();
        a.reassign_evenly(&bits);
        b.reassign_evenly(&rev);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn source_metering_counts_every_access(
        n in 1usize..500,
        accesses in prop::collection::vec((0usize..500, 0usize..4), 0..60),
    ) {
        let source = SharedSource::new(ArraySource::new(BitArray::zeros(n)), 4);
        let mut expected = [0u64; 4];
        for (idx, peer) in accesses {
            source.handle(PeerId(peer)).query(idx % n);
            expected[peer] += 1;
        }
        prop_assert_eq!(source.meter().counts(), expected.to_vec());
        let max = expected.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(source.meter().max_over((0..4).map(PeerId)), max);
    }

    #[test]
    fn array_source_is_stable(bits in prop::collection::vec(any::<bool>(), 1..200), idx in 0usize..200) {
        let src = ArraySource::new(BitArray::from_bools(&bits));
        let i = idx % bits.len();
        prop_assert_eq!(src.bit(i), bits[i]);
        prop_assert_eq!(src.bit(i), src.bit(i));
        prop_assert_eq!(src.len(), bits.len());
    }

    #[test]
    fn bitarray_order_matches_bool_lexicographic(
        a in prop::collection::vec(any::<bool>(), 0..200),
        b in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        // `Ord` on the packed representation must agree with the
        // lexicographic order of the unpacked bit sequence — this is what
        // makes DetMap<BitArray, _> iteration deterministic *and*
        // human-predictable (the τ-frequent table relies on it).
        let pa = BitArray::from_bools(&a);
        let pb = BitArray::from_bools(&b);
        prop_assert_eq!(pa.cmp(&pb), a.cmp(&b));
        prop_assert_eq!(pa.cmp(&pa), std::cmp::Ordering::Equal);
    }

    #[test]
    fn cow_clone_is_semantically_identical(bools in prop::collection::vec(any::<bool>(), 0..300)) {
        // A cheap clone shares the buffer; a deep clone does not; neither
        // is distinguishable through Eq, Ord, or Hash.
        let a = BitArray::from_bools(&bools);
        let b = a.clone();
        let c = a.deep_clone();
        prop_assert!(b.shares_buffer_with(&a));
        prop_assert!(!c.shares_buffer_with(&a));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        use std::hash::{Hash, Hasher};
        let fingerprint = |x: &BitArray| {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn cow_mutators_never_leak_into_shared_clones(
        bools in prop::collection::vec(any::<bool>(), 1..257),
        donor_bools in prop::collection::vec(any::<bool>(), 1..257),
        raw_i in any::<usize>(),
        raw_off in any::<usize>(),
        flip in any::<bool>(),
    ) {
        // Share a BitArray via clone, mutate one side through every
        // mutator, and require the other side to be word-for-word
        // identical to its pre-mutation snapshot (no aliasing leaks).
        let base = BitArray::from_bools(&bools);
        let n = base.len();
        let donor = BitArray::from_bools(&donor_bools);
        let assert_intact = |shared: &BitArray, snapshot: &BitArray| {
            assert_eq!(shared.len(), snapshot.len());
            for w in 0..shared.word_count() {
                assert_eq!(shared.word(w), snapshot.word(w), "word {w} leaked");
            }
        };

        // set
        {
            let shared = base.clone();
            prop_assert!(shared.shares_buffer_with(&base));
            let snapshot = shared.deep_clone();
            let mut mutated = shared.clone();
            mutated.set(raw_i % n, flip);
            // Any mutation un-shares, even one writing the same value.
            prop_assert!(!mutated.shares_buffer_with(&shared));
            assert_intact(&shared, &snapshot);
        }

        // write_at
        {
            let shared = base.clone();
            let snapshot = shared.deep_clone();
            let mut mutated = shared.clone();
            let off = raw_off % n;
            let take = donor.len().min(n - off);
            mutated.write_at(off, &donor.slice(0..take));
            assert_intact(&shared, &snapshot);
        }

        // or_assign, with a foreign donor and with the shared twin itself
        {
            let shared = base.clone();
            let snapshot = shared.deep_clone();
            let mut sized_donor = BitArray::zeros(n);
            sized_donor.copy_range(0, &donor, 0..donor.len().min(n));
            let mut mutated = shared.clone();
            mutated.or_assign(&sized_donor);
            assert_intact(&shared, &snapshot);
            // a |= a through a shared twin is a no-op on both sides.
            let mut self_or = shared.clone();
            let twin = self_or.clone();
            self_or.or_assign(&twin);
            assert_intact(&self_or, &snapshot);
            assert_intact(&twin, &snapshot);
        }

        // copy_range
        {
            let shared = base.clone();
            let snapshot = shared.deep_clone();
            let mut mutated = shared.clone();
            let off = raw_off % n;
            let take = donor.len().min(n - off);
            mutated.copy_range(off, &donor, 0..take);
            assert_intact(&shared, &snapshot);
        }
    }
}
