//! The fault-free balanced Download protocol.
//!
//! With no failures, the Download problem splits evenly: peer `v` queries
//! the `v`-th slice of `⌈n/k⌉` bits, broadcasts it, and assembles the rest
//! from the other peers' broadcasts (§1.2). `Q = ⌈n/k⌉`, `M = O(k²)`
//! chunk messages, and `T = O(n/(ak))` once slices exceed the message size.
//!
//! This protocol is **not fault tolerant**: a single crashed or silent peer
//! deadlocks every other peer (the observation motivating §2), which the
//! tests — and the `fig_lower_bound` experiment — demonstrate.

use dr_core::{BitArray, Context, PartialArray, PeerId, Protocol, ProtocolMessage};

/// A contiguous chunk of input bits, as broadcast by its owner.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// First bit index covered by this chunk.
    pub offset: usize,
    /// The chunk's bits.
    pub bits: BitArray,
}

impl ProtocolMessage for Chunk {
    fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

/// Balanced work-sharing download for the fault-free setting.
///
/// # Examples
///
/// ```
/// use dr_core::ModelParams;
/// use dr_protocols::BalancedDownload;
/// use dr_sim::SimBuilder;
///
/// let params = ModelParams::fault_free(96, 4)?;
/// let sim = SimBuilder::new(params)
///     .protocol(|_| BalancedDownload::new(96, 4))
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// assert_eq!(report.max_nonfaulty_queries, 24);
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct BalancedDownload {
    acc: PartialArray,
    out: Option<BitArray>,
}

impl BalancedDownload {
    /// Creates an instance for `n` input bits and `k` peers.
    pub fn new(n: usize, _k: usize) -> Self {
        BalancedDownload {
            acc: PartialArray::new(n),
            out: None,
        }
    }

    fn slice_of(n: usize, k: usize, peer: usize) -> std::ops::Range<usize> {
        let per = n.div_ceil(k);
        (peer * per).min(n)..((peer + 1) * per).min(n)
    }

    fn check_done(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }
}

impl Protocol for BalancedDownload {
    type Msg = Chunk;

    fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
        let range = Self::slice_of(ctx.input_len(), ctx.num_peers(), ctx.me().index());
        let bits = ctx.query_range(range.clone());
        self.acc.learn_slice(range.start, &bits);
        ctx.broadcast(Chunk {
            offset: range.start,
            bits,
        });
        self.check_done();
    }

    fn on_message(&mut self, _from: PeerId, msg: Chunk, _ctx: &mut dyn Context<Chunk>) {
        if msg.offset + msg.bits.len() <= self.acc.len() {
            self.acc.learn_slice(msg.offset, &msg.bits);
        }
        self.check_done();
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{RunError, SilentAgent, SimBuilder};

    #[test]
    fn balanced_shares_work_evenly() {
        let params = ModelParams::fault_free(1000, 10).unwrap();
        let sim = SimBuilder::new(params)
            .seed(3)
            .protocol(|_| BalancedDownload::new(1000, 10))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.max_nonfaulty_queries, 100);
        assert_eq!(report.messages_sent, 90);
    }

    #[test]
    fn uneven_split_still_works() {
        // n not divisible by k: the last slice is shorter (possibly empty).
        let params = ModelParams::fault_free(10, 3).unwrap();
        let sim = SimBuilder::new(params)
            .seed(4)
            .protocol(|_| BalancedDownload::new(10, 3))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn one_silent_peer_deadlocks_balanced() {
        let params = ModelParams::builder(40, 4)
            .faults(FaultModel::Byzantine, 1)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(5)
            .protocol(|_| BalancedDownload::new(40, 4))
            .byzantine(dr_core::PeerId(0), SilentAgent::new())
            .build();
        assert!(matches!(sim.run(), Err(RunError::Deadlock { .. })));
    }
}
