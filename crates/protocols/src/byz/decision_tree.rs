//! Decision trees over conflicting bit strings (Protocol 3, §3.4.1).
//!
//! Given a set `S` of *overlapping* strings (claimed values for the same
//! input segment), the decision tree picks, at every internal node, the
//! first *separating index* of two inconsistent strings and splits `S` by
//! the bit at that index. Walking the tree while querying the source at
//! each separating index (`determine`) discards every string inconsistent
//! with the source; if the true segment value is among the leaves, the
//! walk ends at it after at most `|S| − 1` queries.
//!
//! This is the mechanism that lets the randomized protocols tolerate
//! Byzantine peers *without* honest-majority voting: wrong strings cost
//! queries, never correctness.

use dr_core::BitArray;
use std::ops::Range;

/// A decision tree over a set of equal-length strings.
#[derive(Debug, Clone)]
pub enum DecisionTree {
    /// No strings at all (empty input set).
    Empty,
    /// A single surviving string.
    Leaf(BitArray),
    /// An internal node splitting on a separating index (relative to the
    /// segment start).
    Node {
        /// The separating index within the segment.
        index: usize,
        /// Subtree of strings with bit 0 at `index`.
        zero: Box<DecisionTree>,
        /// Subtree of strings with bit 1 at `index`.
        one: Box<DecisionTree>,
    },
}

impl DecisionTree {
    /// Builds a decision tree from a set of overlapping strings
    /// (Protocol 3). Duplicates are merged; all strings must have equal
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if the strings have differing lengths.
    pub fn build(strings: &[BitArray]) -> Self {
        let mut set: Vec<BitArray> = Vec::new();
        for s in strings {
            if let Some(first) = set.first() {
                assert_eq!(
                    first.len(),
                    s.len(),
                    "overlapping strings must have equal length"
                );
            }
            if !set.contains(s) {
                set.push(s.clone());
            }
        }
        Self::build_dedup(set)
    }

    fn build_dedup(set: Vec<BitArray>) -> Self {
        match set.len() {
            0 => DecisionTree::Empty,
            1 => DecisionTree::Leaf(set.into_iter().next().expect("len checked")),
            _ => {
                // Pick two inconsistent strings; their first separating
                // index labels the root.
                let index = set[0]
                    .first_difference(&set[1])
                    .expect("distinct strings must differ somewhere");
                let (zeros, ones): (Vec<BitArray>, Vec<BitArray>) =
                    set.into_iter().partition(|s| !s.get(index));
                DecisionTree::Node {
                    index,
                    zero: Box::new(Self::build_dedup(zeros)),
                    one: Box::new(Self::build_dedup(ones)),
                }
            }
        }
    }

    /// Number of internal nodes (= number of distinct strings − 1; the
    /// worst-case query cost of [`DecisionTree::determine`]).
    pub fn internal_nodes(&self) -> usize {
        match self {
            DecisionTree::Empty | DecisionTree::Leaf(_) => 0,
            DecisionTree::Node { zero, one, .. } => {
                1 + zero.internal_nodes() + one.internal_nodes()
            }
        }
    }

    /// Number of leaves (distinct strings).
    pub fn leaves(&self) -> usize {
        match self {
            DecisionTree::Empty => 0,
            DecisionTree::Leaf(_) => 1,
            DecisionTree::Node { zero, one, .. } => zero.leaves() + one.leaves(),
        }
    }

    /// Resolves the conflict by querying the source at each separating
    /// index along the walk (Procedure `Determine`). `segment` is the
    /// absolute bit range the strings claim to cover; `query` receives
    /// absolute source indices and is charged one query per call.
    ///
    /// Returns the surviving string, or `None` if the set was empty.
    /// If the true string was among the leaves, the result *is* the true
    /// string; otherwise the result is some string consistent with every
    /// queried separating index.
    pub fn determine(
        &self,
        segment: Range<usize>,
        query: &mut dyn FnMut(usize) -> bool,
    ) -> Option<BitArray> {
        match self {
            DecisionTree::Empty => None,
            DecisionTree::Leaf(s) => Some(s.clone()),
            DecisionTree::Node { index, zero, one } => {
                let truth = query(segment.start + index);
                if truth {
                    one.determine(segment, query)
                } else {
                    zero.determine(segment, query)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: &[bool]) -> BitArray {
        BitArray::from_bools(bits)
    }

    /// Runs determine against a concrete source array.
    fn determine_against(
        tree: &DecisionTree,
        source: &BitArray,
        start: usize,
    ) -> (Option<BitArray>, usize) {
        let mut queries = 0;
        let out = tree.determine(start..start + 4, &mut |j| {
            queries += 1;
            source.get(j)
        });
        (out, queries)
    }

    #[test]
    fn single_string_needs_no_queries() {
        let tree = DecisionTree::build(&[s(&[true, false, true, false])]);
        let source = s(&[true, false, true, false]);
        let (out, queries) = determine_against(&tree, &source, 0);
        assert_eq!(out.unwrap(), s(&[true, false, true, false]));
        assert_eq!(queries, 0);
    }

    #[test]
    fn empty_set_gives_none() {
        let tree = DecisionTree::build(&[]);
        assert!(matches!(tree, DecisionTree::Empty));
        let source = s(&[false; 4]);
        assert_eq!(determine_against(&tree, &source, 0).0, None);
    }

    #[test]
    fn true_string_survives_against_fakes() {
        let truth = s(&[true, true, false, false]);
        let fakes = [
            s(&[false, true, false, false]),
            s(&[true, false, true, false]),
            s(&[true, true, false, true]),
        ];
        let mut all = fakes.to_vec();
        all.push(truth.clone());
        let tree = DecisionTree::build(&all);
        let source = truth.clone();
        let (out, queries) = determine_against(&tree, &source, 0);
        assert_eq!(out.unwrap(), truth);
        // Cost ≤ |S| − 1 internal nodes.
        assert!(queries < all.len());
        assert_eq!(tree.internal_nodes(), tree.leaves() - 1);
    }

    #[test]
    fn duplicates_are_merged() {
        let a = s(&[true, false, false, false]);
        let tree = DecisionTree::build(&[a.clone(), a.clone(), a.clone()]);
        assert_eq!(tree.leaves(), 1);
        assert_eq!(tree.internal_nodes(), 0);
    }

    #[test]
    fn segment_offset_is_respected() {
        // Strings claim segment [8, 12); separating queries must hit the
        // absolute indices.
        let truth = s(&[false, true, false, true]);
        let fake = s(&[false, false, false, true]);
        let tree = DecisionTree::build(&[fake, truth.clone()]);
        let mut source = BitArray::zeros(16);
        for (off, b) in truth.iter().enumerate() {
            source.set(8 + off, b);
        }
        let mut queried = Vec::new();
        let out = tree.determine(8..12, &mut |j| {
            queried.push(j);
            source.get(j)
        });
        assert_eq!(out.unwrap(), truth);
        assert_eq!(queried, vec![9]); // separating index 1, absolute 9
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mixed_lengths_panic() {
        let _ = DecisionTree::build(&[s(&[true]), s(&[true, false])]);
    }

    #[test]
    fn internal_nodes_equal_leaves_minus_one() {
        // Exhaustive over all subsets of 3-bit strings.
        let universe: Vec<BitArray> = (0..8u8)
            .map(|v| BitArray::from_fn(3, |i| v >> i & 1 == 1))
            .collect();
        for mask in 1u16..256 {
            let set: Vec<BitArray> = (0..8)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| universe[i].clone())
                .collect();
            let tree = DecisionTree::build(&set);
            assert_eq!(tree.leaves(), set.len());
            assert_eq!(tree.internal_nodes(), set.len() - 1);
            // The true string always survives, whichever it is.
            for truth in &set {
                let mut q = |j: usize| truth.get(j);
                let out = tree.determine(0..3, &mut q).unwrap();
                assert_eq!(&out, truth, "set mask {mask}");
            }
        }
    }
}
