//! Byzantine-fault Download protocols (§3 of the paper).

mod committee;
mod decision_tree;
mod frequent;
mod multi_cycle;
mod segment_msg;
pub mod strategies;
mod two_cycle;

pub use committee::{committee, in_committee, CommitteeDownload, VoteBatch};
pub use decision_tree::DecisionTree;
pub use frequent::FrequencyTable;
pub use multi_cycle::{MultiCycleDownload, MultiCyclePlan};
pub use segment_msg::SegmentMsg;
pub use two_cycle::{TwoCycleDownload, TwoCyclePlan};
