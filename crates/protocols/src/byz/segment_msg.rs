//! The message type of the randomized Byzantine protocols (§3.4).

use dr_core::{BitArray, ProtocolMessage, SegmentId};

/// A claimed value for one segment in one cycle: `⟨cycle, segment, bits⟩`.
///
/// Cycle 1 claims come from direct source queries; cycle `c ≥ 2` claims
/// (multi-cycle protocol only) are the concatenation of two determined
/// cycle-`c−1` segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMsg {
    /// Protocol cycle this claim belongs to (1-based).
    pub cycle: u32,
    /// The segment (within that cycle's segmentation) being claimed.
    pub segment: SegmentId,
    /// The claimed bits.
    pub bits: BitArray,
}

impl ProtocolMessage for SegmentMsg {
    fn bit_len(&self) -> usize {
        32 + 64 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_tracks_payload() {
        let m = SegmentMsg {
            cycle: 1,
            segment: SegmentId(0),
            bits: BitArray::zeros(100),
        };
        assert_eq!(m.bit_len(), 196);
    }
}
