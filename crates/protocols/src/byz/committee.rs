//! Deterministic Byzantine Download via committees (§3.3, Theorem 3.4).
//!
//! For `β < 1/2` (i.e. `t = b < k/2` Byzantine peers), a committee of
//! `2t + 1` peers is assigned to every input bit in round-robin order.
//! Each committee member queries its bit and broadcasts `(index, value)`;
//! a peer accepts value `x` for bit `j` once `t + 1` *distinct committee
//! members of* `C_j` reported `x` — at least one of them is honest, so
//! `x = X[j]`, and since at least `t + 1` committee members are honest,
//! every peer eventually accepts every bit. Byzantine members can lie or
//! stay silent but can never assemble `t + 1` votes for a wrong value.
//!
//! `Q = ⌈n(2t+1)/k⌉` per peer and `M = O(k · n(2t+1)/k) = O(nt)` vote
//! messages (batched into one physical message per recipient here, sized
//! accordingly).

use dr_core::collections::DetMap;
use dr_core::{BitArray, Context, PartialArray, PeerId, Protocol, ProtocolMessage};

/// A batch of committee votes: a packed bitmap of the sender's claimed
/// values over its committee-membership bit set, in increasing index
/// order. The membership set is structural (round-robin), so the receiver
/// reconstructs the indices locally — messages carry `n·c/k` payload bits
/// instead of 65 bits per vote.
#[derive(Debug, Clone)]
pub struct VoteBatch {
    /// Claimed values for the sender's committee bits, ascending by index.
    pub values: BitArray,
}

impl ProtocolMessage for VoteBatch {
    fn bit_len(&self) -> usize {
        self.values.len()
    }
}

/// The committee of bit `j` for `k` peers and committee size `c`:
/// peers `(j·c + l) mod k` for `l = 0..c` (round-robin, so each peer sits
/// on at most `⌈n·c/k⌉` committees).
pub fn committee(j: usize, k: usize, c: usize) -> impl Iterator<Item = PeerId> {
    (0..c).map(move |l| PeerId((j * c + l) % k))
}

/// O(1) membership test for [`committee`]: `peer ∈ C_j` iff
/// `(peer − j·c) mod k < c`.
pub fn in_committee(j: usize, k: usize, c: usize, peer: PeerId) -> bool {
    let start = (j * c) % k;
    let off = (peer.index() + k - start) % k;
    off < c.min(k)
}

/// Deterministic Byzantine-tolerant Download via per-bit committees.
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams, PeerId};
/// use dr_protocols::CommitteeDownload;
/// use dr_sim::{SilentAgent, SimBuilder};
///
/// let params = ModelParams::builder(64, 7)
///     .faults(FaultModel::Byzantine, 2)
///     .build()?;
/// let sim = SimBuilder::new(params)
///     .protocol(|_| CommitteeDownload::new(64, 7, 2))
///     .byzantine(PeerId(0), SilentAgent::new())
///     .byzantine(PeerId(1), SilentAgent::new())
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct CommitteeDownload {
    n: usize,
    k: usize,
    t: usize,
    acc: PartialArray,
    out: Option<BitArray>,
    /// Per-bit vote tally: bit → (value → distinct committee voters),
    /// ordered so no hash order can leak into the accept sequence.
    tally: DetMap<usize, [Vec<PeerId>; 2]>,
}

impl CommitteeDownload {
    /// Creates an instance for `n` bits, `k` peers, and up to `t < k/2`
    /// Byzantine peers.
    ///
    /// # Panics
    ///
    /// Panics unless `2t + 1 ≤ k` (honest majority is required for
    /// deterministic sub-naive Download — Theorem 3.1 shows `β ≥ 1/2`
    /// forces `Q = n`).
    pub fn new(n: usize, k: usize, t: usize) -> Self {
        assert!(2 * t < k, "committee protocol requires t < k/2");
        CommitteeDownload {
            n,
            k,
            t,
            acc: PartialArray::new(n),
            out: None,
            tally: DetMap::new(),
        }
    }

    /// Committee size used by this instance.
    pub fn committee_size(&self) -> usize {
        2 * self.t + 1
    }

    /// Chaos-campaign invariant envelope: each bit is queried by its
    /// committee of `2t + 1` peers and the load is balanced, so
    /// `Q ≤ ⌈n(2t+1)/k⌉ + 1` exactly; twice that plus slack leaves room
    /// for nothing but bugs. One round of votes: small constant time.
    pub fn cost_envelope(n: usize, k: usize, t: usize) -> crate::CostEnvelope {
        let theory = (n * (2 * t + 1)).div_ceil(k) as f64 + 1.0;
        crate::CostEnvelope {
            q_max: (2.0 * theory).ceil() as u64 + 16,
            t_base: 16.0,
            t_per_release: 4.0,
            t_per_retry: 0.0,
            t_link_slack: 0.0,
        }
    }

    fn member(&self, j: usize, peer: PeerId) -> bool {
        in_committee(j, self.k, self.committee_size(), peer)
    }

    fn check_done(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }

    fn record_vote(&mut self, from: PeerId, j: usize, value: bool) {
        if j >= self.n || !self.member(j, from) {
            return; // non-member votes are ignored outright
        }
        let entry = self.tally.entry(j).or_default();
        let bucket = &mut entry[usize::from(value)];
        if !bucket.contains(&from) {
            bucket.push(from);
        }
        if entry[usize::from(value)].len() > self.t {
            self.acc.learn(j, value);
        }
    }
}

impl Protocol for CommitteeDownload {
    type Msg = VoteBatch;

    fn on_start(&mut self, ctx: &mut dyn Context<VoteBatch>) {
        let me = ctx.me();
        let c = self.committee_size();
        // Pack votes straight into a BitArray (one word-level buffer, no
        // intermediate Vec<bool>): vote r is the r-th index j with
        // `in_committee(j, k, c, me)`, in ascending order of j.
        let mine: Vec<usize> = (0..self.n)
            .filter(|&j| in_committee(j, self.k, c, me))
            .collect();
        let mut values = BitArray::zeros(mine.len());
        for (r, &j) in mine.iter().enumerate() {
            let v = ctx.query(j);
            self.acc.learn(j, v);
            values.set(r, v);
        }
        ctx.broadcast(VoteBatch { values });
        self.check_done();
    }

    fn on_message(&mut self, from: PeerId, msg: VoteBatch, _ctx: &mut dyn Context<VoteBatch>) {
        if self.out.is_some() {
            return;
        }
        // Decode the packed bitmap against the sender's structural
        // membership set; a batch of the wrong arity is discarded
        // wholesale (Byzantine senders gain nothing from malformed
        // batches — only committee votes are tallied anyway).
        let c = self.committee_size();
        let mut r = 0usize;
        for j in 0..self.n {
            if in_committee(j, self.k, c, from) {
                if r >= msg.values.len() {
                    return;
                }
                self.record_vote(from, j, msg.values.get(r));
                r += 1;
            }
        }
        self.check_done();
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{SilentAgent, SimBuilder};

    fn params(n: usize, k: usize, t: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, t)
            .build()
            .unwrap()
    }

    #[test]
    fn committee_rotation_is_balanced() {
        let n = 100;
        let k = 9;
        let c = 5;
        let mut load = vec![0usize; k];
        for j in 0..n {
            for p in committee(j, k, c) {
                load[p.index()] += 1;
            }
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max - min <= 1, "committee load {load:?}");
        assert_eq!(load.iter().sum::<usize>(), n * c);
    }

    #[test]
    fn membership_test_matches_enumeration() {
        for k in [3usize, 5, 8, 13] {
            for c in [1usize, 3, 5, 7] {
                for j in 0..40 {
                    for p in 0..k {
                        let by_iter = committee(j, k, c).any(|q| q == PeerId(p));
                        assert_eq!(
                            by_iter,
                            in_committee(j, k, c, PeerId(p)),
                            "k={k} c={c} j={j} p={p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn no_byzantine_still_works() {
        let sim = SimBuilder::new(params(80, 5, 2))
            .seed(1)
            .protocol(|_| CommitteeDownload::new(80, 5, 2))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        // Q = n(2t+1)/k = 80·5/5 = 80.
        assert_eq!(report.max_nonfaulty_queries, 80);
    }

    #[test]
    fn silent_byzantine_members_are_tolerated() {
        let sim = SimBuilder::new(params(60, 7, 2))
            .seed(2)
            .protocol(|_| CommitteeDownload::new(60, 7, 2))
            .byzantine(PeerId(3), SilentAgent::new())
            .byzantine(PeerId(6), SilentAgent::new())
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn lying_byzantine_members_cannot_corrupt() {
        use dr_core::Context;

        /// Votes the complement of the truth on every committee it sits on.
        struct Liar {
            n: usize,
            k: usize,
            c: usize,
        }
        impl Protocol for Liar {
            type Msg = VoteBatch;
            fn on_start(&mut self, ctx: &mut dyn Context<VoteBatch>) {
                let me = ctx.me();
                let mut votes = Vec::new();
                for j in 0..self.n {
                    if committee(j, self.k, self.c).any(|p| p == me) {
                        let v = ctx.query(j);
                        votes.push(!v);
                    }
                }
                ctx.broadcast(VoteBatch {
                    values: BitArray::from_bools(&votes),
                });
            }
            fn on_message(&mut self, _f: PeerId, _m: VoteBatch, _c: &mut dyn Context<VoteBatch>) {}
            fn output(&self) -> Option<&BitArray> {
                None
            }
        }

        let (n, k, t) = (48, 7, 3);
        let sim = SimBuilder::new(params(n, k, t))
            .seed(3)
            .protocol(move |_| CommitteeDownload::new(n, k, t))
            .byzantine(PeerId(0), Liar { n, k, c: 2 * t + 1 })
            .byzantine(PeerId(2), Liar { n, k, c: 2 * t + 1 })
            .byzantine(PeerId(4), Liar { n, k, c: 2 * t + 1 })
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn non_member_votes_are_ignored() {
        let mut p = CommitteeDownload::new(10, 5, 1);
        let c = p.committee_size();
        // Find a peer not on bit 0's committee.
        let outsider = (0..5)
            .map(PeerId)
            .find(|&q| !committee(0, 5, c).any(|m| m == q))
            .unwrap();
        p.record_vote(outsider, 0, true);
        p.record_vote(outsider, 0, true);
        assert!(!p.acc.is_known(0));
    }

    #[test]
    fn query_complexity_scales_with_t() {
        let n = 120;
        let k = 12;
        for t in [0usize, 1, 2, 3, 5] {
            let sim = SimBuilder::new(params(n, k, t))
                .seed(4 + t as u64)
                .protocol(move |_| CommitteeDownload::new(n, k, t))
                .build();
            let input = sim.input().clone();
            let report = sim.run().unwrap();
            report.verify_downloads(&input).unwrap();
            let expected = (n * (2 * t + 1)).div_ceil(k) as u64;
            assert!(
                report.max_nonfaulty_queries <= expected + 1,
                "t={t}: Q={} > {expected}",
                report.max_nonfaulty_queries
            );
        }
    }

    #[test]
    #[should_panic(expected = "t < k/2")]
    fn rejects_byzantine_majority() {
        let _ = CommitteeDownload::new(10, 4, 2);
    }
}
