//! The multi-cycle randomized Byzantine Download protocol (§3.4.3,
//! Theorem 3.12).
//!
//! Cycle 1 is the 2-cycle protocol's sampling step over `p₁` segments
//! (`p₁` a power of two). In every later cycle `c`, the segment size
//! doubles (`p_c = p₁ / 2^{c−1}`): each peer samples one cycle-`c` segment
//! uniformly, *determines* its two cycle-`(c−1)` halves by decision trees
//! over the τ-frequent cycle-`(c−1)` claims (Lemma 3.10: those halves were
//! each sampled by ≥ τ heard honest peers w.h.p., so the true strings are
//! leaves), concatenates, and broadcasts the result. After
//! `log₂ p₁ + 1` cycles the sampled segment is the entire input and the
//! peer outputs it.
//!
//! Every cycle's wait is for claims from `k − b` distinct peers, so
//! `β < 1/2` guarantees `k − 2b ≥ 1` honest claims per wait and the whole
//! protocol is deadlock-free. The expected per-peer query cost is
//! `ℓ₁ + O(Σ_c received_c / p_c)` — `Õ(n/k + k)` for the paper's
//! parameters.

use super::decision_tree::DecisionTree;
use super::frequent::FrequencyTable;
use super::segment_msg::SegmentMsg;
use dr_core::{BitArray, Context, PeerId, Protocol, SegmentId, Segmentation};
use rand::Rng;

/// Parameter selection for the multi-cycle protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MultiCyclePlan {
    /// Sampled mode.
    Sampled {
        /// Cycle-1 segment count (a power of two ≥ 2).
        initial_segments: usize,
        /// Frequency threshold τ.
        threshold: usize,
        /// Total number of cycles (`log₂ initial_segments + 1`).
        cycles: u32,
    },
    /// Degenerate regime: query everything directly.
    Naive,
}

impl MultiCyclePlan {
    /// Chooses parameters for `n` bits, `k` peers, `b` Byzantine peers,
    /// falling back to naive when sampling cannot work (`β ≥ 1/2` or too
    /// few honest peers per segment).
    pub fn choose(n: usize, k: usize, b: usize) -> Self {
        if 2 * b >= k {
            return MultiCyclePlan::Naive;
        }
        let h = k - 2 * b;
        let tau = super::two_cycle::TwoCyclePlan::default_threshold(n, k);
        let p_max = (h / (2 * tau)).min(n);
        if p_max < 2 {
            return MultiCyclePlan::Naive;
        }
        // Largest power of two ≤ p_max.
        let p1 = 1usize << (usize::BITS - 1 - p_max.leading_zeros());
        MultiCyclePlan::Sampled {
            initial_segments: p1,
            threshold: tau,
            cycles: p1.trailing_zeros() + 1,
        }
    }
}

/// The multi-cycle randomized protocol of Theorem 3.12 (`β < 1/2`).
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams};
/// use dr_protocols::MultiCycleDownload;
/// use dr_sim::SimBuilder;
///
/// let (n, k, b) = (4096, 96, 8);
/// let params = ModelParams::builder(n, k)
///     .faults(FaultModel::Byzantine, b)
///     .build()?;
/// let sim = SimBuilder::new(params)
///     .seed(2)
///     .protocol(move |_| MultiCycleDownload::new(n, k, b))
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct MultiCycleDownload {
    n: usize,
    k: usize,
    b: usize,
    plan: MultiCyclePlan,
    /// Current cycle (1-based); claims for cycle `c` live at index `c−1`.
    cycle: u32,
    tables: Vec<FrequencyTable>,
    heard: Vec<Vec<bool>>,
    my_pick: Vec<Option<SegmentId>>,
    my_value: Vec<Option<BitArray>>,
    out: Option<BitArray>,
    fallback_segments: usize,
}

impl MultiCycleDownload {
    /// Creates an instance with automatically chosen parameters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `b >= k`.
    pub fn new(n: usize, k: usize, b: usize) -> Self {
        Self::with_plan(n, k, b, MultiCyclePlan::choose(n, k, b))
    }

    /// Creates an instance with an explicit plan (for experiments).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent plans (non-power-of-two segment count, more
    /// segments than bits, or a cycle count that does not match).
    pub fn with_plan(n: usize, k: usize, b: usize, plan: MultiCyclePlan) -> Self {
        assert!(k > 0, "need at least one peer");
        assert!(b < k, "fault budget must leave one nonfaulty peer");
        let cycles = match plan {
            MultiCyclePlan::Sampled {
                initial_segments,
                cycles,
                ..
            } => {
                assert!(initial_segments.is_power_of_two() && initial_segments >= 2);
                assert!(initial_segments <= n, "more segments than bits");
                assert_eq!(cycles, initial_segments.trailing_zeros() + 1);
                cycles as usize
            }
            MultiCyclePlan::Naive => 0,
        };
        MultiCycleDownload {
            n,
            k,
            b,
            plan,
            cycle: 1,
            tables: (0..cycles).map(|_| FrequencyTable::new()).collect(),
            heard: (0..cycles).map(|_| vec![false; k]).collect(),
            my_pick: vec![None; cycles],
            my_value: vec![None; cycles],
            out: None,
            fallback_segments: 0,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> MultiCyclePlan {
        self.plan
    }

    /// Chaos-campaign invariant envelope, aware of the plan
    /// [`MultiCyclePlan::choose`] selects. Sampled cycles halve the
    /// segment count, so the worst-case sampled total is
    /// `Σ_c n/p_c < 2n·(1/p₁)·p₁ = 2n` plus fallback slack; time grows
    /// with the cycle count.
    pub fn cost_envelope(n: usize, k: usize, b: usize) -> crate::CostEnvelope {
        match MultiCyclePlan::choose(n, k, b) {
            MultiCyclePlan::Naive => crate::CostEnvelope {
                q_max: n as u64 + 8,
                t_base: 24.0,
                t_per_release: 4.0,
                t_per_retry: 0.0,
                t_link_slack: 0.0,
            },
            MultiCyclePlan::Sampled { cycles, .. } => crate::CostEnvelope {
                q_max: 2 * n as u64 + 16,
                t_base: 16.0 + 8.0 * cycles as f64,
                t_per_release: 4.0,
                t_per_retry: 0.0,
                t_link_slack: 0.0,
            },
        }
    }

    /// Number of half-segments resolved by direct queries (0 w.h.p.).
    pub fn fallback_segments(&self) -> usize {
        self.fallback_segments
    }

    fn plan_parts(&self) -> (usize, usize, u32) {
        match self.plan {
            MultiCyclePlan::Sampled {
                initial_segments,
                threshold,
                cycles,
            } => (initial_segments, threshold, cycles),
            MultiCyclePlan::Naive => unreachable!("sampled mode only"),
        }
    }

    /// Segmentation used in the given 1-based cycle.
    fn segmentation(&self, cycle: u32) -> Segmentation {
        let (p1, _, _) = self.plan_parts();
        Segmentation::new(self.n, p1 >> (cycle - 1))
    }

    /// Resolves one cycle-`c` segment from the cycle-`c` claim table,
    /// using direct queries as the low-probability fallback.
    fn resolve_child(
        &mut self,
        cycle: u32,
        child: SegmentId,
        ctx: &mut dyn Context<SegmentMsg>,
    ) -> BitArray {
        if self.my_pick[cycle as usize - 1] == Some(child) {
            return self.my_value[cycle as usize - 1]
                .clone()
                .expect("own pick resolved in its cycle");
        }
        let (_, tau, _) = self.plan_parts();
        let seg = self.segmentation(cycle);
        let range = seg.range(child);
        let frequent = self.tables[cycle as usize - 1].frequent(child, tau);
        let tree = DecisionTree::build(&frequent);
        match tree.determine(range.clone(), &mut |j| ctx.query(j)) {
            Some(bits) if bits.len() == range.len() => bits,
            _ => {
                self.fallback_segments += 1;
                ctx.query_range(range)
            }
        }
    }

    fn heard_count(&self, cycle: u32) -> usize {
        self.heard[cycle as usize - 1]
            .iter()
            .filter(|&&h| h)
            .count()
    }

    /// Advances through every cycle whose wait condition is satisfied.
    fn advance(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        let (_, _, cycles) = self.plan_parts();
        while self.out.is_none()
            && self.cycle < cycles
            && self.heard_count(self.cycle) >= self.k - self.b
        {
            let next = self.cycle + 1;
            let seg_next = self.segmentation(next);
            let pick = SegmentId(ctx.rng().gen_range(0..seg_next.count()));
            let left = SegmentId(2 * pick.index());
            let right = SegmentId(2 * pick.index() + 1);
            let mut bits = self.resolve_child(self.cycle, left, ctx);
            let right_bits = self.resolve_child(self.cycle, right, ctx);
            let mut joined = BitArray::zeros(bits.len() + right_bits.len());
            joined.write_at(0, &bits);
            joined.write_at(bits.len(), &right_bits);
            bits = joined;
            debug_assert_eq!(bits.len(), seg_next.len_of(pick));
            self.cycle = next;
            self.my_pick[next as usize - 1] = Some(pick);
            self.my_value[next as usize - 1] = Some(bits.clone());
            if next == cycles {
                // The final segment is the whole input; no one consumes
                // cycle-C claims, so terminate without broadcasting.
                self.out = Some(bits);
            } else {
                self.tables[next as usize - 1].record(ctx.me(), pick, bits.clone());
                self.heard[next as usize - 1][ctx.me().index()] = true;
                ctx.broadcast(SegmentMsg {
                    cycle: next,
                    segment: pick,
                    bits,
                });
            }
        }
    }
}

impl Protocol for MultiCycleDownload {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        if matches!(self.plan, MultiCyclePlan::Naive) {
            self.out = Some(ctx.query_range(0..self.n));
            return;
        }
        let seg = self.segmentation(1);
        let pick = SegmentId(ctx.rng().gen_range(0..seg.count()));
        let bits = ctx.query_range(seg.range(pick));
        self.my_pick[0] = Some(pick);
        self.my_value[0] = Some(bits.clone());
        self.tables[0].record(ctx.me(), pick, bits.clone());
        self.heard[0][ctx.me().index()] = true;
        ctx.broadcast(SegmentMsg {
            cycle: 1,
            segment: pick,
            bits,
        });
        self.advance(ctx);
    }

    fn on_message(&mut self, from: PeerId, msg: SegmentMsg, ctx: &mut dyn Context<SegmentMsg>) {
        if self.out.is_some() || matches!(self.plan, MultiCyclePlan::Naive) {
            return;
        }
        let (_, _, cycles) = self.plan_parts();
        let c = msg.cycle as usize;
        if (1..cycles as usize).contains(&c) {
            if !self.heard[c - 1][from.index()] {
                self.heard[c - 1][from.index()] = true;
                let seg = self.segmentation(msg.cycle);
                if msg.segment.index() < seg.count() && msg.bits.len() == seg.len_of(msg.segment) {
                    self.tables[c - 1].record(from, msg.segment, msg.bits);
                }
            }
            self.advance(ctx);
        }
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::strategies::{CollusionGroup, RandomNoise};
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{RunReport, SilentAgent, SimBuilder};

    fn params(n: usize, k: usize, b: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b)
            .build()
            .unwrap()
    }

    fn run_benign(seed: u64, n: usize, k: usize, b: usize) -> (RunReport, BitArray) {
        let sim = SimBuilder::new(params(n, k, b))
            .seed(seed)
            .protocol(move |_| MultiCycleDownload::new(n, k, b))
            .build();
        let input = sim.input().clone();
        (sim.run().unwrap(), input)
    }

    #[test]
    fn plan_initial_segments_is_power_of_two() {
        match MultiCyclePlan::choose(1 << 16, 512, 64) {
            MultiCyclePlan::Sampled {
                initial_segments,
                cycles,
                ..
            } => {
                assert!(initial_segments.is_power_of_two());
                assert_eq!(cycles, initial_segments.trailing_zeros() + 1);
            }
            MultiCyclePlan::Naive => panic!("expected sampled plan"),
        }
    }

    #[test]
    fn plan_majority_faults_degrades_to_naive() {
        assert_eq!(
            MultiCyclePlan::choose(1 << 16, 64, 32),
            MultiCyclePlan::Naive
        );
    }

    #[test]
    fn all_honest_run_completes_correctly() {
        let (n, k) = (1 << 14, 160);
        let (report, input) = run_benign(1, n, k, 0);
        report.verify_downloads(&input).unwrap();
        assert!(
            report.max_nonfaulty_queries < (n / 2) as u64,
            "Q = {}",
            report.max_nonfaulty_queries
        );
    }

    #[test]
    fn byzantine_mix_is_tolerated() {
        let (n, k, b) = (1 << 13, 128, 16);
        let plan = MultiCyclePlan::choose(n, k, b);
        let p1 = match plan {
            MultiCyclePlan::Sampled {
                initial_segments, ..
            } => initial_segments,
            MultiCyclePlan::Naive => panic!("expected sampled"),
        };
        let seg = Segmentation::new(n, p1);
        let mut builder = SimBuilder::new(params(n, k, b))
            .seed(2)
            .protocol(move |_| MultiCycleDownload::new(n, k, b));
        for i in 0..6 {
            builder = builder.byzantine(PeerId(i), SilentAgent::new());
        }
        for i in 6..11 {
            builder = builder.byzantine(PeerId(i), CollusionGroup::new(seg, SegmentId(0), 3));
        }
        for i in 11..16 {
            builder = builder.byzantine(PeerId(i), RandomNoise::new(seg));
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn reproducible_under_same_seed() {
        let (r1, _) = run_benign(7, 1 << 12, 96, 8);
        let (r2, _) = run_benign(7, 1 << 12, 96, 8);
        assert_eq!(r1.query_counts, r2.query_counts);
        assert_eq!(r1.virtual_time_ticks, r2.virtual_time_ticks);
    }

    #[test]
    fn naive_fallback_for_small_networks() {
        let (report, input) = run_benign(3, 512, 8, 2);
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.max_nonfaulty_queries, 512);
    }
}
