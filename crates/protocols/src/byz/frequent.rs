//! τ-frequent strings (§3.4.1).
//!
//! In the randomized Byzantine protocols, peers broadcast
//! `(segment, string)` claims. Byzantine peers can flood arbitrary strings,
//! so a receiver only considers strings it received from at least `τ`
//! *distinct* senders — the τ-frequent strings. Since each peer sends at
//! most one claim per segment per cycle, at most `k/τ` distinct strings can
//! become frequent in total, which bounds the decision-tree work no matter
//! what the adversary injects.

use dr_core::collections::{DetMap, DetSet};
use dr_core::{BitArray, PeerId, SegmentId};

/// Accumulates `(segment, string)` claims by sender and extracts the
/// τ-frequent strings per segment.
///
/// Duplicate claims by the same sender for the same segment are ignored
/// (first claim wins), so a single Byzantine peer cannot inflate a
/// string's frequency.
///
/// # Examples
///
/// ```
/// use dr_core::{BitArray, PeerId, SegmentId};
/// use dr_protocols::byz::FrequencyTable;
///
/// let mut table = FrequencyTable::new();
/// let s = BitArray::from_bools(&[true, false]);
/// table.record(PeerId(0), SegmentId(3), s.clone());
/// table.record(PeerId(1), SegmentId(3), s.clone());
/// table.record(PeerId(1), SegmentId(3), BitArray::from_bools(&[false, false])); // dup sender
/// assert_eq!(table.frequent(SegmentId(3), 2), vec![s]);
/// assert!(table.frequent(SegmentId(3), 3).is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct FrequencyTable {
    /// segment → (string → distinct-sender count), ordered so that
    /// iteration (and therefore [`frequent`](FrequencyTable::frequent))
    /// never depends on insertion or hash order.
    counts: DetMap<SegmentId, DetMap<BitArray, usize>>,
    /// (sender, segment) pairs already recorded.
    seen: DetSet<(PeerId, SegmentId)>,
    senders: DetMap<PeerId, usize>,
}

impl FrequencyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FrequencyTable::default()
    }

    /// Records a claim. Returns `true` if this was the sender's first
    /// claim for the segment (and was therefore counted).
    pub fn record(&mut self, sender: PeerId, segment: SegmentId, string: BitArray) -> bool {
        if !self.seen.insert((sender, segment)) {
            return false;
        }
        *self
            .counts
            .entry(segment)
            .or_default()
            .entry(string)
            .or_insert(0) += 1;
        *self.senders.entry(sender).or_insert(0) += 1;
        true
    }

    /// The `Freq(S, τ)` operator of the paper: every string for `segment`
    /// recorded by at least `threshold` distinct senders, in ascending
    /// bit-lexicographic order. The ordered map already iterates in
    /// `BitArray`'s lexicographic `Ord` — the same order the old explicit
    /// `Vec<bool>` sort produced — so no re-sort is needed.
    pub fn frequent(&self, segment: SegmentId, threshold: usize) -> Vec<BitArray> {
        self.counts
            .get(&segment)
            .map(|m| {
                m.iter()
                    .filter(|(_, &c)| c >= threshold)
                    .map(|(s, _)| s.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of distinct strings recorded for `segment` (frequent or not).
    pub fn distinct(&self, segment: SegmentId) -> usize {
        self.counts.get(&segment).map_or(0, |m| m.len())
    }

    /// Total number of claims recorded for `segment` (the paper's `R_i`).
    pub fn received(&self, segment: SegmentId) -> usize {
        self.counts.get(&segment).map_or(0, |m| m.values().sum())
    }

    /// Number of distinct peers that have made at least one claim.
    pub fn distinct_senders(&self) -> usize {
        self.senders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: &[bool]) -> BitArray {
        BitArray::from_bools(bits)
    }

    #[test]
    fn counts_distinct_senders_only() {
        let mut t = FrequencyTable::new();
        let a = s(&[true]);
        assert!(t.record(PeerId(0), SegmentId(0), a.clone()));
        assert!(!t.record(PeerId(0), SegmentId(0), a.clone()));
        assert!(t.record(PeerId(1), SegmentId(0), a.clone()));
        assert_eq!(t.received(SegmentId(0)), 2);
        assert_eq!(t.frequent(SegmentId(0), 2), vec![a]);
    }

    #[test]
    fn equivocation_across_segments_is_allowed() {
        // The same sender may claim different segments (multi-cycle use).
        let mut t = FrequencyTable::new();
        assert!(t.record(PeerId(0), SegmentId(0), s(&[true])));
        assert!(t.record(PeerId(0), SegmentId(1), s(&[false])));
        assert_eq!(t.distinct_senders(), 1);
    }

    #[test]
    fn threshold_filters_rare_strings() {
        let mut t = FrequencyTable::new();
        for p in 0..5 {
            t.record(PeerId(p), SegmentId(2), s(&[true, true]));
        }
        for p in 5..7 {
            t.record(PeerId(p), SegmentId(2), s(&[false, false]));
        }
        assert_eq!(t.frequent(SegmentId(2), 3), vec![s(&[true, true])]);
        let both = t.frequent(SegmentId(2), 2);
        assert_eq!(both.len(), 2);
        assert_eq!(t.distinct(SegmentId(2)), 2);
    }

    #[test]
    fn spam_bound_holds() {
        // b Byzantine senders can create at most b/τ frequent fake strings.
        let mut t = FrequencyTable::new();
        let tau = 3;
        let b = 10;
        // Adversary coordinates groups of τ senders per fake string.
        for (i, p) in (0..b).enumerate() {
            let fake = s(&[i / tau == 0, i / tau == 1, i / tau == 2, true]);
            t.record(PeerId(p), SegmentId(9), fake);
        }
        let frequent = t.frequent(SegmentId(9), tau);
        assert!(frequent.len() <= b / tau);
    }

    #[test]
    fn empty_segment_has_no_frequent_strings() {
        let t = FrequencyTable::new();
        assert!(t.frequent(SegmentId(4), 1).is_empty());
        assert_eq!(t.received(SegmentId(4)), 0);
    }
}
