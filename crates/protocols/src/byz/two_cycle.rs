//! The 2-cycle randomized Byzantine Download protocol (Protocol 4, §3.4.2,
//! Theorem 3.7).
//!
//! The input is split into `p` segments of length `ℓ ≈ n/p`. Each peer
//! samples one segment uniformly at random, queries it completely, and
//! broadcasts `⟨segment, string⟩`. After hearing claims from `k − b` peers
//! (waiting for more risks deadlock; at least `k − 2b` of them are honest,
//! which is why the protocol needs `β < 1/2`), the peer resolves every
//! other segment by building a decision tree over the claims received from
//! at least `τ` distinct senders (τ-frequent strings) and walking it with
//! direct source queries.
//!
//! Parameters are chosen so that, w.h.p., every segment was sampled by at
//! least `τ` of the honest peers each receiver heard: with
//! `h = k − 2b` guaranteed honest claims and `p ≤ h/(2τ)` segments, the
//! expected per-segment honest count is at least `2τ` and Chernoff gives
//! the high-probability bound (Claim 5). Byzantine claims never corrupt the
//! output — a wrong leaf is eliminated by the separating-index queries —
//! they only add `O(received/τ)` extra queries.
//!
//! Per-peer cost: `Q = ℓ + O(k)` which for the paper's parameter choices is
//! `Õ(n/(γk) + k)`; when the fallback regime applies (tiny `k`, huge `β`,
//! or `n` too small) the protocol degrades to the naive `Q = n`, mirroring
//! the paper's case analysis.

use super::decision_tree::DecisionTree;
use super::frequent::FrequencyTable;
use super::segment_msg::SegmentMsg;
use dr_core::{BitArray, Context, PartialArray, PeerId, Protocol, SegmentId, Segmentation};
use rand::Rng;

/// Parameter selection for the 2-cycle protocol (the paper's three-case
/// analysis, reconstructed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TwoCyclePlan {
    /// Sampled mode: `p` segments, threshold `τ`.
    Sampled {
        /// Number of segments.
        segments: usize,
        /// Frequency threshold τ.
        threshold: usize,
    },
    /// Degenerate regime: query the whole input directly (Case 3).
    Naive,
}

impl TwoCyclePlan {
    /// Chooses parameters for `n` bits, `k` peers, `b` Byzantine peers.
    ///
    /// `h = k − 2b` honest claims are guaranteed among any `k − b` heard;
    /// τ is logarithmic in the instance size and `p = h/(2τ)` segments
    /// keep every segment τ-covered w.h.p. Falls back to naive when the
    /// arithmetic leaves fewer than two segments (or `β ≥ 1/2`).
    pub fn choose(n: usize, k: usize, b: usize) -> Self {
        if 2 * b >= k {
            return TwoCyclePlan::Naive;
        }
        let h = k - 2 * b;
        let tau = Self::default_threshold(n, k);
        let p = (h / (2 * tau)).min(n);
        if p < 2 {
            TwoCyclePlan::Naive
        } else {
            TwoCyclePlan::Sampled {
                segments: p,
                threshold: tau,
            }
        }
    }

    /// The default frequency threshold `τ = max(2, ⌈ln(nk)⌉)`.
    pub fn default_threshold(n: usize, k: usize) -> usize {
        (((n.max(2) * k.max(2)) as f64).ln().ceil() as usize).max(2)
    }
}

/// The 2-cycle randomized protocol of Theorem 3.7 (`β < 1/2`).
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams};
/// use dr_protocols::TwoCycleDownload;
/// use dr_sim::SimBuilder;
///
/// let (n, k, b) = (4096, 256, 32);
/// let params = ModelParams::builder(n, k)
///     .faults(FaultModel::Byzantine, b)
///     .build()?;
/// let sim = SimBuilder::new(params)
///     .seed(1)
///     .protocol(move |_| TwoCycleDownload::new(n, k, b))
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// // Far below the naive n queries.
/// assert!(report.max_nonfaulty_queries < n as u64 / 2);
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct TwoCycleDownload {
    n: usize,
    k: usize,
    b: usize,
    plan: TwoCyclePlan,
    seg: Option<Segmentation>,
    my_pick: Option<SegmentId>,
    my_bits: Option<BitArray>,
    table: FrequencyTable,
    heard: Vec<bool>,
    out: Option<BitArray>,
    /// Segments with no τ-frequent string, resolved by direct queries
    /// (should be empty w.h.p.; exposed for experiments).
    fallback_segments: usize,
}

impl TwoCycleDownload {
    /// Creates an instance with automatically chosen parameters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `b >= k`.
    pub fn new(n: usize, k: usize, b: usize) -> Self {
        Self::with_plan(n, k, b, TwoCyclePlan::choose(n, k, b))
    }

    /// Creates an instance with an explicit parameter plan (used by the
    /// experiment harness to sweep `p` and `τ`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `b >= k`, or a sampled plan has fewer than two
    /// segments or more segments than bits.
    pub fn with_plan(n: usize, k: usize, b: usize, plan: TwoCyclePlan) -> Self {
        assert!(k > 0, "need at least one peer");
        assert!(b < k, "fault budget must leave one nonfaulty peer");
        let seg = match plan {
            TwoCyclePlan::Sampled { segments, .. } => {
                assert!(segments >= 2 && segments <= n, "invalid segment count");
                Some(Segmentation::new(n, segments))
            }
            TwoCyclePlan::Naive => None,
        };
        TwoCycleDownload {
            n,
            k,
            b,
            plan,
            seg,
            my_pick: None,
            my_bits: None,
            table: FrequencyTable::new(),
            heard: vec![false; k],
            out: None,
            fallback_segments: 0,
        }
    }

    /// The plan in force (naive fallback or sampled parameters).
    pub fn plan(&self) -> TwoCyclePlan {
        self.plan
    }

    /// Chaos-campaign invariant envelope, aware of the plan
    /// [`TwoCyclePlan::choose`] selects for `(n, k, b)`. Under the naive
    /// plan every peer queries exactly `n` bits. Under a sampled plan the
    /// per-peer cost is `2ℓ` sampled bits plus, for each unresolved
    /// segment, an `ℓ`-bit direct fallback — zero w.h.p. but legal, so the
    /// sound cap is `2ℓ + n`; it still catches runaway re-querying.
    pub fn cost_envelope(n: usize, k: usize, b: usize) -> crate::CostEnvelope {
        let q_max = match TwoCyclePlan::choose(n, k, b) {
            TwoCyclePlan::Naive => n as u64 + 8,
            TwoCyclePlan::Sampled { segments, .. } => {
                let ell = n.div_ceil(segments) as u64;
                2 * ell + n as u64 + 16
            }
        };
        crate::CostEnvelope {
            q_max,
            t_base: 24.0,
            t_per_release: 4.0,
            t_per_retry: 0.0,
            t_link_slack: 0.0,
        }
    }

    /// Number of segments resolved by the direct-query fallback (0 w.h.p.).
    pub fn fallback_segments(&self) -> usize {
        self.fallback_segments
    }

    fn threshold(&self) -> usize {
        match self.plan {
            TwoCyclePlan::Sampled { threshold, .. } => threshold,
            TwoCyclePlan::Naive => 1,
        }
    }

    fn heard_count(&self) -> usize {
        self.heard.iter().filter(|&&h| h).count()
    }

    /// Cycle 2: resolve every segment via decision trees and terminate.
    fn determine_all(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        let seg = self.seg.expect("sampled mode");
        let tau = self.threshold();
        let mut acc = PartialArray::new(self.n);
        for id in seg.ids() {
            let range = seg.range(id);
            if Some(id) == self.my_pick {
                acc.learn_slice(
                    range.start,
                    self.my_bits.as_ref().expect("queried own pick"),
                );
                continue;
            }
            let frequent = self.table.frequent(id, tau);
            let tree = DecisionTree::build(&frequent);
            let resolved = tree.determine(range.clone(), &mut |j| ctx.query(j));
            match resolved {
                Some(bits) if bits.len() == range.len() => {
                    acc.learn_slice(range.start, &bits);
                }
                _ => {
                    // No τ-frequent string (low-probability event): fall
                    // back to querying the segment directly.
                    self.fallback_segments += 1;
                    let bits = ctx.query_range(range.clone());
                    acc.learn_slice(range.start, &bits);
                }
            }
        }
        self.out = Some(acc.into_complete());
    }

    fn maybe_advance(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        if self.out.is_none() && self.heard_count() >= self.k - self.b {
            self.determine_all(ctx);
        }
    }
}

impl Protocol for TwoCycleDownload {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        match self.plan {
            TwoCyclePlan::Naive => {
                self.out = Some(ctx.query_range(0..self.n));
            }
            TwoCyclePlan::Sampled { segments, .. } => {
                let pick = SegmentId(ctx.rng().gen_range(0..segments));
                let seg = self.seg.expect("sampled mode");
                let bits = ctx.query_range(seg.range(pick));
                self.my_pick = Some(pick);
                self.my_bits = Some(bits.clone());
                self.table.record(ctx.me(), pick, bits.clone());
                self.heard[ctx.me().index()] = true;
                ctx.broadcast(SegmentMsg {
                    cycle: 1,
                    segment: pick,
                    bits,
                });
                self.maybe_advance(ctx);
            }
        }
    }

    fn on_message(&mut self, from: PeerId, msg: SegmentMsg, ctx: &mut dyn Context<SegmentMsg>) {
        if self.out.is_some() || self.seg.is_none() {
            return;
        }
        let seg = self.seg.expect("sampled mode");
        // Any first message from a sender counts toward progress; only
        // well-formed cycle-1 claims enter the frequency table.
        if !self.heard[from.index()] {
            self.heard[from.index()] = true;
            if msg.cycle == 1
                && msg.segment.index() < seg.count()
                && msg.bits.len() == seg.len_of(msg.segment)
            {
                self.table.record(from, msg.segment, msg.bits);
            }
        }
        self.maybe_advance(ctx);
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byz::strategies::{CollusionGroup, Equivocator, RandomNoise};
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{RunReport, SilentAgent, SimBuilder};

    fn params(n: usize, k: usize, b: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b)
            .build()
            .unwrap()
    }

    fn run_benign(seed: u64, n: usize, k: usize, b: usize) -> (RunReport, BitArray) {
        let sim = SimBuilder::new(params(n, k, b))
            .seed(seed)
            .protocol(move |_| TwoCycleDownload::new(n, k, b))
            .build();
        let input = sim.input().clone();
        (sim.run().unwrap(), input)
    }

    #[test]
    fn plan_picks_naive_for_majority_faults() {
        assert_eq!(TwoCyclePlan::choose(1000, 10, 5), TwoCyclePlan::Naive);
        assert_eq!(TwoCyclePlan::choose(1000, 4, 1), TwoCyclePlan::Naive);
    }

    #[test]
    fn plan_samples_for_large_networks() {
        match TwoCyclePlan::choose(1 << 16, 512, 64) {
            TwoCyclePlan::Sampled {
                segments,
                threshold,
            } => {
                assert!(segments >= 2);
                assert!(threshold >= 2);
                // p ≤ h / (2τ)
                assert!(segments <= (512 - 128) / (2 * threshold));
            }
            TwoCyclePlan::Naive => panic!("expected sampled plan"),
        }
    }

    #[test]
    fn all_honest_run_is_cheap_and_correct() {
        let (n, k) = (1 << 14, 128);
        let plan = TwoCyclePlan::choose(n, k, 0);
        let p = match plan {
            TwoCyclePlan::Sampled { segments, .. } => segments,
            TwoCyclePlan::Naive => panic!("expected sampled"),
        };
        let (report, input) = run_benign(1, n, k, 0);
        report.verify_downloads(&input).unwrap();
        // Structural bound of Theorem 3.7: Q ≤ ℓ + O(k).
        let bound = (n / p + 4 * k) as u64;
        assert!(
            report.max_nonfaulty_queries <= bound,
            "Q = {} exceeds ℓ + O(k) = {bound}",
            report.max_nonfaulty_queries
        );
        assert!(report.max_nonfaulty_queries < n as u64 / 2);
    }

    #[test]
    fn silent_byzantine_minority_is_tolerated() {
        let (n, k, b) = (1 << 13, 96, 12);
        let mut builder = SimBuilder::new(params(n, k, b))
            .seed(2)
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        for i in 0..b {
            builder = builder.byzantine(PeerId(i), SilentAgent::new());
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn equivocators_and_colluders_never_corrupt() {
        let (n, k, b) = (1 << 13, 96, 12);
        let plan = TwoCyclePlan::choose(n, k, b);
        let seg = match plan {
            TwoCyclePlan::Sampled { segments, .. } => Segmentation::new(n, segments),
            TwoCyclePlan::Naive => panic!("expected sampled"),
        };
        let mut builder = SimBuilder::new(params(n, k, b))
            .seed(3)
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        // 4 equivocators, 4 colluders on one fake string, 4 noise makers.
        for i in 0..4 {
            builder = builder.byzantine(PeerId(i), Equivocator::new(seg, SegmentId(0)));
        }
        for i in 4..8 {
            builder = builder.byzantine(PeerId(i), CollusionGroup::new(seg, SegmentId(1), 99));
        }
        for i in 8..12 {
            builder = builder.byzantine(PeerId(i), RandomNoise::new(seg));
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn colluders_above_threshold_only_cost_queries() {
        // A collusion group of size ≥ τ injects a τ-frequent fake string;
        // output must still be correct.
        let (n, k, b) = (1 << 13, 128, 24);
        let plan = TwoCyclePlan::choose(n, k, b);
        let (seg, tau) = match plan {
            TwoCyclePlan::Sampled {
                segments,
                threshold,
            } => (Segmentation::new(n, segments), threshold),
            TwoCyclePlan::Naive => panic!("expected sampled"),
        };
        assert!(b >= tau, "test needs enough colluders to cross τ");
        let mut builder = SimBuilder::new(params(n, k, b))
            .seed(4)
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        for i in 0..b {
            builder = builder.byzantine(PeerId(i), CollusionGroup::new(seg, SegmentId(0), 5));
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn naive_plan_matches_naive_cost() {
        let (report, input) = run_benign(5, 256, 6, 2);
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.max_nonfaulty_queries, 256);
    }

    #[test]
    fn seeds_are_reproducible() {
        let (r1, _) = run_benign(9, 4096, 64, 8);
        let (r2, _) = run_benign(9, 4096, 64, 8);
        assert_eq!(r1.query_counts, r2.query_counts);
    }
}
