//! A library of Byzantine behaviours for the randomized protocols.
//!
//! Byzantine peers "can deviate from the protocol in arbitrary ways"
//! (§1.2). These behaviours realize the attack patterns that actually
//! stress the §3.4 machinery: staying silent, equivocating different
//! strings to different receivers, and coordinated groups pushing the same
//! fake string past the frequency threshold τ to inflate decision trees.
//!
//! All behaviours speak [`SegmentMsg`], the message type of the
//! randomized protocols, and are usable via
//! [`SimBuilder::byzantine`](dr_sim::SimBuilder::byzantine).

use super::segment_msg::SegmentMsg;
use dr_core::{BitArray, Context, PeerId, Protocol, SegmentId, Segmentation};
use rand::Rng;

/// Sends, to every peer, a uniformly random string for a random segment —
/// unfocused noise that the frequency threshold should filter entirely.
#[derive(Debug)]
pub struct RandomNoise {
    seg: Segmentation,
}

impl RandomNoise {
    /// Creates the behaviour for the given cycle-1 segmentation.
    pub fn new(seg: Segmentation) -> Self {
        RandomNoise { seg }
    }
}

impl Protocol for RandomNoise {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        let pick = ctx.rng().next_u64() as usize % self.seg.count();
        let len = self.seg.len_of(SegmentId(pick));
        let bits = {
            let rng = ctx.rng();
            BitArray::from_fn(len, |_| rng.gen())
        };
        ctx.broadcast(SegmentMsg {
            cycle: 1,
            segment: SegmentId(pick),
            bits,
        });
    }

    fn on_message(&mut self, _f: PeerId, _m: SegmentMsg, _c: &mut dyn Context<SegmentMsg>) {}

    fn output(&self) -> Option<&BitArray> {
        None
    }
}

/// Claims the segment it "queried" but with every bit flipped, sending
/// *different* corruptions to different peers (equivocation).
#[derive(Debug)]
pub struct Equivocator {
    seg: Segmentation,
    /// Segment this peer pretends to have sampled.
    pick: SegmentId,
}

impl Equivocator {
    /// Creates the behaviour, pretending to sample `pick`.
    pub fn new(seg: Segmentation, pick: SegmentId) -> Self {
        Equivocator { seg, pick }
    }
}

impl Protocol for Equivocator {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        let range = self.seg.range(self.pick);
        let truth = ctx.query_range(range);
        let k = ctx.num_peers();
        let me = ctx.me();
        for p in 0..k {
            if p == me.index() {
                continue;
            }
            // A per-receiver corruption: flip bit (p mod len).
            let mut bits = truth.clone();
            if !bits.is_empty() {
                bits.flip(p % bits.len());
            }
            ctx.send(
                PeerId(p),
                SegmentMsg {
                    cycle: 1,
                    segment: self.pick,
                    bits,
                },
            );
        }
    }

    fn on_message(&mut self, _f: PeerId, _m: SegmentMsg, _c: &mut dyn Context<SegmentMsg>) {}

    fn output(&self) -> Option<&BitArray> {
        None
    }
}

/// A member of a coordinated group that pushes one agreed-upon fake string
/// for one segment, so the fake becomes τ-frequent at every receiver when
/// the group has at least τ members. This forces extra decision-tree
/// queries (but never wrong outputs).
#[derive(Debug)]
pub struct CollusionGroup {
    seg: Segmentation,
    target: SegmentId,
    /// Group identifier; all members derive the same fake string from it.
    group_seed: u64,
}

impl CollusionGroup {
    /// Creates a member of the group attacking `target`.
    pub fn new(seg: Segmentation, target: SegmentId, group_seed: u64) -> Self {
        CollusionGroup {
            seg,
            target,
            group_seed,
        }
    }

    /// The group's agreed-upon fake string (a keyed pseudo-random pattern,
    /// identical for all members).
    pub fn fake_string(&self) -> BitArray {
        let len = self.seg.len_of(self.target);
        let seed = self.group_seed;
        BitArray::from_fn(len, |i| {
            (seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64))
            .is_multiple_of(3)
        })
    }
}

impl Protocol for CollusionGroup {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        ctx.broadcast(SegmentMsg {
            cycle: 1,
            segment: self.target,
            bits: self.fake_string(),
        });
    }

    fn on_message(&mut self, _f: PeerId, _m: SegmentMsg, _c: &mut dyn Context<SegmentMsg>) {}

    fn output(&self) -> Option<&BitArray> {
        None
    }
}

/// Crash-mimicking behaviour: queries and claims its segment honestly but
/// delivers the claim to only the first `reach` peers, then goes silent —
/// the Byzantine analogue of a mid-broadcast crash, designed to skew
/// which peers see the claim (and stress the `k − b` wait thresholds).
#[derive(Debug)]
pub struct HalfBroadcast {
    seg: Segmentation,
    pick: SegmentId,
    reach: usize,
}

impl HalfBroadcast {
    /// Creates the behaviour, claiming `pick` to the first `reach` peers
    /// only.
    pub fn new(seg: Segmentation, pick: SegmentId, reach: usize) -> Self {
        HalfBroadcast { seg, pick, reach }
    }
}

impl Protocol for HalfBroadcast {
    type Msg = SegmentMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SegmentMsg>) {
        let bits = ctx.query_range(self.seg.range(self.pick));
        let me = ctx.me();
        // One message value, shared-buffer-cloned per recipient.
        let msg = SegmentMsg {
            cycle: 1,
            segment: self.pick,
            bits,
        };
        let mut sent = 0;
        for p in 0..ctx.num_peers() {
            if p == me.index() {
                continue;
            }
            if sent >= self.reach {
                break;
            }
            ctx.send(PeerId(p), msg.clone());
            sent += 1;
        }
    }

    fn on_message(&mut self, _f: PeerId, _m: SegmentMsg, _c: &mut dyn Context<SegmentMsg>) {}

    fn output(&self) -> Option<&BitArray> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collusion_members_agree_on_fake() {
        let seg = Segmentation::new(64, 4);
        let a = CollusionGroup::new(seg, SegmentId(1), 7);
        let b = CollusionGroup::new(seg, SegmentId(1), 7);
        assert_eq!(a.fake_string(), b.fake_string());
        let c = CollusionGroup::new(seg, SegmentId(1), 8);
        assert_ne!(a.fake_string(), c.fake_string());
    }

    #[test]
    fn half_broadcast_is_tolerated_by_two_cycle() {
        use crate::TwoCycleDownload;
        use dr_core::{FaultModel, ModelParams};
        use dr_sim::SimBuilder;

        let (n, k, b) = (1usize << 13, 96usize, 10usize);
        let seg = Segmentation::new(n, 4);
        let params = ModelParams::builder(n, k)
            .faults(FaultModel::Byzantine, b)
            .build()
            .unwrap();
        let mut builder = SimBuilder::new(params)
            .seed(8)
            .protocol(move |_| TwoCycleDownload::new(n, k, b));
        for i in 0..b {
            builder =
                builder.byzantine(PeerId(i), HalfBroadcast::new(seg, SegmentId(i % 4), k / 2));
        }
        let sim = builder.build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
    }
}
