//! The naive Download protocol: query everything.
//!
//! Every peer queries all `n` bits directly and terminates without any
//! communication. This is the trivial upper bound (`Q = n`) that works for
//! any number of faults of any kind — and, by Theorem 3.1, the *only*
//! deterministic option once `β ≥ 1/2` under Byzantine faults.

use dr_core::{BitArray, Context, PeerId, Protocol, ProtocolMessage};

/// A message type for protocols that never communicate.
#[derive(Debug, Clone)]
pub enum NoMessage {}

impl ProtocolMessage for NoMessage {
    fn bit_len(&self) -> usize {
        match *self {}
    }
}

/// The naive protocol: query all `n` bits on start, terminate immediately.
///
/// # Examples
///
/// ```
/// use dr_core::ModelParams;
/// use dr_protocols::NaiveDownload;
/// use dr_sim::SimBuilder;
///
/// let params = ModelParams::fault_free(128, 4)?;
/// let sim = SimBuilder::new(params)
///     .protocol(|_| NaiveDownload::new())
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// assert_eq!(report.max_nonfaulty_queries, 128);
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug, Default)]
pub struct NaiveDownload {
    out: Option<BitArray>,
}

impl NaiveDownload {
    /// Creates a naive downloader.
    pub fn new() -> Self {
        NaiveDownload { out: None }
    }
}

impl Protocol for NaiveDownload {
    type Msg = NoMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<NoMessage>) {
        let n = ctx.input_len();
        self.out = Some(ctx.query_range(0..n));
    }

    fn on_message(&mut self, _from: PeerId, msg: NoMessage, _ctx: &mut dyn Context<NoMessage>) {
        match msg {}
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::ModelParams;
    use dr_sim::SimBuilder;

    #[test]
    fn naive_downloads_everything() {
        let params = ModelParams::fault_free(200, 5).unwrap();
        let sim = SimBuilder::new(params)
            .seed(1)
            .protocol(|_| NaiveDownload::new())
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.max_nonfaulty_queries, 200);
        assert_eq!(report.messages_sent, 0);
    }

    #[test]
    fn naive_survives_max_crashes() {
        use dr_core::{FaultModel, PeerId};
        use dr_sim::{CrashPlan, StandardAdversary, UniformDelay};
        let params = ModelParams::builder(64, 4)
            .faults(FaultModel::Crash, 3)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(2)
            .protocol(|_| NaiveDownload::new())
            .adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event([PeerId(0), PeerId(1), PeerId(2)], 0),
            ))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.nonfaulty.len(), 1);
    }
}
