//! Download protocols for the Data Retrieval model.
//!
//! Every protocol of the paper as an event-driven state machine (see
//! [`dr_core::Protocol`]) plus the machinery they rest on:
//!
//! * crash-fault deterministic protocols — [`SingleCrashDownload`]
//!   (Algorithm 1) and [`CrashMultiDownload`] (Algorithm 2, any `β < 1`);
//! * Byzantine-minority protocols — the deterministic
//!   [`CommitteeDownload`] and the randomized [`TwoCycleDownload`] /
//!   [`MultiCycleDownload`] built on [`FrequencyTable`] and
//!   [`DecisionTree`];
//! * the [`lower_bound`] attacks making Theorems 3.1/3.2 executable;
//! * a [`byz::strategies`] library of Byzantine behaviours;
//! * the baselines everything is compared against ([`NaiveDownload`],
//!   [`BalancedDownload`]);
//! * per-protocol [`CostEnvelope`]s — paper-bound-shaped Q/T budgets the
//!   chaos campaign (`dr_bench::chaos`) checks after every run.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balanced;
pub mod byz;
pub mod crash;
mod envelope;
pub mod lower_bound;
mod naive;

pub use balanced::{BalancedDownload, Chunk};
pub use byz::{
    committee, in_committee, CommitteeDownload, DecisionTree, FrequencyTable, MultiCycleDownload,
    MultiCyclePlan, SegmentMsg, TwoCycleDownload, TwoCyclePlan, VoteBatch,
};
pub use crash::{owner, CrashMultiDownload, MultiCrashMsg, SingleCrashDownload, SingleCrashMsg};
pub use envelope::{CostEnvelope, EnvelopeViolation};
pub use lower_bound::{
    deterministic_attack, randomized_attack, AttackOutcome, FakeSourceAgent, RandomizedAttackStats,
};
pub use naive::{NaiveDownload, NoMessage};
