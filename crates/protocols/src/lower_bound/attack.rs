//! The two-execution indistinguishability attacks of §3.1.

use super::fake_source::FakeSourceAgent;
use dr_core::{BitArray, ModelParams, PeerId, Protocol};
use dr_sim::SimBuilder;

/// Result of one [`deterministic_attack`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The target queried every bit; no attack exists (the protocol pays
    /// `Q = n`, as Theorem 3.1 says it must).
    FullyQueried {
        /// The target's query count (≥ n).
        queries: u64,
    },
    /// The target terminated with a wrong bit at `flipped_index` — the
    /// execution pair of Theorem 3.1 realized.
    Violated {
        /// The bit the adversary flipped (never queried by the target).
        flipped_index: usize,
        /// The target's query count (< n).
        queries: u64,
    },
    /// The target failed to terminate in the attack execution (it blocked
    /// forever on traffic the adversary withheld). Termination violations
    /// also contradict the Download specification.
    NoTermination {
        /// The bit the adversary flipped.
        flipped_index: usize,
    },
}

/// Runs the Theorem 3.1 construction against a *deterministic* protocol.
///
/// Execution `E_F` (reconnaissance): all peers honest, input all-zeros;
/// record which bits the `target` queries. If some bit `i*` was never
/// queried, run the attack execution `E′`: the real input flips `i*`,
/// every peer except the target is corrupted and *simulates* the honest
/// protocol against the fabricated all-zeros input
/// ([`FakeSourceAgent`]). Determinism makes `E′` indistinguishable from
/// `E_F` for the target, which therefore outputs 0 at `i*` — a wrong bit.
///
/// The coalition size is `k − 1` (`β = (k−1)/k ≥ 1/2` for every `k ≥ 2`),
/// the regime of Theorem 3.1.
///
/// # Panics
///
/// Panics if the simulation itself fails (event-limit) — not expected for
/// terminating protocols.
pub fn deterministic_attack<P, F>(
    n: usize,
    k: usize,
    target: PeerId,
    mut factory: F,
    seed: u64,
) -> AttackOutcome
where
    P: Protocol + 'static,
    F: FnMut(PeerId) -> P + Clone + Send + 'static,
{
    let zeros = BitArray::zeros(n);

    // Reconnaissance execution E_F: honest run on the all-zeros input.
    let recon_params = ModelParams::fault_free(n, k).expect("valid params");
    let recon = SimBuilder::new(recon_params)
        .seed(seed)
        .input(zeros.clone())
        .protocol(factory.clone())
        .track_query_indices()
        .build()
        .run()
        .expect("reconnaissance run failed");
    let indices = recon.query_indices.as_ref().expect("tracking enabled");
    let mut queried = vec![false; n];
    for &j in &indices[target.index()] {
        queried[j] = true;
    }
    let queries = recon.query_counts[target.index()];
    let flipped_index = match queried.iter().position(|&q| !q) {
        Some(i) => i,
        None => return AttackOutcome::FullyQueried { queries },
    };

    // Attack execution E′: input differs at the unqueried bit; everyone
    // else simulates the honest run on the fabricated input.
    let mut attacked_input = zeros.clone();
    attacked_input.set(flipped_index, true);
    let attack_params = ModelParams::builder(n, k)
        .faults(dr_core::FaultModel::Byzantine, k - 1)
        .build()
        .expect("valid params");
    let mut builder = SimBuilder::new(attack_params)
        .seed(seed)
        .input(attacked_input.clone())
        .protocol(factory.clone());
    for p in 0..k {
        if p != target.index() {
            builder = builder.byzantine(
                PeerId(p),
                FakeSourceAgent::new(factory(PeerId(p)), zeros.clone()),
            );
        }
    }
    let report = match builder.build().run() {
        Ok(r) => r,
        Err(_) => return AttackOutcome::NoTermination { flipped_index },
    };
    match report.verify_downloads(&attacked_input) {
        Err(_) => AttackOutcome::Violated {
            flipped_index,
            queries: report.query_counts[target.index()],
        },
        Ok(()) => AttackOutcome::FullyQueried {
            queries: report.query_counts[target.index()],
        },
    }
}

/// Statistics of a [`randomized_attack`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedAttackStats {
    /// The bit the adversary chose to flip (least-queried in recon runs).
    pub flipped_index: usize,
    /// Estimated probability that the target queries the flipped bit.
    pub estimated_query_probability: f64,
    /// Attack trials run.
    pub trials: usize,
    /// Trials where the target output a wrong bit (or failed to
    /// terminate).
    pub violations: usize,
    /// Mean queries by the target across attack trials.
    pub mean_target_queries: f64,
}

impl RandomizedAttackStats {
    /// Empirical failure probability of the protocol under attack.
    pub fn violation_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.violations as f64 / self.trials as f64
        }
    }
}

/// Runs the Theorem 3.2 construction against a *randomized* protocol.
///
/// The adversary cannot read the target's coins; instead it estimates the
/// per-bit query distribution from `recon_trials` independent honest runs
/// (it "knows the protocol and can simulate it, up to random coins"),
/// flips the bit least likely to be queried, and measures the violation
/// rate over `attack_trials` fresh runs in which the `k − 1` corrupted
/// peers simulate honest behaviour on the unflipped input. If the
/// protocol's per-peer query budget is `q < n`, some bit has query
/// probability at most `q/n` and the attack succeeds with probability at
/// least `1 − q/n`.
pub fn randomized_attack<P, F>(
    n: usize,
    k: usize,
    target: PeerId,
    mut factory: F,
    recon_trials: usize,
    attack_trials: usize,
    seed: u64,
) -> RandomizedAttackStats
where
    P: Protocol + 'static,
    F: FnMut(PeerId) -> P + Clone + Send + 'static,
{
    let zeros = BitArray::zeros(n);

    // Reconnaissance: estimate the target's query distribution.
    let mut hits = vec![0usize; n];
    for t in 0..recon_trials {
        let params = ModelParams::fault_free(n, k).expect("valid params");
        let report = SimBuilder::new(params)
            .seed(seed.wrapping_add(1 + t as u64))
            .input(zeros.clone())
            .protocol(factory.clone())
            .track_query_indices()
            .build()
            .run()
            .expect("reconnaissance run failed");
        let indices = report.query_indices.as_ref().expect("tracking enabled");
        let mut seen = vec![false; n];
        for &j in &indices[target.index()] {
            if !seen[j] {
                seen[j] = true;
                hits[j] += 1;
            }
        }
    }
    let flipped_index = (0..n).min_by_key(|&j| hits[j]).expect("n > 0");
    let estimated_query_probability = hits[flipped_index] as f64 / recon_trials.max(1) as f64;

    // Attack trials with fresh coins.
    let mut attacked_input = zeros.clone();
    attacked_input.set(flipped_index, true);
    let mut violations = 0;
    let mut total_queries = 0u64;
    for t in 0..attack_trials {
        let params = ModelParams::builder(n, k)
            .faults(dr_core::FaultModel::Byzantine, k - 1)
            .build()
            .expect("valid params");
        let mut builder = SimBuilder::new(params)
            .seed(seed.wrapping_add(0x1000 + t as u64))
            .input(attacked_input.clone())
            .protocol(factory.clone());
        for p in 0..k {
            if p != target.index() {
                builder = builder.byzantine(
                    PeerId(p),
                    FakeSourceAgent::new(factory(PeerId(p)), zeros.clone()),
                );
            }
        }
        match builder.build().run() {
            Ok(report) => {
                total_queries += report.query_counts[target.index()];
                if report.verify_downloads(&attacked_input).is_err() {
                    violations += 1;
                }
            }
            Err(_) => violations += 1,
        }
    }
    RandomizedAttackStats {
        flipped_index,
        estimated_query_probability,
        trials: attack_trials,
        violations,
        mean_target_queries: total_queries as f64 / attack_trials.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        BalancedDownload, CommitteeDownload, NaiveDownload, TwoCycleDownload, TwoCyclePlan,
    };

    #[test]
    fn naive_protocol_resists_the_attack() {
        let outcome = deterministic_attack(64, 4, PeerId(0), |_| NaiveDownload::new(), 1);
        assert_eq!(outcome, AttackOutcome::FullyQueried { queries: 64 });
    }

    #[test]
    fn balanced_download_is_broken_by_majority_byzantine() {
        let outcome = deterministic_attack(64, 4, PeerId(0), |_| BalancedDownload::new(64, 4), 2);
        match outcome {
            AttackOutcome::Violated { queries, .. } => assert!(queries < 64),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn committee_download_is_broken_by_majority_byzantine() {
        // The committee protocol is deterministic and sound for t < k/2;
        // under a (k−1)-coalition the committees are Byzantine-controlled
        // and the Theorem 3.1 attack defeats it.
        let outcome =
            deterministic_attack(60, 6, PeerId(1), |_| CommitteeDownload::new(60, 6, 2), 3);
        assert!(
            matches!(outcome, AttackOutcome::Violated { .. }),
            "got {outcome:?}"
        );
    }

    #[test]
    fn randomized_sampler_fails_with_high_probability() {
        // Force the 2-cycle sampler to run (it would choose naive under a
        // majority): with per-peer budget ≈ n/p + O(k) ≪ n, the adversary
        // flips a rarely-queried bit and wins most trials.
        let (n, k) = (512, 8);
        let plan = TwoCyclePlan::Sampled {
            segments: 4,
            threshold: 1,
        };
        let stats = randomized_attack(
            n,
            k,
            PeerId(0),
            move |_| TwoCycleDownload::with_plan(n, k, 0, plan),
            10,
            24,
            7,
        );
        // Expected violation rate ≈ 1 − 1/p − P[fallback covers i*] ≈ 2/3;
        // assert a conservative statistical floor.
        assert!(
            stats.violation_rate() > 0.4,
            "violation rate {} too low; stats {stats:?}",
            stats.violation_rate()
        );
        assert!(stats.mean_target_queries < n as f64);
    }

    #[test]
    fn naive_randomized_attack_never_succeeds() {
        let stats = randomized_attack(64, 4, PeerId(2), |_| NaiveDownload::new(), 3, 5, 9);
        assert_eq!(stats.violations, 0);
        assert_eq!(stats.estimated_query_probability, 1.0);
    }
}
