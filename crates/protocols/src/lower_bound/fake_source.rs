//! Byzantine simulation of an honest peer against a fabricated input.

use dr_core::{BitArray, Context, PeerId, Protocol, ProtocolMessage};
use rand::RngCore;

/// Wraps an honest protocol so that all of its source queries are answered
/// from a fabricated array instead of the real source.
///
/// This is the Byzantine behaviour at the heart of the §3.1 lower bounds:
/// the corrupted peers run the protocol *faithfully* — same messages, same
/// state machine — but "act as if the input is X". From the target's point
/// of view their traffic is indistinguishable from an honest execution on
/// the fabricated input.
///
/// The wrapped protocol's output is discarded (the peer is Byzantine).
#[derive(Debug)]
pub struct FakeSourceAgent<P> {
    inner: P,
    fake: BitArray,
}

impl<P> FakeSourceAgent<P> {
    /// Wraps `inner`, answering its queries from `fake`.
    pub fn new(inner: P, fake: BitArray) -> Self {
        FakeSourceAgent { inner, fake }
    }
}

struct FakeCtx<'a, M: ProtocolMessage> {
    inner: &'a mut dyn Context<M>,
    fake: &'a BitArray,
}

impl<M: ProtocolMessage> Context<M> for FakeCtx<'_, M> {
    fn me(&self) -> PeerId {
        self.inner.me()
    }
    fn num_peers(&self) -> usize {
        self.inner.num_peers()
    }
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }
    fn send(&mut self, to: PeerId, msg: M) {
        self.inner.send(to, msg);
    }
    fn query(&mut self, index: usize) -> bool {
        // The fabricated world: never touches the real source (and is
        // therefore also free for the Byzantine peer).
        self.fake.get(index)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.inner.rng()
    }
}

impl<P: Protocol> Protocol for FakeSourceAgent<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut dyn Context<P::Msg>) {
        let mut fake_ctx = FakeCtx {
            inner: ctx,
            fake: &self.fake,
        };
        self.inner.on_start(&mut fake_ctx);
    }

    fn on_message(&mut self, from: PeerId, msg: P::Msg, ctx: &mut dyn Context<P::Msg>) {
        let mut fake_ctx = FakeCtx {
            inner: ctx,
            fake: &self.fake,
        };
        self.inner.on_message(from, msg, &mut fake_ctx);
    }

    /// Byzantine peers never "terminate" for the Download specification.
    fn output(&self) -> Option<&BitArray> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveDownload;

    #[test]
    fn wrapped_protocol_sees_fake_bits() {
        use dr_core::ModelParams;
        use dr_sim::SimBuilder;

        // Real input: derived from seed. Fake input: all ones.
        let n = 32;
        let fake = BitArray::from_fn(n, |_| true);
        let params = ModelParams::builder(n, 2)
            .faults(dr_core::FaultModel::Byzantine, 1)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(1)
            .protocol(|_| NaiveDownload::new())
            .byzantine(PeerId(1), FakeSourceAgent::new(NaiveDownload::new(), fake))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        // The honest peer still downloads the real input.
        report.verify_downloads(&input).unwrap();
        // The Byzantine wrapper made no real queries at all.
        assert_eq!(report.query_counts[1], 0);
    }
}
