//! Executable lower-bound constructions for Byzantine-majority Download
//! (§3.1, Theorems 3.1 and 3.2).
//!
//! Theorem 3.1: for `β ≥ 1/2`, every *deterministic* asynchronous Download
//! protocol must query all `n` bits. Theorem 3.2 extends this (with a
//! slightly weaker constant) to randomized protocols. Both proofs build a
//! pair of indistinguishable executions: a Byzantine coalition *simulates*
//! an honest execution on a fabricated input `X` while the real input `X′`
//! differs in one bit `i*` the target peer never queries; honest peers who
//! could reveal the difference are delayed past the target's termination.
//!
//! This module makes the construction executable:
//!
//! * [`FakeSourceAgent`] wraps any honest protocol so that its *queries*
//!   are answered from a fabricated array instead of the real source —
//!   exactly the "corrupted peers act as if the input is X" step.
//! * [`deterministic_attack`] runs the two-execution construction against
//!   a deterministic protocol and reports whether the target peer output
//!   a wrong bit.
//! * [`randomized_attack`] runs the Theorem 3.2 version against randomized
//!   protocols: reconnaissance runs estimate the target's per-bit query
//!   distribution, the adversary flips a rarely-queried bit, and fresh
//!   attack runs measure the failure probability.

mod attack;
mod fake_source;

pub use attack::{deterministic_attack, randomized_attack, AttackOutcome, RandomizedAttackStats};
pub use fake_source::FakeSourceAgent;
