//! Paper-bound cost envelopes used as chaos-campaign invariants.
//!
//! Each protocol exposes a `cost_envelope(...)` constructor returning the
//! [`CostEnvelope`] its runs must stay inside for the campaign's fault
//! budget: a hard cap on `Q` (max queries over nonfaulty peers) shaped
//! like the paper's per-protocol bound with explicit slack, and a time
//! allowance that grows with the number of compelled quiescence releases
//! (an adversary holding messages stretches `T` by construction — §3.1
//! only forces release once the system is quiescent, so each release adds
//! up to a latency unit plus transmission time).
//!
//! The envelopes are *sound* for adversaries within the fault budget:
//! a violation means the protocol broke its bound, not that the adversary
//! was unlucky. For the randomized cycle protocols the `Q` cap includes
//! the (astronomically unlikely but legal) direct-query fallback, so it
//! chiefly catches runaway re-querying rather than tight constant drift.

use dr_sim::RunReport;
use std::fmt;

/// A per-run cost budget: `Q ≤ q_max` and
/// `T ≤ t_base + t_per_release · quiescence_releases
///        + t_per_retry · retransmissions + t_link_slack`.
///
/// The two link-fault terms default to zero in every protocol's paper
/// envelope; the chaos campaign widens them per adversary (a resend adds
/// at most one backoff clamp plus one latency unit to the critical path,
/// and partitions/churn delay deliveries by at most their heal/rejoin
/// horizon — neither is the protocol's fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEnvelope {
    /// Hard cap on `max_nonfaulty_queries`.
    pub q_max: u64,
    /// Time allowance (in units) for a hold-free schedule.
    pub t_base: f64,
    /// Extra time allowance per compelled quiescence release.
    pub t_per_release: f64,
    /// Extra time allowance per link-layer resend (zero when the run's
    /// adversary drops nothing).
    pub t_per_retry: f64,
    /// Flat extra time allowance for partition-heal and churn-rejoin
    /// horizons (zero for fault-free links).
    pub t_link_slack: f64,
}

/// A run that left its [`CostEnvelope`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeViolation {
    /// Which bound was broken (`"Q"` or `"T"`).
    pub metric: &'static str,
    /// The measured value.
    pub measured: f64,
    /// The envelope's allowance.
    pub allowed: f64,
}

impl fmt::Display for EnvelopeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {} exceeds envelope {}",
            self.metric, self.measured, self.allowed
        )
    }
}

impl std::error::Error for EnvelopeViolation {}

impl CostEnvelope {
    /// Checks a completed run against this envelope.
    ///
    /// # Errors
    ///
    /// Returns the first bound broken (`Q` before `T`).
    pub fn check(&self, report: &RunReport) -> Result<(), EnvelopeViolation> {
        if report.max_nonfaulty_queries > self.q_max {
            return Err(EnvelopeViolation {
                metric: "Q",
                measured: report.max_nonfaulty_queries as f64,
                allowed: self.q_max as f64,
            });
        }
        let t_allowed = self.t_base
            + self.t_per_release * report.quiescence_releases as f64
            + self.t_per_retry * report.retransmissions as f64
            + self.t_link_slack;
        if report.virtual_time_units > t_allowed {
            return Err(EnvelopeViolation {
                metric: "T",
                measured: report.virtual_time_units,
                allowed: t_allowed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SingleCrashDownload;
    use dr_core::ModelParams;
    use dr_sim::SimBuilder;

    #[test]
    fn envelope_accepts_benign_run_and_rejects_tightened_cap() {
        let (n, k) = (64, 4);
        let params = ModelParams::builder(n, k)
            .faults(dr_core::FaultModel::Crash, 1)
            .message_bits(1024)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(1)
            .protocol(move |_| SingleCrashDownload::new(n, k))
            .build();
        let report = sim.run().unwrap();
        let env = SingleCrashDownload::cost_envelope(n, k);
        env.check(&report).unwrap();
        let tight = CostEnvelope { q_max: 0, ..env };
        let err = tight.check(&report).unwrap_err();
        assert_eq!(err.metric, "Q");
        assert!(err.measured > 0.0);
    }

    #[test]
    fn time_allowance_grows_with_releases() {
        let env = CostEnvelope {
            q_max: 100,
            t_base: 4.0,
            t_per_release: 2.0,
            t_per_retry: 0.0,
            t_link_slack: 0.0,
        };
        // Build a fake report shape via a real tiny run, then tweak.
        let (n, k) = (16, 2);
        let params = ModelParams::fault_free(n, k).unwrap();
        let sim = SimBuilder::new(params)
            .seed(0)
            .protocol(|_| crate::NaiveDownload::new())
            .build();
        let mut report = sim.run().unwrap();
        report.virtual_time_units = 5.0;
        report.quiescence_releases = 0;
        assert!(env.check(&report).is_err());
        report.quiescence_releases = 1;
        assert!(env.check(&report).is_ok());
    }
}
