//! The canonical per-phase bit-ownership function of Algorithm 2.
//!
//! Algorithm 2's correctness hinges on Claim 1: two honest peers either
//! assign a bit to the same peer, or one of them already knows it. The
//! paper achieves this with a deterministic even reassignment in stage 3.
//! We realize it with a *global* ownership function `owner(j, phase, k)`
//! — a pure function of the bit index, phase, and peer count — so that
//! agreement is structural: every peer's phase-`i` assignment of its
//! unknown bits is `owner(·, i)` regardless of execution history, making
//! the first disjunct of Claim 1 hold identically for all unknown bits.
//!
//! Phase 1 is the balanced round-robin `j mod k` of the paper. Later
//! phases use a `splitmix64`-style hash of `(j, phase)`: each phase deals
//! any unknown set out in fresh, phase-independent proportions, so a bit
//! whose current owner has crashed lands on a live owner with probability
//! `1 − β` in the next phase — the geometric `β`-shrink of the unknown
//! set that Lemma 2.11's query bound rests on. (A fixed digit-based
//! rotation cannot do this: with only `log_k n` digit positions, an
//! adversary that crashes the right `k/2` peers can leave a quarter of
//! the input permanently assigned to dead owners.)

/// `splitmix64` finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The peer responsible for querying bit `j` in the given 1-based phase.
///
/// # Panics
///
/// Panics if `k == 0` or `phase == 0`.
pub fn owner(j: usize, phase: usize, k: usize) -> usize {
    assert!(k > 0, "k must be positive");
    assert!(phase > 0, "phases are 1-based");
    if phase == 1 {
        j % k
    } else {
        (splitmix64(j as u64 ^ (phase as u64).wrapping_mul(0xa076_1d64_78bd_642f)) % k as u64)
            as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_one_is_round_robin() {
        for j in 0..100 {
            assert_eq!(owner(j, 1, 7), j % 7);
        }
    }

    #[test]
    fn later_phases_are_roughly_balanced() {
        let k = 8;
        let n = 8192;
        for phase in 2..8 {
            let mut load = vec![0usize; k];
            for j in 0..n {
                load[owner(j, phase, k)] += 1;
            }
            let expect = n / k;
            for (p, &l) in load.iter().enumerate() {
                assert!(
                    l > expect / 2 && l < expect * 2,
                    "phase {phase} peer {p} load {l} far from {expect}"
                );
            }
        }
    }

    #[test]
    fn dead_owner_sets_drain_geometrically() {
        // The scenario that breaks digit-based schemes: peers 0..k/2
        // crash; their phase-1 bits must not stay stuck on dead owners.
        let k = 32;
        let n = 8192;
        let dead = |p: usize| p < k / 2;
        let mut unknown: Vec<usize> = (0..n).filter(|&j| dead(owner(j, 1, k))).collect();
        for phase in 2..12 {
            let before = unknown.len();
            unknown.retain(|&j| dead(owner(j, phase, k)));
            // Expect roughly a β = 1/2 shrink; allow generous slack.
            assert!(
                unknown.len() < before * 3 / 4 + 8,
                "phase {phase}: {before} -> {} (stuck)",
                unknown.len()
            );
            if unknown.is_empty() {
                return;
            }
        }
        assert!(
            unknown.len() < n / k,
            "unknown set failed to drain: {} left",
            unknown.len()
        );
    }

    #[test]
    fn owner_is_globally_consistent() {
        // Pure function of (j, phase, k) — the Claim 1 mechanism.
        for j in [0usize, 3, 17, 999] {
            for phase in 1..6 {
                assert_eq!(owner(j, phase, 8), owner(j, phase, 8));
            }
        }
    }

    #[test]
    fn different_phases_give_different_deals() {
        let k = 16;
        let same: usize = (0..1000)
            .filter(|&j| owner(j, 2, k) == owner(j, 3, k))
            .count();
        // Independent uniform deals agree on ~1/k of the bits.
        assert!(same < 1000 / 4, "phases 2 and 3 deal almost identically");
    }
}
