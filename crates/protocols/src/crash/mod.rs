//! Deterministic crash-fault Download protocols (§2 of the paper).

mod multi;
mod owner;
mod single;

pub use multi::{CrashMultiDownload, MultiCrashMsg};
pub use owner::owner;
pub use single::{SingleCrashDownload, SingleCrashMsg};
