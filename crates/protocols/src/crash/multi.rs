//! Algorithm 2: deterministic Download with up to `b = βk` crashes for any
//! `β < 1` (§2.2, Lemma 2.11 / Theorem 2.13).
//!
//! The protocol proceeds in *phases* of three stages. In phase `i`, every
//! bit `j` has a globally agreed owner [`owner`]`(j, i, k)` — a pure
//! function of `(j, i, k)`, so any two honest peers agree on every bit's
//! owner (this realizes Claim 1 of the paper structurally; see the
//! [`owner`] module docs). Because ownership is structural, messages never
//! need to carry bit indices: a response is a packed bitmap over the
//! owner's (globally computable) bit set, keeping the message complexity
//! at the paper's `O(k² + nk/a)` packets rather than 64× that.
//!
//! * **Stage 1** — peer `v` queries its own unknown bits and asks each
//!   peer `w` owning bits `v` lacks for `w`'s phase-`i` set.
//! * **Stage 2** — `v` waits for full answers from at least `k − b` peers
//!   (waiting for more risks deadlock), then broadcasts the list of
//!   *missing* peers. A peer answers a stage-1 request once it has passed
//!   stage 1 of that phase, and a stage-2 request once it has passed
//!   stage 2 — deferred answers are buffered.
//! * **Stage 3** — `v` waits for `k − b` stage-2 answers, each carrying,
//!   per missing peer `u`, either `u`'s full bit set (if the responder
//!   learned it from `u`) or "me neither". Unresolved bits simply fall to
//!   their phase-`i+1` owners. Each phase shrinks the unknown set by a
//!   factor `β` in expectation, so after `O(log_{1/β} k)` phases at most
//!   `n/k` bits remain, which the peer queries directly before
//!   broadcasting the full array and terminating (every terminating peer
//!   broadcasts — the Claim 2 pattern that lets the rest terminate too).
//!
//! With the [`early_release`](CrashMultiDownload::with_early_release)
//! modification of Theorem 2.13, a peer stuck in stage 3 may continue as
//! soon as late stage-1 answers resolve every missing peer, removing
//! long-response waits from the time complexity.

use super::owner::owner;
use dr_core::collections::DetMap;
use dr_core::{BitArray, Context, PartialArray, PeerId, Protocol, ProtocolMessage};

/// Messages of Algorithm 2. All bit payloads are packed bitmaps over
/// *structural* index sets (`{j : owner(j, phase, k) = peer}`), which
/// every peer can compute locally.
#[derive(Debug, Clone)]
pub enum MultiCrashMsg {
    /// Stage-1 request: "send me the values of your phase-`phase` set".
    Request1 {
        /// Phase the request belongs to.
        phase: u32,
    },
    /// Answer to [`MultiCrashMsg::Request1`]: the values of every bit the
    /// responder owns in that phase, in increasing index order.
    Response1 {
        /// Phase of the answered request.
        phase: u32,
        /// Packed values of the responder's phase set.
        values: BitArray,
    },
    /// Stage-2 request naming the peers the sender is missing.
    Request2 {
        /// Phase the request belongs to.
        phase: u32,
        /// Peers the sender did not hear from in this phase.
        missing: Vec<PeerId>,
    },
    /// Answer to [`MultiCrashMsg::Request2`]: per missing peer, either the
    /// packed values of that peer's phase set or "me neither" (`None`).
    Response2 {
        /// Phase of the answered request.
        phase: u32,
        /// Per-missing-peer answers, in the order of the request.
        answers: Vec<(PeerId, Option<BitArray>)>,
    },
    /// Termination broadcast of the complete array (Claim 2).
    Final {
        /// The complete input array.
        bits: BitArray,
    },
}

impl ProtocolMessage for MultiCrashMsg {
    fn bit_len(&self) -> usize {
        match self {
            MultiCrashMsg::Request1 { .. } => 40,
            MultiCrashMsg::Response1 { values, .. } => 40 + values.len(),
            MultiCrashMsg::Request2 { missing, .. } => 40 + 16 * missing.len(),
            MultiCrashMsg::Response2 { answers, .. } => {
                40 + answers
                    .iter()
                    .map(|(_, a)| 17 + a.as_ref().map_or(0, BitArray::len))
                    .sum::<usize>()
            }
            MultiCrashMsg::Final { bits } => bits.len(),
        }
    }
}

/// Local position within the phase/stage lattice, used for deferral.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Position {
    phase: u32,
    stage: u8,
}

/// Algorithm 2 (§2.2): deterministic Download tolerating `b` crashes for
/// any `b < k`.
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams, PeerId};
/// use dr_protocols::CrashMultiDownload;
/// use dr_sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};
///
/// let params = ModelParams::builder(256, 8)
///     .faults(FaultModel::Crash, 5)
///     .build()?;
/// let sim = SimBuilder::new(params)
///     .protocol(|_| CrashMultiDownload::new(256, 8, 5))
///     .adversary(StandardAdversary::new(
///         UniformDelay::new(),
///         CrashPlan::before_event([PeerId(0), PeerId(1), PeerId(2)], 1),
///     ))
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct CrashMultiDownload {
    n: usize,
    k: usize,
    b: usize,
    early_release: bool,
    acc: PartialArray,
    out: Option<BitArray>,
    phase: u32,
    stage: u8,
    /// Cached structural sets per phase: `sets[phase][peer]` = sorted bit
    /// indices owned by `peer` in that phase. Ordered map: the cache is
    /// pruned with `retain`, which must visit phases deterministically.
    sets: DetMap<u32, Vec<Vec<u32>>>,
    /// Peers counted as heard-from this phase (self, vacuous, full answers).
    correct: Vec<bool>,
    /// Missing peers computed on entering stage 3.
    missing: Vec<PeerId>,
    /// Stage-2 answer senders this phase (includes self).
    resp2_senders: Vec<bool>,
    /// Deferred requests waiting for this peer to advance.
    pending: Vec<(PeerId, MultiCrashMsg)>,
    /// Termination threshold: remaining unknown bits a peer just queries.
    threshold: usize,
    /// Hard cap on phases before falling back to direct queries.
    max_phases: u32,
    /// Phases fully executed (for tests and experiments).
    phases_run: u32,
    /// Peers whose own Final we already received (they have terminated;
    /// sending them ours would be wasted).
    finished: Vec<bool>,
}

impl CrashMultiDownload {
    /// Creates an instance for `n` bits, `k` peers, and up to `b < k`
    /// crashes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `b >= k`.
    pub fn new(n: usize, k: usize, b: usize) -> Self {
        assert!(k > 0, "need at least one peer");
        assert!(b < k, "fault budget must leave one nonfaulty peer");
        let beta = b as f64 / k as f64;
        // Expected phases until β^i·n ≤ n/k is log_{1/β}(k); the hashed
        // owner function shrinks in expectation, so leave generous slack
        // (termination at the n/k threshold caps the cost regardless).
        let max_phases = if b == 0 {
            2
        } else {
            (3.0 * (k as f64).ln() / (1.0 / beta).ln()).ceil() as u32 + 8
        }
        .min(64);
        CrashMultiDownload {
            n,
            k,
            b,
            early_release: false,
            acc: PartialArray::new(n),
            out: None,
            phase: 0,
            stage: 1,
            sets: DetMap::new(),
            correct: vec![false; k],
            missing: Vec::new(),
            resp2_senders: vec![false; k],
            pending: Vec::new(),
            threshold: n.div_ceil(k),
            max_phases,
            phases_run: 0,
            finished: vec![false; k],
        }
    }

    /// Chaos-campaign invariant envelope for Algorithm 2 (Theorem 2.9:
    /// `Q ≤ (n/k)/(1−β) + n/k + 1` in expectation): twice the bound plus
    /// slack on `Q`; time allows the phase loop, which is `O(log k)` in
    /// expectation but capped at `max_phases` by construction.
    pub fn cost_envelope(n: usize, k: usize, b: usize) -> crate::CostEnvelope {
        let beta = b as f64 / k as f64;
        let per = n as f64 / k as f64;
        let theory = per / (1.0 - beta) + per + 1.0;
        crate::CostEnvelope {
            q_max: (2.0 * theory).ceil() as u64 + 16,
            t_base: 16.0 + 8.0 * (b as f64 + 1.0),
            t_per_release: 4.0,
            t_per_retry: 0.0,
            t_link_slack: 0.0,
        }
    }

    /// Enables the Theorem 2.13 modification: stage 3 completes as soon as
    /// every missing peer is resolved by late answers, even before `k − b`
    /// stage-2 responses arrive.
    pub fn with_early_release(mut self) -> Self {
        self.early_release = true;
        self
    }

    /// Number of phases this peer fully executed.
    pub fn phases_run(&self) -> u32 {
        self.phases_run
    }

    fn position(&self) -> Position {
        Position {
            phase: self.phase,
            stage: self.stage,
        }
    }

    /// The sorted bit set owned by `peer` in `phase` (computed once per
    /// phase, then cached).
    fn owner_set(&mut self, phase: u32, peer: PeerId) -> &[u32] {
        let k = self.k;
        let n = self.n;
        let per_phase = self.sets.entry(phase).or_insert_with(|| {
            let mut sets = vec![Vec::new(); k];
            for j in 0..n {
                sets[owner(j, phase as usize, k)].push(j as u32);
            }
            sets
        });
        &per_phase[peer.index()]
    }

    /// Learns a packed bitmap over `peer`'s phase set. Returns `false` if
    /// the bitmap length does not match the set (malformed).
    fn learn_set_values(&mut self, phase: u32, peer: PeerId, values: &BitArray) -> bool {
        let set: Vec<u32> = self.owner_set(phase, peer).to_vec();
        if values.len() != set.len() {
            return false;
        }
        for (r, &j) in set.iter().enumerate() {
            self.acc.learn(j as usize, values.get(r));
        }
        true
    }

    /// Packs the values of `peer`'s phase set, if all of them are known.
    fn pack_set_values(&mut self, phase: u32, peer: PeerId) -> Option<BitArray> {
        let set: Vec<u32> = self.owner_set(phase, peer).to_vec();
        let mut out = BitArray::zeros(set.len());
        for (r, &j) in set.iter().enumerate() {
            match self.acc.get(j as usize) {
                Some(true) => out.set(r, true),
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// Whether any bit of `peer`'s phase set is still unknown to us.
    fn lacks_bits_of(&mut self, phase: u32, peer: PeerId) -> bool {
        let set: Vec<u32> = self.owner_set(phase, peer).to_vec();
        set.iter().any(|&j| !self.acc.is_known(j as usize))
    }

    /// Terminates: query whatever is still unknown, broadcast the full
    /// array (Claim 2), output, halt.
    fn terminate(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) {
        let unknown: Vec<usize> = self.acc.unknown_iter().collect();
        for j in unknown {
            let v = ctx.query(j);
            self.acc.learn(j, v);
        }
        let bits = self.acc.clone().into_complete();
        self.out = Some(bits.clone());
        // Claim 2: send everything to every peer that might still be
        // waiting; peers whose Final we already hold have terminated.
        // One message value, cloned per recipient — each clone shares the
        // payload buffer, so the fan-out is O(k), not O(k·n).
        let msg = MultiCrashMsg::Final { bits };
        for p in 0..self.k {
            if p != ctx.me().index() && !self.finished[p] {
                ctx.send(PeerId(p), msg.clone());
            }
        }
        self.stage = 4; // past every deferral condition
    }

    /// Enters the next phase (or terminates if few enough bits remain).
    fn start_phase(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) {
        loop {
            if self.out.is_some() {
                return;
            }
            let unknown = self.acc.unknown_count();
            // Degenerate regimes where cooperation cannot help: alone
            // (b = k − 1 leaves no one to rely on), few bits left, or the
            // phase cap. The Lemma 2.11 bound n/(k(1−β)) + n/k covers the
            // direct cost in each.
            if unknown <= self.threshold || self.phase >= self.max_phases || self.b + 1 == self.k {
                self.terminate(ctx);
                return;
            }
            self.phase += 1;
            self.stage = 1;
            self.correct = vec![false; self.k];
            self.missing.clear();
            self.resp2_senders = vec![false; self.k];
            // Drop set caches for phases nobody will ask about again
            // (keep a window for stragglers).
            let current = self.phase;
            self.sets.retain(|&p, _| p + 8 >= current);

            // Stage 1: query our own unknown share, request everyone
            // else's.
            let me = ctx.me();
            let my_set: Vec<u32> = self.owner_set(self.phase, me).to_vec();
            for j in my_set {
                if !self.acc.is_known(j as usize) {
                    let v = ctx.query(j as usize);
                    self.acc.learn(j as usize, v);
                }
            }
            self.correct[me.index()] = true;
            for w in 0..self.k {
                if w == me.index() {
                    continue;
                }
                if self.lacks_bits_of(self.phase, PeerId(w)) {
                    ctx.send(PeerId(w), MultiCrashMsg::Request1 { phase: self.phase });
                } else {
                    // Nothing wanted from w: vacuously heard.
                    self.correct[w] = true;
                }
            }
            self.stage = 2;
            self.replay_pending(ctx);
            if !self.try_finish_stage2(ctx) {
                return;
            }
            // Stage 3 finished synchronously (e.g. no missing peers):
            // loop into the next phase.
        }
    }

    /// Checks the stage-2 condition; returns `true` if the whole phase
    /// completed synchronously and the caller should advance phases.
    fn try_finish_stage2(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) -> bool {
        if self.stage != 2 || self.out.is_some() {
            return false;
        }
        let heard = self.correct.iter().filter(|&&c| c).count();
        if heard < self.k - self.b {
            return false;
        }
        self.stage = 3;
        self.replay_pending(ctx);
        let phase = self.phase;
        let unheard: Vec<PeerId> = (0..self.k)
            .filter(|&w| !self.correct[w])
            .map(PeerId)
            .collect();
        let mut missing = Vec::new();
        for w in unheard {
            if self.lacks_bits_of(phase, w) {
                missing.push(w);
            }
        }
        if missing.is_empty() {
            // Nothing actually lacking: phase over.
            self.phases_run = self.phase;
            return true;
        }
        self.missing = missing.clone();
        ctx.broadcast(MultiCrashMsg::Request2 {
            phase: self.phase,
            missing,
        });
        // Our own answer is "me neither" for every missing peer — it
        // contributes nothing but counts as a response (self is a valid
        // responder in the k − b count).
        self.resp2_senders[ctx.me().index()] = true;
        self.try_finish_stage3(ctx)
    }

    /// Checks the stage-3 condition; returns `true` if the phase completed
    /// synchronously.
    fn try_finish_stage3(&mut self, _ctx: &mut dyn Context<MultiCrashMsg>) -> bool {
        if self.stage != 3 || self.out.is_some() {
            return false;
        }
        let responses = self.resp2_senders.iter().filter(|&&r| r).count();
        let done = if responses >= self.k - self.b {
            true
        } else if self.early_release {
            // Thm 2.13: late stage-1 answers may have resolved every
            // missing peer already, making further waiting pointless.
            let phase = self.phase;
            let missing = self.missing.clone();
            missing.iter().all(|&u| !self.lacks_bits_of(phase, u))
        } else {
            false
        };
        if !done {
            return false;
        }
        // Unresolved bits stay unknown and fall to their phase-(i+1)
        // owners; nothing to compute — the owner function is global.
        self.phases_run = self.phase;
        true
    }

    /// Whether a message with the given phase/stage requirement can be
    /// processed now.
    fn ready_for(&self, phase: u32, stage: u8) -> bool {
        self.out.is_some() || self.position() >= Position { phase, stage }
    }

    fn replay_pending(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) {
        let mut pending = std::mem::take(&mut self.pending);
        let mut still = Vec::new();
        for (from, msg) in pending.drain(..) {
            let ready = match &msg {
                MultiCrashMsg::Request1 { phase } => self.ready_for(*phase, 2),
                MultiCrashMsg::Request2 { phase, .. } => self.ready_for(*phase, 3),
                _ => true,
            };
            if ready {
                self.answer_request(from, msg, ctx);
            } else {
                still.push((from, msg));
            }
        }
        self.pending.extend(still);
    }

    fn answer_request(
        &mut self,
        from: PeerId,
        msg: MultiCrashMsg,
        ctx: &mut dyn Context<MultiCrashMsg>,
    ) {
        match msg {
            MultiCrashMsg::Request1 { phase } => {
                let me = ctx.me();
                let values = self
                    .pack_set_values(phase, me)
                    .expect("past stage 1 of the phase, our own set is fully known");
                ctx.send(from, MultiCrashMsg::Response1 { phase, values });
            }
            MultiCrashMsg::Request2 { phase, missing } => {
                let answers: Vec<(PeerId, Option<BitArray>)> = missing
                    .into_iter()
                    .map(|u| {
                        let packed = if u.index() < self.k {
                            self.pack_set_values(phase, u)
                        } else {
                            None
                        };
                        (u, packed)
                    })
                    .collect();
                ctx.send(from, MultiCrashMsg::Response2 { phase, answers });
            }
            _ => unreachable!("only requests are deferred"),
        }
    }

    /// Advances through any synchronously-completable stages/phases.
    fn pump(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) {
        loop {
            if self.out.is_some() {
                return;
            }
            let advanced = match self.stage {
                2 => self.try_finish_stage2(ctx),
                3 => self.try_finish_stage3(ctx),
                _ => false,
            };
            if advanced {
                self.start_phase(ctx);
            } else {
                return;
            }
        }
    }
}

impl Protocol for CrashMultiDownload {
    type Msg = MultiCrashMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<MultiCrashMsg>) {
        self.start_phase(ctx);
        self.pump(ctx);
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: MultiCrashMsg,
        ctx: &mut dyn Context<MultiCrashMsg>,
    ) {
        if self.out.is_some() {
            return;
        }
        match msg {
            MultiCrashMsg::Request1 { phase } => {
                if self.ready_for(phase, 2) {
                    self.answer_request(from, MultiCrashMsg::Request1 { phase }, ctx);
                } else {
                    self.pending.push((from, MultiCrashMsg::Request1 { phase }));
                }
            }
            MultiCrashMsg::Request2 { phase, missing } => {
                let msg = MultiCrashMsg::Request2 { phase, missing };
                if self.ready_for(phase, 3) {
                    self.answer_request(from, msg, ctx);
                } else {
                    self.pending.push((from, msg));
                }
            }
            MultiCrashMsg::Response1 { phase, values } => {
                if phase <= self.phase && self.learn_set_values(phase, from, &values) {
                    // A full answer for the *current* phase marks the
                    // sender heard; answers for earlier phases only
                    // contribute their bits (useful to early release).
                    if phase == self.phase {
                        self.correct[from.index()] = true;
                    }
                }
                self.pump(ctx);
            }
            MultiCrashMsg::Response2 { phase, answers } => {
                for (u, answer) in &answers {
                    if let Some(values) = answer {
                        self.learn_set_values(phase, *u, values);
                    }
                }
                if phase == self.phase && self.stage == 3 {
                    self.resp2_senders[from.index()] = true;
                }
                self.pump(ctx);
            }
            MultiCrashMsg::Final { bits } => {
                self.finished[from.index()] = true;
                if bits.len() == self.n {
                    self.acc.learn_slice(0, &bits);
                }
                self.terminate(ctx);
            }
        }
        // Our own state may now satisfy deferred requests.
        if self.out.is_none() {
            self.replay_pending(ctx);
        }
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{
        CrashDirective, CrashPlan, CrashTrigger, RunReport, SimBuilder, StandardAdversary,
        TargetedSlowdown, UniformDelay,
    };

    fn params(n: usize, k: usize, b: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Crash, b)
            .build()
            .unwrap()
    }

    fn run(
        seed: u64,
        n: usize,
        k: usize,
        b: usize,
        plan: CrashPlan,
        early: bool,
    ) -> (RunReport, BitArray) {
        let sim = SimBuilder::new(params(n, k, b))
            .seed(seed)
            .protocol(move |_| {
                let p = CrashMultiDownload::new(n, k, b);
                if early {
                    p.with_early_release()
                } else {
                    p
                }
            })
            .adversary(StandardAdversary::new(UniformDelay::new(), plan))
            .build();
        let input = sim.input().clone();
        (sim.run().expect("must not deadlock"), input)
    }

    #[test]
    fn fault_free_run_is_balanced() {
        let (report, input) = run(1, 240, 6, 0, CrashPlan::none(), false);
        report.verify_downloads(&input).unwrap();
        // b = 0: one phase, everyone queries exactly n/k plus the ≤ n/k
        // terminal remainder.
        assert!(report.max_nonfaulty_queries <= 2 * (240 / 6) as u64);
    }

    #[test]
    fn tolerates_crashes_before_start() {
        let (report, input) = run(
            2,
            300,
            6,
            3,
            CrashPlan::before_event([PeerId(0), PeerId(1), PeerId(2)], 0),
            false,
        );
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.crashed.len(), 3);
    }

    #[test]
    fn tolerates_majority_crashes() {
        // β = 7/8: only one peer survives.
        let victims: Vec<PeerId> = (1..8).map(PeerId).collect();
        let (report, input) = run(3, 128, 8, 7, CrashPlan::before_event(victims, 0), false);
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.nonfaulty.len(), 1);
    }

    #[test]
    fn tolerates_mid_execution_crashes() {
        for seed in 0..10 {
            let mut plan = CrashPlan::none();
            plan.push(CrashDirective {
                peer: PeerId(1),
                trigger: CrashTrigger::BeforeEvent(2 + seed % 3),
            });
            plan.push(CrashDirective {
                peer: PeerId(4),
                trigger: CrashTrigger::DuringSend {
                    event: seed % 4,
                    keep: (seed % 3) as usize,
                },
            });
            let (report, input) = run(seed, 200, 5, 2, plan, false);
            report.verify_downloads(&input).unwrap();
        }
    }

    #[test]
    fn slow_peers_are_not_fatal() {
        // Nobody crashes, but two peers are maximally slow: the protocol
        // must finish anyway and may charge the reassigned load.
        let slow = vec![PeerId(0), PeerId(1)];
        let n = 400;
        let k = 8;
        let b = 2;
        let sim = SimBuilder::new(params(n, k, b))
            .seed(9)
            .protocol(move |_| CrashMultiDownload::new(n, k, b))
            .adversary(StandardAdversary::new(
                TargetedSlowdown::new(slow, 3),
                CrashPlan::none(),
            ))
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.nonfaulty.len(), 8);
    }

    #[test]
    fn query_complexity_matches_bound() {
        // Q ≤ (n/k) · 1/(1-β) + n/k + slack (Lemma 2.11).
        let n = 2048;
        let k = 8;
        let b = 4; // β = 1/2
        let (report, input) = run(
            7,
            n,
            k,
            b,
            CrashPlan::before_event((0..4).map(PeerId), 1),
            false,
        );
        report.verify_downloads(&input).unwrap();
        let per_phase = (n / k) as f64;
        let bound = per_phase * 2.0 + per_phase + 64.0;
        assert!(
            (report.max_nonfaulty_queries as f64) <= bound,
            "Q = {} exceeds {bound}",
            report.max_nonfaulty_queries
        );
    }

    #[test]
    fn message_bits_stay_near_paper_bound() {
        // With packed structural bitmaps, total payload over a fault-free
        // run is dominated by the k² Final broadcasts of n bits each (the
        // Claim 2 termination pattern); the phase traffic is O(k·n). The
        // old index-explicit format cost 64× the phase traffic.
        let (n, k) = (4096usize, 8usize);
        let (report, input) = run(11, n, k, 0, CrashPlan::none(), false);
        report.verify_downloads(&input).unwrap();
        let bound = (k * k * n + 4 * k * n) as u64;
        assert!(
            report.message_bits <= bound,
            "message bits {} exceed {bound}",
            report.message_bits
        );
    }

    #[test]
    fn early_release_matches_outputs() {
        let plan = CrashPlan::before_event([PeerId(2), PeerId(5)], 1);
        let (r1, i1) = run(11, 160, 6, 2, plan.clone(), false);
        let (r2, i2) = run(11, 160, 6, 2, plan, true);
        r1.verify_downloads(&i1).unwrap();
        r2.verify_downloads(&i2).unwrap();
    }

    #[test]
    fn lone_survivor_regime_degrades_to_naive() {
        // b = k − 1: the peer cannot count on anyone; it must pay Q = n
        // but should do so without protocol chatter.
        let (report, input) = run(13, 256, 4, 3, CrashPlan::none(), false);
        report.verify_downloads(&input).unwrap();
        assert_eq!(report.max_nonfaulty_queries, 256);
    }

    #[test]
    fn randomized_crash_fuzz_never_fails() {
        for seed in 0..25 {
            let k = 5 + (seed as usize % 4);
            let b = (seed as usize) % k;
            let mut plan = CrashPlan::none();
            for v in 0..b {
                plan.push(CrashDirective {
                    peer: PeerId(v),
                    trigger: CrashTrigger::BeforeEvent(seed % 5),
                });
            }
            let (report, input) = run(100 + seed, 150, k, b, plan, seed % 2 == 0);
            report.verify_downloads(&input).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "nonfaulty")]
    fn rejects_all_faulty() {
        let _ = CrashMultiDownload::new(10, 4, 4);
    }
}
