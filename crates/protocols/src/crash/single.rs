//! Algorithm 1: deterministic Download with at most one crash (§2.1).
//!
//! The protocol runs two phases of three stages each.
//!
//! * **Phase 1, stage 1** — peer `v` queries its round-robin share
//!   (`{j : j ≡ v (mod k)}`) and pushes the values to every peer.
//! * **Stage 2** — `v` waits for stage-1 shares from at least `k − 1`
//!   peers (waiting for the last risks deadlock if it crashed), then asks
//!   everyone who has the bits of its *missing* peer `m`. A peer answers
//!   `m`'s bits if it heard `m`, "me neither" otherwise — delaying its
//!   answer until it finished its own stage-2 wait.
//! * **Stage 3** — `v` collects `k − 1` answers. If any answer carries
//!   `m`'s bits, `v` enters *completion mode*; if all say "me neither",
//!   `v` reassigns `m`'s bits evenly over the remaining peers (every peer
//!   that reaches this point has the same missing peer, by the Overlap
//!   Lemma — Lemma 2.1), and phase 2 repeats the pattern on the
//!   reassigned share. Completion-mode peers instead broadcast the full
//!   array and terminate.
//!
//! A peer terminates the moment it knows every bit (Theorem 2.3 shows this
//! happens by the end of phase 2's stage 2). `Q ≤ ⌈n/k⌉ + ⌈n/(k(k−1))⌉`,
//! i.e. `O(n/k)`.

use dr_core::{BitArray, Context, PartialArray, PeerId, Protocol, ProtocolMessage};

/// Messages of Algorithm 1. Bit payloads are packed bitmaps over
/// *structural* index sets: the phase-1 share of peer `p` is
/// `{j : j ≡ p (mod k)}` and the phase-2 reassignment of the missing
/// peer's share is rank-based — both computable by every receiver, so no
/// indices travel on the wire.
#[derive(Debug, Clone)]
pub enum SingleCrashMsg {
    /// Stage-1 push of the sender's phase-1 share (packed, ascending).
    Share1 {
        /// Packed values of `{j : j ≡ sender (mod k)}`.
        values: BitArray,
    },
    /// Phase-2 push of the sender's reassigned share of `missing`'s bits.
    Share2 {
        /// The peer whose bits were reassigned (Lemma 2.1: globally
        /// agreed among reassigners, but carried for late receivers).
        missing: PeerId,
        /// Packed values of the sender's reassigned sub-share.
        values: BitArray,
    },
    /// Stage-2 question: "did you hear the bits of `missing`?"
    WhoHas {
        /// The asker's missing peer.
        missing: PeerId,
    },
    /// Positive stage-2 answer: the phase-1 share of `missing` (packed).
    Has {
        /// The peer whose bits are attached.
        missing: PeerId,
        /// Packed values of `missing`'s phase-1 share.
        values: BitArray,
    },
    /// Negative stage-2 answer: the sender lacks `missing`'s bits too.
    MeNeither {
        /// The peer the answer is about.
        missing: PeerId,
    },
    /// Completion-mode broadcast of the entire array.
    Full {
        /// The complete input array.
        bits: BitArray,
    },
}

impl ProtocolMessage for SingleCrashMsg {
    fn bit_len(&self) -> usize {
        match self {
            SingleCrashMsg::Share1 { values } => 8 + values.len(),
            SingleCrashMsg::Share2 { values, .. } => 24 + values.len(),
            SingleCrashMsg::WhoHas { .. } => 16,
            SingleCrashMsg::Has { values, .. } => 24 + values.len(),
            SingleCrashMsg::MeNeither { .. } => 16,
            SingleCrashMsg::Full { bits } => bits.len(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Phase 1: waiting for k−1 stage-1 shares.
    P1WaitShares,
    /// Phase 1: waiting for k−1 stage-2 answers about `missing`.
    P1WaitAnswers,
    /// Phase 2: waiting until every bit is known.
    P2WaitComplete,
    Done,
}

/// Algorithm 1 (§2.1): deterministic Download tolerating one crash.
///
/// # Examples
///
/// ```
/// use dr_core::{FaultModel, ModelParams, PeerId};
/// use dr_protocols::SingleCrashDownload;
/// use dr_sim::{CrashPlan, SimBuilder, StandardAdversary, UniformDelay};
///
/// let params = ModelParams::builder(120, 4)
///     .faults(FaultModel::Crash, 1)
///     .build()?;
/// let sim = SimBuilder::new(params)
///     .protocol(|_| SingleCrashDownload::new(120, 4))
///     .adversary(StandardAdversary::new(
///         UniformDelay::new(),
///         CrashPlan::before_event([PeerId(3)], 0),
///     ))
///     .build();
/// let input = sim.input().clone();
/// let report = sim.run().unwrap();
/// report.verify_downloads(&input).unwrap();
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
#[derive(Debug)]
pub struct SingleCrashDownload {
    n: usize,
    k: usize,
    me: usize,
    acc: PartialArray,
    out: Option<BitArray>,
    step: Step,
    /// Peers whose phase-1 share arrived (includes self).
    p1_heard: Vec<bool>,
    /// Phase-1 shares by owner (packed values), kept to answer `WhoHas`.
    p1_shares: Vec<Option<BitArray>>,
    /// The missing peer this peer asked about in stage 2.
    missing: Option<PeerId>,
    /// Peers whose stage-2 answer arrived (includes self).
    answered: Vec<bool>,
    /// Whether any stage-2 answer carried the missing peer's bits.
    got_bits: bool,
    /// Buffered `WhoHas` questions to answer after our own stage-2 wait.
    pending_questions: Vec<(PeerId, PeerId)>,
}

impl SingleCrashDownload {
    /// Creates an instance for `n` bits and `k ≥ 3` peers.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` (the Overlap Lemma argument needs two
    /// `(k−1)`-subsets of peers to intersect).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 3, "Algorithm 1 requires k >= 3 peers");
        SingleCrashDownload {
            n,
            k,
            me: usize::MAX,
            acc: PartialArray::new(n),
            out: None,
            step: Step::P1WaitShares,
            p1_heard: vec![false; k],
            p1_shares: vec![None; k],
            missing: None,
            answered: vec![false; k],
            got_bits: false,
            pending_questions: Vec::new(),
        }
    }

    /// Chaos-campaign invariant envelope for Algorithm 1 (Theorem 2.6:
    /// `Q ≤ n/k + n/(k(k−1)) + 2`): twice the bound plus constant slack
    /// on `Q`; time allows the two phases plus crash recovery.
    pub fn cost_envelope(n: usize, k: usize) -> crate::CostEnvelope {
        let theory = n as f64 / k as f64 + n as f64 / (k as f64 * (k as f64 - 1.0)) + 2.0;
        crate::CostEnvelope {
            q_max: (2.0 * theory).ceil() as u64 + 16,
            t_base: 16.0,
            t_per_release: 4.0,
            t_per_retry: 0.0,
            t_link_slack: 0.0,
        }
    }

    fn phase1_share(&self, peer: usize) -> Vec<usize> {
        (0..self.n).filter(|j| j % self.k == peer).collect()
    }

    /// The deterministic even reassignment of `m`'s bits over the other
    /// peers: the `r`-th bit of `m`'s (sorted) share goes to the `r mod
    /// (k−1)`-th peer of `P ∖ {m}`.
    fn phase2_share(&self, m: usize, peer: usize) -> Vec<usize> {
        let others: Vec<usize> = (0..self.k).filter(|&p| p != m).collect();
        self.phase1_share(m)
            .into_iter()
            .enumerate()
            .filter(|(r, _)| others[r % others.len()] == peer)
            .map(|(_, j)| j)
            .collect()
    }

    /// Learns a packed bitmap against an explicit index set; rejects
    /// arity mismatches.
    fn learn_packed(&mut self, set: &[usize], values: &BitArray) -> bool {
        if set.len() != values.len() {
            return false;
        }
        for (r, &j) in set.iter().enumerate() {
            self.acc.learn(j, values.get(r));
        }
        true
    }

    /// Terminates if every bit is known. Every termination broadcasts the
    /// full array first (the Claim 2 pattern): a silently-halting peer
    /// could otherwise starve others still waiting for its stage-2
    /// answers. Each peer broadcasts at most once.
    fn finish_if_complete(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) -> bool {
        if self.out.is_none() && self.acc.is_complete() {
            let bits = self.acc.clone().into_complete();
            // The retained copy is an O(1) shared-buffer clone; the
            // broadcast takes the array by move.
            self.out = Some(bits.clone());
            ctx.broadcast(SingleCrashMsg::Full { bits });
            self.step = Step::Done;
            true
        } else {
            false
        }
    }

    fn answer_question(&self, asker_missing: PeerId) -> SingleCrashMsg {
        match &self.p1_shares[asker_missing.index()] {
            Some(values) => SingleCrashMsg::Has {
                missing: asker_missing,
                values: values.clone(),
            },
            None => SingleCrashMsg::MeNeither {
                missing: asker_missing,
            },
        }
    }

    /// Packs the known values over an index set (all must be known).
    fn pack(&self, set: &[usize]) -> BitArray {
        BitArray::from_fn(set.len(), |r| {
            self.acc.get(set[r]).expect("bit known before packing")
        })
    }

    fn flush_pending_questions(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) {
        let pending = std::mem::take(&mut self.pending_questions);
        for (asker, m) in pending {
            let reply = self.answer_question(m);
            ctx.send(asker, reply);
        }
    }

    /// Checks the phase-1 stage-2 condition (`k − 1` shares heard).
    fn try_advance_from_wait_shares(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) {
        if self.step != Step::P1WaitShares {
            return;
        }
        let heard = self.p1_heard.iter().filter(|&&h| h).count();
        if heard < self.k - 1 {
            return;
        }
        // Our stage-2 wait is over: we may now answer buffered questions.
        if heard == self.k {
            // Heard everyone: completion mode, straight to phase 2.
            self.step = Step::P2WaitComplete;
            self.flush_pending_questions(ctx);
            self.enter_phase2(ctx);
        } else {
            let m = PeerId(
                self.p1_heard
                    .iter()
                    .position(|&h| !h)
                    .expect("exactly one peer missing"),
            );
            self.missing = Some(m);
            self.step = Step::P1WaitAnswers;
            self.flush_pending_questions(ctx);
            ctx.broadcast(SingleCrashMsg::WhoHas { missing: m });
            // Our own answer about m is "me neither" by definition.
            self.answered[ctx.me().index()] = true;
            self.try_advance_from_wait_answers(ctx);
        }
    }

    /// Checks the phase-1 stage-3 condition (`k − 1` answers collected).
    fn try_advance_from_wait_answers(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) {
        if self.step != Step::P1WaitAnswers {
            return;
        }
        let count = self.answered.iter().filter(|&&a| a).count();
        if count < self.k - 1 {
            return;
        }
        self.step = Step::P2WaitComplete;
        self.enter_phase2(ctx);
    }

    fn enter_phase2(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) {
        if self.finish_if_complete(ctx) {
            return;
        }
        if self.got_bits {
            // Bits arrived in stage 3 but something is still unknown
            // (possible only with partial adversarial shares): query the
            // remainder directly, then terminate in completion mode.
            let unknown: Vec<usize> = self.acc.unknown_iter().collect();
            for j in unknown {
                let v = ctx.query(j);
                self.acc.learn(j, v);
            }
            self.finish_if_complete(ctx);
            return;
        }
        // All answers were "me neither": query our reassigned share of the
        // missing peer's bits and push it.
        let m = self
            .missing
            .expect("missing peer set before phase 2")
            .index();
        let mine = self.phase2_share(m, ctx.me().index());
        for &j in &mine {
            if !self.acc.is_known(j) {
                let v = ctx.query(j);
                self.acc.learn(j, v);
            }
        }
        let values = self.pack(&mine);
        ctx.broadcast(SingleCrashMsg::Share2 {
            missing: PeerId(m),
            values,
        });
        self.finish_if_complete(ctx);
    }
}

impl Protocol for SingleCrashDownload {
    type Msg = SingleCrashMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<SingleCrashMsg>) {
        self.me = ctx.me().index();
        let mine = self.phase1_share(self.me);
        for &j in &mine {
            let v = ctx.query(j);
            self.acc.learn(j, v);
        }
        let values = self.pack(&mine);
        self.p1_heard[self.me] = true;
        self.p1_shares[self.me] = Some(values.clone());
        ctx.broadcast(SingleCrashMsg::Share1 { values });
        self.try_advance_from_wait_shares(ctx);
    }

    fn on_message(
        &mut self,
        from: PeerId,
        msg: SingleCrashMsg,
        ctx: &mut dyn Context<SingleCrashMsg>,
    ) {
        if self.step == Step::Done {
            return;
        }
        match msg {
            SingleCrashMsg::Share1 { values } => {
                let set = self.phase1_share(from.index());
                if self.learn_packed(&set, &values) {
                    self.p1_heard[from.index()] = true;
                    self.p1_shares[from.index()] = Some(values);
                    // A late phase-1 share from our missing peer also
                    // resolves stage 3.
                    if self.missing == Some(from) {
                        self.got_bits = true;
                    }
                    self.try_advance_from_wait_shares(ctx);
                }
                if !self.finish_if_complete(ctx) {
                    self.try_advance_from_wait_answers(ctx);
                }
            }
            SingleCrashMsg::Share2 { missing, values } => {
                if missing.index() < self.k {
                    let set = self.phase2_share(missing.index(), from.index());
                    self.learn_packed(&set, &values);
                }
                if !self.finish_if_complete(ctx) {
                    self.try_advance_from_wait_answers(ctx);
                }
            }
            SingleCrashMsg::WhoHas { missing } => {
                // Delay the answer until our own stage-2 wait is over.
                if self.step == Step::P1WaitShares {
                    self.pending_questions.push((from, missing));
                } else {
                    let reply = self.answer_question(missing);
                    ctx.send(from, reply);
                }
            }
            SingleCrashMsg::Has { missing, values } => {
                if missing.index() < self.k {
                    let set = self.phase1_share(missing.index());
                    if self.learn_packed(&set, &values) && self.missing == Some(missing) {
                        self.answered[from.index()] = true;
                        self.got_bits = true;
                    }
                }
                if !self.finish_if_complete(ctx) {
                    self.try_advance_from_wait_answers(ctx);
                }
            }
            SingleCrashMsg::MeNeither { missing } => {
                if self.missing == Some(missing) {
                    self.answered[from.index()] = true;
                }
                self.try_advance_from_wait_answers(ctx);
            }
            SingleCrashMsg::Full { bits } => {
                if bits.len() == self.n {
                    self.acc.learn_slice(0, &bits);
                }
                self.finish_if_complete(ctx);
            }
        }
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{FaultModel, ModelParams};
    use dr_sim::{
        CrashDirective, CrashPlan, CrashTrigger, SimBuilder, StandardAdversary, UniformDelay,
    };

    fn params(n: usize, k: usize) -> ModelParams {
        ModelParams::builder(n, k)
            .faults(FaultModel::Crash, 1)
            .build()
            .unwrap()
    }

    fn run_with_plan(
        seed: u64,
        n: usize,
        k: usize,
        plan: CrashPlan,
    ) -> (dr_sim::RunReport, BitArray) {
        let sim = SimBuilder::new(params(n, k))
            .seed(seed)
            .protocol(move |_| SingleCrashDownload::new(n, k))
            .adversary(StandardAdversary::new(UniformDelay::new(), plan))
            .build();
        let input = sim.input().clone();
        (sim.run().expect("run must not deadlock"), input)
    }

    #[test]
    fn no_crash_completes_with_balanced_queries() {
        let (report, input) = run_with_plan(1, 120, 4, CrashPlan::none());
        report.verify_downloads(&input).unwrap();
        // Without a crash, stage 2 may still miss one slow peer, so the
        // worst case is the n/k share plus the n/(k(k-1)) reassigned share.
        let bound = (120 / 4) + 120 / (4 * 3) + 2;
        assert!(report.max_nonfaulty_queries <= bound as u64);
    }

    #[test]
    fn crash_before_start_is_tolerated() {
        for victim in 0..4 {
            let plan = CrashPlan::before_event([PeerId(victim)], 0);
            let (report, input) = run_with_plan(7 + victim as u64, 96, 4, plan);
            report.verify_downloads(&input).unwrap();
            assert_eq!(report.crashed.len(), 1);
        }
    }

    #[test]
    fn crash_mid_broadcast_is_tolerated() {
        // Victim sends its phase-1 share to some peers then dies.
        for keep in 0..3 {
            let mut plan = CrashPlan::none();
            plan.push(CrashDirective {
                peer: PeerId(1),
                trigger: CrashTrigger::DuringSend { event: 0, keep },
            });
            let (report, input) = run_with_plan(20 + keep as u64, 60, 4, plan);
            report.verify_downloads(&input).unwrap();
        }
    }

    #[test]
    fn crash_late_in_phase_two_is_tolerated() {
        let mut plan = CrashPlan::none();
        plan.push(CrashDirective {
            peer: PeerId(2),
            trigger: CrashTrigger::BeforeEvent(5),
        });
        let (report, input) = run_with_plan(3, 80, 5, plan);
        report.verify_downloads(&input).unwrap();
    }

    #[test]
    fn query_complexity_is_near_optimal() {
        let n = 1200;
        let k = 8;
        let (report, input) = run_with_plan(5, n, k, CrashPlan::before_event([PeerId(0)], 0));
        report.verify_downloads(&input).unwrap();
        let bound = n / k + n / (k * (k - 1)) + 2;
        assert!(
            report.max_nonfaulty_queries <= bound as u64,
            "Q = {} exceeds bound {bound}",
            report.max_nonfaulty_queries
        );
    }

    #[test]
    fn many_seeds_never_deadlock() {
        for seed in 0..20 {
            let victim = PeerId((seed as usize) % 5);
            let plan = CrashPlan::before_event([victim], seed % 7);
            let (report, input) = run_with_plan(seed, 50, 5, plan);
            report.verify_downloads(&input).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_two_peers() {
        let _ = SingleCrashDownload::new(10, 2);
    }

    #[test]
    fn phase2_share_partitions_missing_bits() {
        let p = SingleCrashDownload::new(100, 5);
        let m = 2;
        let mut all: Vec<usize> = Vec::new();
        for peer in 0..5 {
            if peer == m {
                assert!(p.phase2_share(m, peer).is_empty());
                continue;
            }
            all.extend(p.phase2_share(m, peer));
        }
        all.sort_unstable();
        assert_eq!(all, p.phase1_share(m));
    }
}
