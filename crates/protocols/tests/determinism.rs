//! Iteration-order property tests: protocol state built from the same
//! facts in *any* insertion order must behave identically, and full runs
//! must fingerprint identically on re-execution.
//!
//! These are the regression guards behind the ordered-collection sweep
//! (`dr-lint` rule `unordered-collections`): before it, `HashMap` state
//! in the committee tally and the τ-frequent table meant a per-instance
//! random hash seed sat one iteration away from replay divergence.

use dr_core::{BitArray, Context, PeerId, Protocol, SegmentId};
use dr_protocols::byz::{in_committee, FrequencyTable, VoteBatch};
use dr_protocols::{CommitteeDownload, TwoCycleDownload};
use dr_sim::SimBuilder;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngCore, SeedableRng};

/// Deterministic Fisher–Yates permutation of `items` from a `u64` seed
/// (the vendored proptest has no `prop_shuffle`, so we roll our own).
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<T> = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Minimal honest context: answers queries from a fixed input, drops
/// outgoing messages, seeds the RNG from the peer ID.
struct FixedCtx {
    me: PeerId,
    k: usize,
    input: BitArray,
    rng: StdRng,
}

impl<M: dr_core::ProtocolMessage> Context<M> for FixedCtx {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.k
    }
    fn input_len(&self) -> usize {
        self.input.len()
    }
    fn send(&mut self, _to: PeerId, _msg: M) {}
    fn query(&mut self, index: usize) -> bool {
        self.input.get(index)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }
}

/// A truthful vote batch for `sender`: its committee bits in ascending
/// index order, read straight from the input.
fn truthful_batch(sender: PeerId, input: &BitArray, k: usize, c: usize) -> VoteBatch {
    let values: Vec<bool> = (0..input.len())
        .filter(|&j| in_committee(j, k, c, sender))
        .map(|j| input.get(j))
        .collect();
    VoteBatch {
        values: BitArray::from_bools(&values),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frequency_table_is_insertion_order_invariant(
        claims in prop::collection::vec(
            (0usize..12, 0usize..6, 0u8..5, any::<bool>()),
            1..60,
        ),
        perm_seed in any::<u64>(),
        threshold in 1usize..5,
    ) {
        // Dedupe on (sender, segment): the table's first-claim-wins rule
        // means duplicate pairs are genuinely order-dependent — the
        // *protocol* only ever feeds one claim per (sender, segment).
        let mut unique: Vec<(PeerId, SegmentId, BitArray)> = Vec::new();
        for (sender, segment, shape, bit) in claims {
            let sender = PeerId(sender);
            let segment = SegmentId(segment);
            if unique.iter().any(|(p, s, _)| *p == sender && *s == segment) {
                continue;
            }
            let string = BitArray::from_fn(4, |i| (i as u8) < shape || bit);
            unique.push((sender, segment, string));
        }

        let mut forward = FrequencyTable::new();
        for (p, s, b) in &unique {
            forward.record(*p, *s, b.clone());
        }
        let mut permuted = FrequencyTable::new();
        for (p, s, b) in shuffled(&unique, perm_seed) {
            permuted.record(p, s, b);
        }

        for seg in 0..6 {
            let seg = SegmentId(seg);
            prop_assert_eq!(forward.frequent(seg, threshold), permuted.frequent(seg, threshold));
            prop_assert_eq!(forward.distinct(seg), permuted.distinct(seg));
            prop_assert_eq!(forward.received(seg), permuted.received(seg));
        }
        prop_assert_eq!(forward.distinct_senders(), permuted.distinct_senders());
    }

    #[test]
    fn committee_tally_is_delivery_order_invariant(
        input_seed in any::<u64>(),
        perm_seed in any::<u64>(),
        t in 0usize..3,
    ) {
        let (n, k) = (40usize, 7usize);
        let c = 2 * t + 1;
        let input = BitArray::from_fn(n, |i| (input_seed >> (i % 64)) & 1 == 1);
        let batches: Vec<(PeerId, VoteBatch)> = (0..k)
            .map(PeerId)
            .map(|p| (p, truthful_batch(p, &input, k, c)))
            .collect();

        let run = |order: &[(PeerId, VoteBatch)]| {
            let mut proto = CommitteeDownload::new(n, k, t);
            let mut ctx = FixedCtx {
                me: PeerId(k - 1),
                k,
                input: input.clone(),
                rng: StdRng::seed_from_u64(1),
            };
            proto.on_start(&mut ctx);
            for (from, batch) in order {
                proto.on_message(*from, batch.clone(), &mut ctx);
            }
            proto.output().cloned()
        };

        let forward = run(&batches);
        let permuted = run(&shuffled(&batches, perm_seed));
        prop_assert_eq!(forward.clone(), permuted);
        prop_assert_eq!(forward, Some(input));
    }

    #[test]
    fn committee_run_fingerprint_is_reproducible(seed in any::<u64>(), t in 0usize..3) {
        // Two fresh executions of the same seeded simulation must agree
        // bit-for-bit. Before the ordered-collection sweep, every map in
        // protocol state carried a fresh random hash seed per run — any
        // iteration-order leak shows up here as a fingerprint mismatch.
        let (n, k) = (48usize, 5usize);
        let fp = |seed| {
            let sim = SimBuilder::new(dr_core::ModelParams::builder(n, k)
                    .faults(dr_core::FaultModel::Byzantine, t)
                    .build()
                    .unwrap())
                .seed(seed)
                .protocol(move |_| CommitteeDownload::new(n, k, t))
                .build();
            let input = sim.input().clone();
            let report = sim.run().unwrap();
            report.verify_downloads(&input).unwrap();
            report.fingerprint()
        };
        prop_assert_eq!(fp(seed), fp(seed));
    }

    #[test]
    fn two_cycle_run_fingerprint_is_reproducible(seed in any::<u64>(), b in 0usize..3) {
        // The 2-cycle protocol exercises the τ-frequent table (the
        // "frequent-element" state) on every honest peer.
        let (n, k) = (192usize, 7usize);
        let fp = |seed| {
            let sim = SimBuilder::new(dr_core::ModelParams::builder(n, k)
                    .faults(dr_core::FaultModel::Byzantine, b)
                    .build()
                    .unwrap())
                .seed(seed)
                .protocol(move |_| TwoCycleDownload::new(n, k, b))
                .build();
            let input = sim.input().clone();
            let report = sim.run().unwrap();
            report.verify_downloads(&input).unwrap();
            report.fingerprint()
        };
        prop_assert_eq!(fp(seed), fp(seed));
    }
}
