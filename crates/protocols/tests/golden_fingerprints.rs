//! Golden same-seed fingerprints, recorded against the simulator as it
//! stood *before* the zero-copy/slab hot-loop rewrite.
//!
//! These constants pin the exact observable behaviour of every protocol
//! family — outputs, fault sets, per-peer query counts, Q/T/M metrics,
//! event counts, quiescence releases (everything
//! [`RunReport::fingerprint`] digests) — for a fixed grid of seeds. The
//! hot-loop rewrite (shared-buffer `BitArray` payloads, slab-backed event
//! queue, incremental termination counter) claims *bit-identical*
//! executions; any accidental behaviour change, however subtle, lands
//! here as a fingerprint mismatch against pre-rewrite reality rather
//! than against the rewrite itself.
//!
//! To regenerate after an *intentional* semantic change (never for a
//! perf-only change):
//!
//! ```text
//! cargo test -p dr-protocols --test golden_fingerprints -- --ignored print_goldens --nocapture
//! ```

use dr_core::{FaultModel, ModelParams, PeerId, ProtocolMessage, SegmentId, Segmentation};
use dr_protocols::byz::strategies::{CollusionGroup, Equivocator, RandomNoise};
use dr_protocols::{
    CommitteeDownload, CrashMultiDownload, MultiCycleDownload, SingleCrashDownload,
    TwoCycleDownload, TwoCyclePlan,
};
use dr_sim::{
    CrashPlan, RecordingAdversary, ReplayAdversary, RunReport, SilentAgent, SimBuilder,
    StandardAdversary, UniformDelay,
};

/// The seeds every golden case is recorded under.
const SEEDS: [u64; 3] = [1, 42, 0xD0DD];

/// The per-run observables a golden row pins: the full fingerprint plus
/// the headline metrics (Q, T, M) spelled out so a mismatch names the
/// deviating quantity instead of only the digest.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    fingerprint: u64,
    q: u64,
    t_ticks: u64,
    msgs: u64,
    msg_bits: u64,
    events: u64,
    releases: u64,
}

fn golden_of(report: &RunReport) -> Golden {
    Golden {
        fingerprint: report.fingerprint(),
        q: report.max_nonfaulty_queries,
        t_ticks: report.virtual_time_ticks,
        msgs: report.messages_sent,
        msg_bits: report.message_bits,
        events: report.events,
        releases: report.quiescence_releases,
    }
}

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .message_bits(1024)
        .build()
        .expect("valid crash params")
}

fn byz_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, b)
        .build()
        .expect("valid byz params")
}

fn verified(sim: dr_sim::Simulation<impl ProtocolMessage>) -> RunReport {
    let input = sim.input().clone();
    let report = sim.run().expect("run must terminate");
    report
        .verify_downloads(&input)
        .expect("download specification violated");
    report
}

/// Algorithm 1 (single-crash) with peer 1 felled mid-run.
fn run_crash_single(seed: u64, shards: usize) -> RunReport {
    let (n, k) = (60, 4);
    let plan = CrashPlan::before_event([PeerId(1)], seed % 4);
    let sim = SimBuilder::new(crash_params(n, k, 1))
        .seed(seed)
        .shards(shards)
        .protocol(move |_| SingleCrashDownload::new(n, k))
        .adversary(StandardAdversary::new(UniformDelay::new(), plan))
        .build();
    verified(sim)
}

/// Algorithm 2 (multi-crash) with 3 of budget 4 crashed.
fn run_crash_multi(seed: u64, shards: usize) -> RunReport {
    let (n, k, b, crashes) = (128, 8, 4, 3);
    let victims: Vec<PeerId> = (0..crashes).map(PeerId).collect();
    let plan = CrashPlan::before_event(victims, 1 + seed % 3);
    let sim = SimBuilder::new(crash_params(n, k, b))
        .seed(seed)
        .shards(shards)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(StandardAdversary::new(UniformDelay::new(), plan))
        .build();
    verified(sim)
}

/// Deterministic committee protocol with one silent Byzantine peer.
fn run_committee(seed: u64, shards: usize) -> RunReport {
    let (n, k, t) = (48, 7, 2);
    let builder = SimBuilder::new(byz_params(n, k, t))
        .seed(seed)
        .shards(shards)
        .protocol(move |_| CommitteeDownload::new(n, k, t))
        .byzantine(PeerId(0), SilentAgent::new());
    verified(builder.build())
}

/// 2-cycle protocol in the sampled regime with a mixed Byzantine slate
/// (equivocator, colluders, noise) targeting the chosen segmentation.
fn run_two_cycle(seed: u64, shards: usize) -> RunReport {
    let (n, k, b) = (4096, 96, 6);
    let builder = SimBuilder::new(byz_params(n, k, b))
        .seed(seed)
        .shards(shards)
        .protocol(move |_| TwoCycleDownload::new(n, k, b));
    let (seg, tau) = match TwoCyclePlan::choose(n, k, b) {
        TwoCyclePlan::Sampled {
            segments,
            threshold,
        } => (Segmentation::new(n, segments), threshold),
        TwoCyclePlan::Naive => panic!("golden grid must exercise the sampled regime"),
    };
    let mut builder = builder;
    for i in 0..b {
        builder = match i % 3 {
            0 => builder.byzantine(PeerId(i), Equivocator::new(seg, SegmentId(i % seg.count()))),
            1 => {
                let group = i / tau.max(1);
                builder.byzantine(
                    PeerId(i),
                    CollusionGroup::new(seg, SegmentId(group % seg.count()), group as u64),
                )
            }
            _ => builder.byzantine(PeerId(i), RandomNoise::new(seg)),
        };
    }
    verified(builder.build())
}

/// Multi-cycle protocol with a silent Byzantine slate.
fn run_multi_cycle(seed: u64, shards: usize) -> RunReport {
    let (n, k, b) = (4096, 96, 8);
    let mut builder = SimBuilder::new(byz_params(n, k, b))
        .seed(seed)
        .shards(shards)
        .protocol(move |_| MultiCycleDownload::new(n, k, b));
    for i in 0..b {
        builder = builder.byzantine(PeerId(i), SilentAgent::new());
    }
    verified(builder.build())
}

/// A seeded single-run driver for one golden case, parameterized by the
/// pump shard count (1 = the serial pump the goldens were recorded on).
type CaseRunner = fn(u64, usize) -> RunReport;

/// The golden grid: (case name, runner).
fn cases() -> Vec<(&'static str, CaseRunner)> {
    vec![
        ("crash_single", run_crash_single as CaseRunner),
        ("crash_multi", run_crash_multi),
        ("committee", run_committee),
        ("two_cycle", run_two_cycle),
        ("multi_cycle", run_multi_cycle),
    ]
}

/// Recorded pre-rewrite values, one row per (case, seed), in `cases()` ×
/// `SEEDS` order. Regenerate only for intentional semantic changes (see
/// module docs).
const GOLDENS: &[(&str, u64, Golden)] = &[
    (
        "crash_single",
        1,
        Golden {
            fingerprint: 0x9386ce27c91b0216,
            q: 15,
            t_ticks: 1240,
            msgs: 32,
            msg_bits: 1015,
            events: 15,
            releases: 0,
        },
    ),
    (
        "crash_single",
        42,
        Golden {
            fingerprint: 0x73198e1f08b5058d,
            q: 15,
            t_ticks: 1426,
            msgs: 31,
            msg_bits: 999,
            events: 15,
            releases: 0,
        },
    ),
    (
        "crash_single",
        53469,
        Golden {
            fingerprint: 0x1da63a936a037bc5,
            q: 15,
            t_ticks: 1431,
            msgs: 27,
            msg_bits: 912,
            events: 14,
            releases: 0,
        },
    ),
    (
        "crash_multi",
        1,
        Golden {
            fingerprint: 0x3f71e89ab90f6f57,
            q: 16,
            t_ticks: 2683,
            msgs: 177,
            msg_bits: 14424,
            events: 96,
            releases: 0,
        },
    ),
    (
        "crash_multi",
        42,
        Golden {
            fingerprint: 0xc69c628d07a3d892,
            q: 32,
            t_ticks: 7718,
            msgs: 387,
            msg_bits: 30954,
            events: 242,
            releases: 0,
        },
    ),
    (
        "crash_multi",
        53469,
        Golden {
            fingerprint: 0x43d21c48d49e797a,
            q: 32,
            t_ticks: 8259,
            msgs: 386,
            msg_bits: 30808,
            events: 245,
            releases: 0,
        },
    ),
    (
        "committee",
        1,
        Golden {
            fingerprint: 0x76e232984b741394,
            q: 35,
            t_ticks: 1369,
            msgs: 36,
            msg_bits: 1230,
            events: 35,
            releases: 0,
        },
    ),
    (
        "committee",
        42,
        Golden {
            fingerprint: 0x19317bf14263d3f0,
            q: 35,
            t_ticks: 1552,
            msgs: 36,
            msg_bits: 1230,
            events: 35,
            releases: 0,
        },
    ),
    (
        "committee",
        53469,
        Golden {
            fingerprint: 0xe99205b016f3e690,
            q: 35,
            t_ticks: 1510,
            msgs: 36,
            msg_bits: 1230,
            events: 36,
            releases: 0,
        },
    ),
    (
        "two_cycle",
        1,
        Golden {
            fingerprint: 0xeb460bf5611d0015,
            q: 1366,
            t_ticks: 2875,
            msgs: 17100,
            msg_bits: 12494590,
            events: 8660,
            releases: 0,
        },
    ),
    (
        "two_cycle",
        42,
        Golden {
            fingerprint: 0xc21249b195c23f04,
            q: 1366,
            t_ticks: 2845,
            msgs: 17100,
            msg_bits: 12494970,
            events: 8657,
            releases: 0,
        },
    ),
    (
        "two_cycle",
        53469,
        Golden {
            fingerprint: 0xa66ba89e979e1604,
            q: 1366,
            t_ticks: 2831,
            msgs: 17100,
            msg_bits: 12494685,
            events: 8658,
            releases: 0,
        },
    ),
    (
        "multi_cycle",
        1,
        Golden {
            fingerprint: 0x13805907bdca93c9,
            q: 2048,
            t_ticks: 4089,
            msgs: 25080,
            msg_bits: 17923840,
            events: 8455,
            releases: 0,
        },
    ),
    (
        "multi_cycle",
        42,
        Golden {
            fingerprint: 0x48ef1a40ac88fc60,
            q: 2048,
            t_ticks: 4087,
            msgs: 25080,
            msg_bits: 17923840,
            events: 8456,
            releases: 0,
        },
    ),
    (
        "multi_cycle",
        53469,
        Golden {
            fingerprint: 0xceb1a69bc21fa037,
            q: 2048,
            t_ticks: 4084,
            msgs: 25080,
            msg_bits: 17923840,
            events: 8456,
            releases: 0,
        },
    ),
];

#[test]
fn fingerprints_match_pre_rewrite_goldens() {
    let mut i = 0;
    for (name, run) in cases() {
        for seed in SEEDS {
            let (g_name, g_seed, ref golden) = GOLDENS[i];
            assert_eq!((g_name, g_seed), (name, seed), "golden table out of sync");
            let got = golden_of(&run(seed, 1));
            assert_eq!(
                &got, golden,
                "{name} seed={seed}: run diverged from pre-rewrite golden"
            );
            i += 1;
        }
    }
    assert_eq!(i, GOLDENS.len());
}

/// The sharded pump must reproduce the serial goldens *bit-identically*:
/// every protocol family, every pinned seed, checked against the very
/// same pre-rewrite table — not merely against a fresh serial run.
#[test]
fn fingerprints_match_goldens_under_sharded_pump() {
    for shards in [3, 8] {
        let mut i = 0;
        for (name, run) in cases() {
            for seed in SEEDS {
                let (g_name, g_seed, ref golden) = GOLDENS[i];
                assert_eq!((g_name, g_seed), (name, seed), "golden table out of sync");
                let got = golden_of(&run(seed, shards));
                assert_eq!(
                    &got, golden,
                    "{name} seed={seed} shards={shards}: sharded pump diverged from golden"
                );
                i += 1;
            }
        }
        assert_eq!(i, GOLDENS.len());
    }
}

/// Record → replay bit-identity on the golden grid: a schedule recorded
/// from a live run must replay to the very same fingerprint (and that
/// fingerprint is already pinned by the table above, so the replay path
/// is transitively pinned to pre-rewrite behaviour too).
#[test]
fn recorded_schedules_replay_bit_identically() {
    for seed in SEEDS {
        let (n, k, t) = (48, 7, 2);
        let (recorder, handle) = RecordingAdversary::new(StandardAdversary::benign());
        let sim = SimBuilder::new(byz_params(n, k, t))
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t))
            .byzantine(PeerId(0), SilentAgent::new())
            .adversary(recorder)
            .build();
        let recorded = verified(sim);
        let trace = handle.take();
        let sim = SimBuilder::new(byz_params(n, k, t))
            .seed(seed)
            .protocol(move |_| CommitteeDownload::new(n, k, t))
            .byzantine(PeerId(0), SilentAgent::new())
            .adversary(ReplayAdversary::new(trace))
            .build();
        let replayed = verified(sim);
        assert_eq!(
            recorded.fingerprint(),
            replayed.fingerprint(),
            "seed={seed}: replay diverged from recording"
        );
    }
}

/// Generator: prints the `GOLDENS` table body. Run against the
/// pre-rewrite tree (or after an intentional semantic change) and paste
/// the output into `GOLDENS` above.
#[test]
#[ignore = "generator for the GOLDENS table"]
fn print_goldens() {
    for (name, run) in cases() {
        for seed in SEEDS {
            let g = golden_of(&run(seed, 1));
            println!(
                "    (\"{name}\", {seed}, Golden {{ fingerprint: 0x{:016x}, q: {}, t_ticks: {}, \
                 msgs: {}, msg_bits: {}, events: {}, releases: {} }}),",
                g.fingerprint, g.q, g.t_ticks, g.msgs, g.msg_bits, g.events, g.releases
            );
        }
    }
}
