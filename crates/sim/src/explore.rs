//! Exhaustive schedule exploration: bounded model checking of message
//! orderings.
//!
//! The discrete-event simulator samples one adversarial schedule per
//! seed. For *small* instances this module goes further: it enumerates
//! **every** order in which concurrently pending events can be delivered
//! (up to a schedule budget), re-executing the protocol from scratch
//! along each branch, and checks the Download specification on every
//! complete schedule. A protocol that passes an exhaustive exploration is
//! correct under *every* asynchronous schedule of that instance — the
//! strongest evidence short of a proof, and exactly the quantifier
//! ("for every execution") the paper's theorems use.
//!
//! Crash choices are part of the input (fixed per exploration); the
//! explored nondeterminism is the delivery order. Because schedules are
//! enumerated depth-first with re-execution, the cost is
//! `O(schedules × events)`; use tiny instances (`k ≤ 4`, `n ≤ 32`) and
//! the [`ExploreConfig::max_schedules`] budget.

use crate::agent::Agent;
use dr_core::{ArraySource, BitArray, Context, PeerId, ProtocolMessage, SharedSource};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Number of peers.
    pub k: usize,
    /// The input array to download.
    pub input: BitArray,
    /// Peers crashed from the start (they never execute; the harshest
    /// crash pattern, per the paper equivalent to crashing before the
    /// first cycle).
    pub crashed: Vec<PeerId>,
    /// Stop after this many complete schedules (0 = unlimited).
    pub max_schedules: u64,
    /// Abort any single schedule after this many deliveries (livelock
    /// guard).
    pub max_events_per_schedule: u64,
    /// Seed for the per-peer RNGs (randomized protocols explore one coin
    /// sequence per seed).
    pub seed: u64,
}

impl ExploreConfig {
    /// A default exploration for `k` peers over `input`.
    pub fn new(k: usize, input: BitArray) -> Self {
        ExploreConfig {
            k,
            input,
            crashed: Vec::new(),
            max_schedules: 100_000,
            max_events_per_schedule: 100_000,
            seed: 0,
        }
    }

    /// Sets the crashed-from-start peers.
    pub fn with_crashed(mut self, crashed: Vec<PeerId>) -> Self {
        self.crashed = crashed;
        self
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Complete schedules checked.
    pub schedules: u64,
    /// Whether the enumeration covered every schedule (false if the
    /// budget was exhausted first).
    pub exhaustive: bool,
    /// The first counterexample found, if any.
    pub counterexample: Option<Counterexample>,
}

/// A schedule on which the Download specification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Indices (into the pending set at each step) of the chosen events.
    pub choices: Vec<usize>,
    /// What went wrong.
    pub violation: String,
}

struct PendingEvent<M> {
    from: PeerId,
    to: PeerId,
    msg: M,
}

struct ExploreCtx<'a, M> {
    me: PeerId,
    k: usize,
    n: usize,
    handle: dr_core::SourceHandle,
    rng: &'a mut StdRng,
    outbox: Vec<(PeerId, M)>,
}

impl<M: ProtocolMessage> Context<M> for ExploreCtx<'_, M> {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.k
    }
    fn input_len(&self) -> usize {
        self.n
    }
    fn send(&mut self, to: PeerId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn query(&mut self, index: usize) -> bool {
        self.handle.query(index)
    }
    fn query_range(&mut self, range: std::ops::Range<usize>) -> BitArray {
        // Bulk path: one meter update + word-level copy instead of the
        // default per-bit loop. Identical cost accounting and results.
        self.handle.query_range(range)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// Explores every delivery order of the instance, re-running the factory-
/// built protocol along each branch.
///
/// Returns a report with the first counterexample, if any. Protocols
/// must be deterministic given their per-peer RNG stream (all `Protocol`
/// implementations in this workspace are).
pub fn explore<M, P, F>(config: &ExploreConfig, factory: F) -> ExploreReport
where
    M: ProtocolMessage,
    P: Agent<M> + 'static,
    F: Fn(PeerId) -> P,
{
    let mut state = Search {
        config,
        factory: &factory,
        schedules: 0,
        budget_hit: false,
        counterexample: None,
        _msg: std::marker::PhantomData,
    };
    state.dfs(&mut Vec::new());
    ExploreReport {
        schedules: state.schedules,
        exhaustive: !state.budget_hit,
        counterexample: state.counterexample,
    }
}

struct Search<'a, M, P, F>
where
    M: ProtocolMessage,
    P: Agent<M>,
    F: Fn(PeerId) -> P,
{
    config: &'a ExploreConfig,
    factory: &'a F,
    schedules: u64,
    budget_hit: bool,
    counterexample: Option<Counterexample>,
    _msg: std::marker::PhantomData<M>,
}

impl<M, P, F> Search<'_, M, P, F>
where
    M: ProtocolMessage,
    P: Agent<M>,
    F: Fn(PeerId) -> P,
{
    /// Replays `prefix` and returns the number of then-pending events,
    /// or records a terminal outcome. `None` means the schedule ended
    /// (success or failure recorded); `Some(p)` means `p` pending events
    /// need further branching.
    fn replay(&mut self, prefix: &[usize]) -> Option<usize> {
        let cfg = self.config;
        let k = cfg.k;
        let n = cfg.input.len();
        let source = SharedSource::new(ArraySource::new(cfg.input.clone()), k);
        let mut rngs: Vec<StdRng> = (0..k)
            .map(|p| StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37).wrapping_add(p as u64)))
            .collect();
        let mut agents: Vec<P> = (0..k).map(|p| (self.factory)(PeerId(p))).collect();
        let alive = |p: PeerId| !cfg.crashed.contains(&p);
        let mut pending: Vec<PendingEvent<M>> = Vec::new();

        // Start every live peer (in ID order: starts are also events we
        // could explore, but protocols here are start-order independent;
        // message order is the interesting nondeterminism).
        for p in 0..k {
            if !alive(PeerId(p)) {
                continue;
            }
            let mut ctx = ExploreCtx {
                me: PeerId(p),
                k,
                n,
                handle: source.handle(PeerId(p)),
                rng: &mut rngs[p],
                outbox: Vec::new(),
            };
            agents[p].on_start(&mut ctx);
            for (to, msg) in ctx.outbox {
                pending.push(PendingEvent {
                    from: PeerId(p),
                    to,
                    msg,
                });
            }
        }

        // Invariant: before every choice, the pending set is pruned of
        // undeliverable events (to crashed or terminated peers), so the
        // indices seen by the DFS and by this replay always agree.
        let prune = |pending: &mut Vec<PendingEvent<M>>, agents: &[P]| {
            pending.retain(|ev| alive(ev.to) && !agents[ev.to.index()].is_terminated());
        };
        prune(&mut pending, &agents);

        let mut events = 0u64;
        for (depth, &choice) in prefix.iter().enumerate() {
            if choice >= pending.len() {
                // Stale branch (shorter pending set than when scheduled);
                // treat as schedule end without verdict.
                debug_assert!(false, "invalid replay choice at depth {depth}");
                return None;
            }
            let ev = pending.swap_remove(choice);
            events += 1;
            if events > cfg.max_events_per_schedule {
                self.counterexample = Some(Counterexample {
                    choices: prefix[..=depth].to_vec(),
                    violation: "event budget exceeded (livelock?)".into(),
                });
                return None;
            }
            debug_assert!(alive(ev.to) && !agents[ev.to.index()].is_terminated());
            let mut ctx = ExploreCtx {
                me: ev.to,
                k,
                n,
                handle: source.handle(ev.to),
                rng: &mut rngs[ev.to.index()],
                outbox: Vec::new(),
            };
            agents[ev.to.index()].on_message(ev.from, ev.msg, &mut ctx);
            for (to, msg) in ctx.outbox {
                pending.push(PendingEvent {
                    from: ev.to,
                    to,
                    msg,
                });
            }
            prune(&mut pending, &agents);
        }

        if pending.is_empty() {
            // Schedule complete: verify.
            self.schedules += 1;
            for (p, agent) in agents.iter().enumerate().take(k) {
                if !alive(PeerId(p)) {
                    continue;
                }
                match agent.output() {
                    None => {
                        self.counterexample.get_or_insert(Counterexample {
                            choices: prefix.to_vec(),
                            violation: format!("peer p{p} deadlocked (no output)"),
                        });
                        return None;
                    }
                    Some(out) if out != &cfg.input => {
                        self.counterexample.get_or_insert(Counterexample {
                            choices: prefix.to_vec(),
                            violation: format!("peer p{p} output a wrong array"),
                        });
                        return None;
                    }
                    Some(_) => {}
                }
            }
            return None;
        }
        Some(pending.len())
    }

    fn dfs(&mut self, prefix: &mut Vec<usize>) {
        if self.counterexample.is_some() || self.budget_hit {
            return;
        }
        if self.config.max_schedules != 0 && self.schedules >= self.config.max_schedules {
            self.budget_hit = true;
            return;
        }
        let Some(branches) = self.replay(prefix) else {
            return;
        };
        for choice in 0..branches {
            prefix.push(choice);
            self.dfs(prefix);
            prefix.pop();
            if self.counterexample.is_some() || self.budget_hit {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{PartialArray, Protocol};

    #[derive(Debug, Clone)]
    struct Chunk {
        offset: usize,
        bits: BitArray,
    }
    impl ProtocolMessage for Chunk {
        fn bit_len(&self) -> usize {
            64 + self.bits.len()
        }
    }

    /// Fault-free balanced download (known-correct without faults,
    /// known-broken with them).
    struct Balanced {
        acc: PartialArray,
        out: Option<BitArray>,
    }
    impl Balanced {
        fn new(n: usize) -> Self {
            Balanced {
                acc: PartialArray::new(n),
                out: None,
            }
        }
        fn check(&mut self) {
            if self.out.is_none() && self.acc.is_complete() {
                self.out = Some(self.acc.clone().into_complete());
            }
        }
    }
    impl Protocol for Balanced {
        type Msg = Chunk;
        fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
            let n = ctx.input_len();
            let k = ctx.num_peers();
            let per = n.div_ceil(k);
            let me = ctx.me().index();
            let range = (me * per).min(n)..((me + 1) * per).min(n);
            let bits = ctx.query_range(range.clone());
            self.acc.learn_slice(range.start, &bits);
            ctx.broadcast(Chunk {
                offset: range.start,
                bits,
            });
            self.check();
        }
        fn on_message(&mut self, _f: PeerId, m: Chunk, _c: &mut dyn Context<Chunk>) {
            self.acc.learn_slice(m.offset, &m.bits);
            self.check();
        }
        fn output(&self) -> Option<&BitArray> {
            self.out.as_ref()
        }
    }

    #[test]
    fn balanced_passes_exhaustively_without_faults() {
        let input = BitArray::from_fn(6, |i| i % 2 == 0);
        let config = ExploreConfig::new(3, input);
        let report = explore(&config, |_| Balanced::new(6));
        assert!(report.exhaustive);
        assert!(report.counterexample.is_none(), "{report:?}");
        assert!(report.schedules > 0);
    }

    #[test]
    fn balanced_fails_exhaustively_with_a_crash() {
        // With one peer crashed from the start, *every* schedule
        // deadlocks — the explorer finds the counterexample immediately.
        let input = BitArray::zeros(6);
        let config = ExploreConfig::new(3, input).with_crashed(vec![PeerId(2)]);
        let report = explore(&config, |_| Balanced::new(6));
        let ce = report.counterexample.expect("must find a deadlock");
        assert!(ce.violation.contains("deadlock"));
    }
}
