//! The adversary: delays, holds, and crashes.
//!
//! The model's adversary (§1.2) controls (i) when each peer starts, (ii)
//! the finite latency of every message, and (iii) which peers fail and
//! when — under the restrictions that crashes happen only between local
//! steps, at most `b` peers fail, and messages cannot be delayed forever:
//! when all honest peers are waiting (quiescence, §3.1), the adversary is
//! compelled to release held messages.
//!
//! [`Adversary`] is the full hook interface the simulator consults;
//! [`StandardAdversary`] composes the common case from a pluggable
//! [`DelayStrategy`] and a [`CrashPlan`]. The lower-bound experiments
//! implement `Adversary` directly for full adaptive control.

use crate::linkfault::{LinkDecision, LinkFaultPlan};
use crate::time::{Ticks, TICKS_PER_UNIT};
use crate::view::View;
use dr_core::{PeerId, ProtocolMessage};
use rand::rngs::StdRng;
use rand::Rng;

/// The adversary's decision about a freshly sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given latency in ticks (clamped by the simulator
    /// to `1..=TICKS_PER_UNIT`; the normalization that defines the time
    /// unit).
    After(Ticks),
    /// Hold indefinitely; the message stays pending until the adversary
    /// releases it (voluntarily or when compelled at quiescence).
    Hold,
}

/// The adversary's decision at quiescence: which held messages to let go.
///
/// The model (§3.1) compels the adversary to make progress once every
/// nonfaulty peer is waiting, so "release nothing" is not expressible:
/// [`Release::Some`] with an empty (or entirely out-of-range) index set is
/// rejected by the simulator with a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Release {
    /// Release every held message.
    All,
    /// Release exactly the held messages at these indices (into the `held`
    /// slice passed to [`Adversary::on_quiescence`]). Must select at least
    /// one in-range index.
    Some(Vec<usize>),
}

/// Full adversary interface consulted by the simulator.
pub trait Adversary<M: ProtocolMessage>: Send {
    /// Offset (in ticks) before `peer` starts executing. There is no
    /// simultaneous start in the model; the default staggers peers within
    /// one time unit.
    fn start_offset(&mut self, peer: PeerId, rng: &mut StdRng) -> Ticks {
        let _ = peer;
        rng.gen_range(0..TICKS_PER_UNIT)
    }

    /// Latency (or hold) for a message just sent.
    fn on_send(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        msg: &M,
        rng: &mut StdRng,
    ) -> Delivery;

    /// Called at quiescence: the event queue is empty, some nonfaulty peer
    /// has not terminated, and `held` messages are pending. Returns which
    /// held messages to release now. The model compels progress, so the
    /// decision must release at least one message; [`Release::Some`] with
    /// no in-range index makes the simulator panic.
    fn on_quiescence(&mut self, view: &View<'_>, held: &[HeldInfo]) -> Release {
        let (_, _) = (view, held);
        Release::All
    }

    /// Upper bound on the number of distinct peers this adversary intends
    /// to crash, if it knows one in advance. Used by the simulator at build
    /// time to enforce the *joint* fault budget
    /// `num_crashed + num_byzantine ≤ b` before the run starts (the
    /// per-crash budget check still applies during the run regardless).
    /// Return `None` (the default) for adaptive adversaries that decide
    /// online.
    fn planned_crashes(&self) -> Option<usize> {
        None
    }

    /// Called immediately before delivering an event to `peer`. Returning
    /// `true` crashes the peer now (before it processes the event). The
    /// simulator enforces the fault budget; returning `true` once the
    /// budget is exhausted is an error in the adversary and will panic.
    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        let (_, _) = (view, peer);
        false
    }

    /// Called after `peer` handled an event and produced `planned` outgoing
    /// messages. Returning `Some(p)` crashes the peer mid-send: only the
    /// first `p` messages of the batch leave, modelling the paper's "crash
    /// after the peer has already sent some, but perhaps not all, of the
    /// messages".
    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        let (_, _, _) = (view, peer, planned);
        None
    }

    /// Whether the simulator may run window batches of this adversary's
    /// executions on worker threads (see `lane.rs`). Returning `true` is a
    /// contract that the crash hooks are *inert* for the whole run —
    /// [`crash_before_event`](Self::crash_before_event) always returns
    /// `false` and [`crash_during_send`](Self::crash_during_send) always
    /// returns `None` — because the parallel pass skips the per-event
    /// crash consultation (it is the one serial hook whose answer the
    /// lanes would need mid-window). Everything else (delays, holds,
    /// quiescence decisions, RNG draws) runs serially in pass 2 either
    /// way. The default is `false`: adaptive adversaries fall back to the
    /// bit-identical serial pump.
    ///
    /// Link faults need no special handling here: an active
    /// [`link_fault_plan`](Self::link_fault_plan) or
    /// [`lossy`](Self::lossy) declaration degrades the run to the serial
    /// pump through the simulator's own eligibility gate regardless of
    /// this answer.
    fn parallel_safe(&self) -> bool {
        false
    }

    /// The run's static link-fault declaration: partitions with scheduled
    /// heal ticks, peer churn windows, and the retransmission policy for
    /// lossy links. Fetched exactly once at build time and validated
    /// against the peer count; the default is the trivial plan. Must be a
    /// pure function of the adversary's configuration (the same plan every
    /// call) so record/replay stays aligned.
    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan::default()
    }

    /// Whether this adversary drops transmissions — the gate for
    /// [`on_transmit`](Self::on_transmit) consultations. Must be constant
    /// for the whole run. Returning `true` degrades the sharded pump to
    /// the bit-identical serial path (transmission decisions interleave
    /// with the event order).
    fn lossy(&self) -> bool {
        false
    }

    /// Called for each transmission attempt of a scheduled delivery while
    /// [`lossy`](Self::lossy) is true: `attempt` 0 is the original send,
    /// `attempt` `a ≥ 1` the `a`-th backed-off resend. Returning
    /// [`LinkDecision::Drop`] invokes the retransmission layer (or
    /// abandons the message once the plan's retry cap is hit). Not
    /// consulted for quiescence releases or partition-parked deliveries.
    fn on_transmit(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        attempt: u32,
        rng: &mut StdRng,
    ) -> LinkDecision {
        let _ = (view, from, to, attempt, rng);
        LinkDecision::Transmit
    }
}

/// Boxed adversaries forward to their contents, so adversary choices can
/// be made at runtime (a CLI flag, a property-test mix) and still be
/// handed to [`SimBuilder::adversary`](crate::SimBuilder::adversary).
impl<M: ProtocolMessage> Adversary<M> for Box<dyn Adversary<M>> {
    fn start_offset(&mut self, peer: PeerId, rng: &mut StdRng) -> Ticks {
        (**self).start_offset(peer, rng)
    }

    fn on_send(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        (**self).on_send(view, from, to, msg, rng)
    }

    fn on_quiescence(&mut self, view: &View<'_>, held: &[HeldInfo]) -> Release {
        (**self).on_quiescence(view, held)
    }

    fn planned_crashes(&self) -> Option<usize> {
        (**self).planned_crashes()
    }

    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        (**self).crash_before_event(view, peer)
    }

    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        (**self).crash_during_send(view, peer, planned)
    }

    fn parallel_safe(&self) -> bool {
        (**self).parallel_safe()
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        (**self).link_fault_plan()
    }

    fn lossy(&self) -> bool {
        (**self).lossy()
    }

    fn on_transmit(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        attempt: u32,
        rng: &mut StdRng,
    ) -> LinkDecision {
        (**self).on_transmit(view, from, to, attempt, rng)
    }
}

/// Metadata about a held message, exposed to [`Adversary::on_quiescence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldInfo {
    /// Sender of the held message.
    pub from: PeerId,
    /// Recipient of the held message.
    pub to: PeerId,
    /// Virtual time at which it was sent.
    pub sent_at: Ticks,
}

/// Pluggable per-message latency policy used by [`StandardAdversary`].
pub trait DelayStrategy<M>: Send {
    /// Latency in ticks for this message; the simulator clamps the result
    /// to `1..=TICKS_PER_UNIT`.
    fn latency(&mut self, from: PeerId, to: PeerId, msg: &M, now: Ticks, rng: &mut StdRng)
        -> Ticks;
}

/// Uniformly random latency in `1..=TICKS_PER_UNIT` — the "anything goes"
/// asynchronous baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct UniformDelay;

impl UniformDelay {
    /// Creates the strategy.
    pub fn new() -> Self {
        UniformDelay
    }
}

impl<M> DelayStrategy<M> for UniformDelay {
    fn latency(&mut self, _f: PeerId, _t: PeerId, _m: &M, _now: Ticks, rng: &mut StdRng) -> Ticks {
        rng.gen_range(1..=TICKS_PER_UNIT)
    }
}

/// Constant latency for every message (a synchronous-looking schedule;
/// useful as a best case and in determinism tests).
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(pub Ticks);

impl<M> DelayStrategy<M> for FixedDelay {
    fn latency(&mut self, _f: PeerId, _t: PeerId, _m: &M, _now: Ticks, _rng: &mut StdRng) -> Ticks {
        self.0
    }
}

/// Messages from (or to) a designated set of slow peers always take the
/// maximum latency, everything else is fast. This is the schedule that
/// makes "waiting for the last peer risks deadlock" bite: slow peers are
/// indistinguishable from crashed ones for as long as possible.
#[derive(Debug, Clone)]
pub struct TargetedSlowdown {
    slow: Vec<PeerId>,
    fast_ticks: Ticks,
}

impl TargetedSlowdown {
    /// Creates a strategy where `slow` peers' traffic crawls at max
    /// latency and all other traffic takes `fast_ticks`.
    pub fn new(slow: Vec<PeerId>, fast_ticks: Ticks) -> Self {
        TargetedSlowdown { slow, fast_ticks }
    }

    fn is_slow(&self, p: PeerId) -> bool {
        self.slow.contains(&p)
    }
}

impl<M> DelayStrategy<M> for TargetedSlowdown {
    fn latency(
        &mut self,
        from: PeerId,
        to: PeerId,
        _m: &M,
        _now: Ticks,
        _rng: &mut StdRng,
    ) -> Ticks {
        if self.is_slow(from) || self.is_slow(to) {
            TICKS_PER_UNIT
        } else {
            self.fast_ticks
        }
    }
}

/// When does a planned crash fire?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Crash immediately before the peer processes its `n`-th event
    /// (0 = before it even starts).
    BeforeEvent(u64),
    /// Crash while the peer sends the batch produced by its `n`-th event,
    /// letting only the first `keep` messages out.
    DuringSend {
        /// Event index whose outgoing batch is cut.
        event: u64,
        /// Number of messages of the batch that still get out.
        keep: usize,
    },
}

/// A scheduled crash of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashDirective {
    /// The peer to crash.
    pub peer: PeerId,
    /// When the crash fires.
    pub trigger: CrashTrigger,
}

/// A set of scheduled crashes (the crash-fault adversary's failure
/// pattern, fixed per execution).
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    directives: Vec<CrashDirective>,
}

impl CrashPlan {
    /// No crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash each listed peer before it processes its `event`-th event.
    pub fn before_event(peers: impl IntoIterator<Item = PeerId>, event: u64) -> Self {
        CrashPlan {
            directives: peers
                .into_iter()
                .map(|peer| CrashDirective {
                    peer,
                    trigger: CrashTrigger::BeforeEvent(event),
                })
                .collect(),
        }
    }

    /// Adds a directive.
    pub fn push(&mut self, d: CrashDirective) -> &mut Self {
        self.directives.push(d);
        self
    }

    /// Number of distinct peers this plan crashes.
    pub fn num_crashed(&self) -> usize {
        let mut peers: Vec<PeerId> = self.directives.iter().map(|d| d.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }

    fn find_before(&self, peer: PeerId, event: u64) -> bool {
        self.directives.iter().any(|d| {
            d.peer == peer && matches!(d.trigger, CrashTrigger::BeforeEvent(e) if e == event)
        })
    }

    fn find_during(&self, peer: PeerId, event: u64) -> Option<usize> {
        self.directives.iter().find_map(|d| match d.trigger {
            CrashTrigger::DuringSend { event: e, keep } if d.peer == peer && e == event => {
                Some(keep)
            }
            _ => None,
        })
    }
}

/// The composable adversary covering the common experiments: a delay
/// strategy plus a crash plan. Never holds messages (all latencies are
/// finite and bounded by one unit), so quiescence never involves it.
pub struct StandardAdversary<M> {
    delay: Box<dyn DelayStrategy<M>>,
    crash_plan: CrashPlan,
    stagger_starts: bool,
}

impl<M: ProtocolMessage> StandardAdversary<M> {
    /// Creates an adversary with the given delay strategy and crash plan.
    pub fn new(delay: impl DelayStrategy<M> + 'static, crash_plan: CrashPlan) -> Self {
        StandardAdversary {
            delay: Box::new(delay),
            crash_plan,
            stagger_starts: true,
        }
    }

    /// Uniform random delays, no crashes.
    pub fn benign() -> Self {
        StandardAdversary::new(UniformDelay::new(), CrashPlan::none())
    }

    /// Starts every peer at time zero instead of staggering starts.
    pub fn simultaneous_start(mut self) -> Self {
        self.stagger_starts = false;
        self
    }
}

impl<M: ProtocolMessage> Adversary<M> for StandardAdversary<M> {
    fn start_offset(&mut self, _peer: PeerId, rng: &mut StdRng) -> Ticks {
        if self.stagger_starts {
            rng.gen_range(0..TICKS_PER_UNIT)
        } else {
            0
        }
    }

    fn on_send(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(self.delay.latency(from, to, msg, view.now, rng))
    }

    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        let event = view.status(peer).events_processed;
        self.crash_plan.find_before(peer, event)
    }

    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        // events_processed has already been incremented for the event whose
        // batch is being sent, so the current event index is the count - 1.
        // A zero count means the peer never took a step — it has no batch
        // to cut, and must not be confused with "currently at event 0".
        let event = view.status(peer).events_processed.checked_sub(1)?;
        self.crash_plan
            .find_during(peer, event)
            .map(|keep| keep.min(planned))
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(self.crash_plan.num_crashed())
    }

    fn parallel_safe(&self) -> bool {
        // The crash plan is the only source of crashes; an empty one makes
        // both crash hooks provably inert for the whole run.
        self.crash_plan.num_crashed() == 0
    }
}

impl<M> std::fmt::Debug for StandardAdversary<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandardAdversary")
            .field("crash_plan", &self.crash_plan)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{PeerRole, PeerStatus};
    use rand::SeedableRng;

    #[derive(Debug, Clone)]
    struct Unit;
    impl ProtocolMessage for Unit {
        fn bit_len(&self) -> usize {
            0
        }
    }

    fn view_with(peers: &[PeerStatus]) -> View<'_> {
        View { now: 0, peers }
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = UniformDelay::new();
        for _ in 0..100 {
            let t =
                DelayStrategy::<Unit>::latency(&mut d, PeerId(0), PeerId(1), &Unit, 0, &mut rng);
            assert!((1..=TICKS_PER_UNIT).contains(&t));
        }
    }

    #[test]
    fn targeted_slowdown_discriminates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = TargetedSlowdown::new(vec![PeerId(2)], 5);
        let slow = DelayStrategy::<Unit>::latency(&mut d, PeerId(2), PeerId(0), &Unit, 0, &mut rng);
        let fast = DelayStrategy::<Unit>::latency(&mut d, PeerId(0), PeerId(1), &Unit, 0, &mut rng);
        assert_eq!(slow, TICKS_PER_UNIT);
        assert_eq!(fast, 5);
    }

    #[test]
    fn crash_plan_matches_triggers() {
        let mut plan = CrashPlan::none();
        plan.push(CrashDirective {
            peer: PeerId(1),
            trigger: CrashTrigger::BeforeEvent(2),
        });
        plan.push(CrashDirective {
            peer: PeerId(1),
            trigger: CrashTrigger::DuringSend { event: 3, keep: 1 },
        });
        assert!(plan.find_before(PeerId(1), 2));
        assert!(!plan.find_before(PeerId(1), 1));
        assert_eq!(plan.find_during(PeerId(1), 3), Some(1));
        assert_eq!(plan.num_crashed(), 1);
    }

    #[test]
    fn standard_adversary_crashes_per_plan() {
        let plan = CrashPlan::before_event([PeerId(0)], 1);
        let mut adv: StandardAdversary<Unit> = StandardAdversary::new(FixedDelay(7), plan);
        let mut peers = vec![PeerStatus::new(PeerRole::Honest)];
        peers[0].events_processed = 1;
        assert!(adv.crash_before_event(&view_with(&peers), PeerId(0)));
        peers[0].events_processed = 2;
        assert!(!adv.crash_before_event(&view_with(&peers), PeerId(0)));
    }

    #[test]
    fn during_send_never_fires_for_a_peer_that_never_ran() {
        let mut plan = CrashPlan::none();
        plan.push(CrashDirective {
            peer: PeerId(0),
            trigger: CrashTrigger::DuringSend { event: 0, keep: 0 },
        });
        let mut adv: StandardAdversary<Unit> = StandardAdversary::new(FixedDelay(7), plan);
        let mut peers = vec![PeerStatus::new(PeerRole::Honest)];
        // A zero event count means the peer never took a step. The old
        // saturating subtraction aliased it with "currently at event 0"
        // and cut a batch that does not exist.
        assert_eq!(
            adv.crash_during_send(&view_with(&peers), PeerId(0), 3),
            None
        );
        // Once the count is 1, the peer really is sending event 0's batch.
        peers[0].events_processed = 1;
        assert_eq!(
            adv.crash_during_send(&view_with(&peers), PeerId(0), 3),
            Some(0)
        );
    }

    #[test]
    fn benign_adversary_never_holds() {
        let mut adv: StandardAdversary<Unit> = StandardAdversary::benign();
        let peers = vec![PeerStatus::new(PeerRole::Honest)];
        let mut rng = StdRng::seed_from_u64(0);
        match adv.on_send(&view_with(&peers), PeerId(0), PeerId(0), &Unit, &mut rng) {
            Delivery::After(t) => assert!(t >= 1),
            Delivery::Hold => panic!("benign adversary held a message"),
        }
    }
}
