//! The adversary's view of the execution.
//!
//! The paper's adversary knows the protocol and observes the execution
//! (it "can simulate it, up to random coins"). [`View`] is the read-only
//! snapshot handed to adversary hooks: current virtual time plus per-peer
//! status (role, started/terminated/crashed, events processed). Adversaries
//! make delay, hold, and crash decisions from this view.
//!
//! Peer state is split in two for the parallel dispatch path: the
//! contiguous [`PeerStatus`] vector owned by the coordinator is the
//! *shared read-only core* every adversary `View` borrows, while each
//! shard lane carries a mutable [`LaneFlags`] mirror of the three
//! lifecycle bits its worker needs mid-window (see `lane.rs`). The
//! coordinator keeps the two in sync at every status transition and
//! debug-asserts the mirror before lending a lane out.

use crate::time::Ticks;
use dr_core::{PeerId, PeerSet};

/// A peer's role in this execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRole {
    /// Follows the protocol (may still be crashed by the adversary under
    /// the crash-fault model).
    Honest,
    /// Adversary-controlled, counted against the fault budget.
    Byzantine,
}

/// Execution status of one peer.
#[derive(Debug, Clone)]
pub struct PeerStatus {
    /// Role of the peer in this run.
    pub role: PeerRole,
    /// Whether the start event has been delivered.
    pub started: bool,
    /// Whether the peer has terminated with an output.
    pub terminated: bool,
    /// Whether the adversary has crashed the peer.
    pub crashed: bool,
    /// Number of events (start + deliveries) this peer has processed.
    pub events_processed: u64,
}

impl PeerStatus {
    pub(crate) fn new(role: PeerRole) -> Self {
        PeerStatus {
            role,
            started: false,
            terminated: false,
            crashed: false,
            events_processed: 0,
        }
    }

    /// Whether this peer is nonfaulty so far: honest and not crashed.
    pub fn is_nonfaulty(&self) -> bool {
        self.role == PeerRole::Honest && !self.crashed
    }
}

/// The per-shard mutable mirror of a peer's lifecycle bits: the half of
/// the peer-state split a shard lane owns while its window batch runs on
/// a worker thread. Only the subject peer's own events mutate these
/// flags, and a window batch processes each lane's events in global
/// sequence order, so the mirror is always current for every decision
/// the lane makes (drop, park, or step).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneFlags {
    pub(crate) started: bool,
    pub(crate) terminated: bool,
    pub(crate) crashed: bool,
}

impl LaneFlags {
    /// Whether the authoritative status and this mirror agree.
    pub(crate) fn mirrors(&self, status: &PeerStatus) -> bool {
        self.started == status.started
            && self.terminated == status.terminated
            && self.crashed == status.crashed
    }
}

/// Read-only execution snapshot for adversary decisions.
#[derive(Debug)]
pub struct View<'a> {
    /// Current virtual time in ticks.
    pub now: Ticks,
    /// Per-peer status, indexed by peer ID.
    pub peers: &'a [PeerStatus],
}

impl View<'_> {
    /// Number of peers in the network.
    pub fn num_peers(&self) -> usize {
        self.peers.len()
    }

    /// The set of nonfaulty (honest, non-crashed) peers.
    pub fn nonfaulty(&self) -> PeerSet {
        PeerSet::from_fn(self.peers.len(), |i| self.peers[i].is_nonfaulty())
    }

    /// Whether every nonfaulty peer has terminated.
    pub fn all_nonfaulty_terminated(&self) -> bool {
        self.peers
            .iter()
            .filter(|p| p.is_nonfaulty())
            .all(|p| p.terminated)
    }

    /// Status of a single peer.
    pub fn status(&self, peer: PeerId) -> &PeerStatus {
        &self.peers[peer.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonfaulty_excludes_byzantine_and_crashed() {
        let mut peers = vec![
            PeerStatus::new(PeerRole::Honest),
            PeerStatus::new(PeerRole::Byzantine),
            PeerStatus::new(PeerRole::Honest),
        ];
        peers[2].crashed = true;
        let view = View {
            now: 0,
            peers: &peers,
        };
        let nf = view.nonfaulty();
        assert_eq!(nf.len(), 1);
        assert!(nf.contains(PeerId(0)));
    }

    #[test]
    fn termination_ignores_faulty() {
        let mut peers = vec![
            PeerStatus::new(PeerRole::Honest),
            PeerStatus::new(PeerRole::Byzantine),
        ];
        peers[0].terminated = true;
        let view = View {
            now: 5,
            peers: &peers,
        };
        assert!(view.all_nonfaulty_terminated());
    }
}
