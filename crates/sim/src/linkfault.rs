//! The link-fault plane: healing partitions, lossy links with bounded
//! retransmission, and peer churn.
//!
//! The base [`Adversary`](crate::Adversary) controls *scheduling* faults
//! (delays, holds, crashes). This module adds *link* faults, layered
//! under the same trait through three hooks the simulator consults:
//!
//! * [`Adversary::link_fault_plan`](crate::Adversary::link_fault_plan)
//!   declares the run's static [`LinkFaultPlan`] — named partitions with
//!   scheduled heal ticks and peer leave/rejoin churn directives — fetched
//!   once at build time and validated against the peer count.
//! * [`Adversary::lossy`](crate::Adversary::lossy) +
//!   [`Adversary::on_transmit`](crate::Adversary::on_transmit) drive
//!   per-link drops: each transmission attempt of a scheduled delivery may
//!   be dropped, and dropped messages re-send after exponentially
//!   backed-off tick intervals under the plan's [`RetransmitPolicy`].
//!
//! # Parking, not losing
//!
//! A message sent while an active cut separates sender from recipient is
//! **parked**: its payload keeps its slab slot, owned by a delivery event
//! scheduled at `heal + latency + transmission`, so it re-enters delivery
//! deterministically the moment the partition heals. Cuts affect messages
//! *sent* during the cut window; messages already in flight when a cut
//! begins were transmitted before the link went down and still arrive.
//!
//! # Retransmission
//!
//! Delivery in the simulator implies acknowledgement, so the ack-tracked
//! resend layer reduces to its deterministic equivalent: a dropped
//! transmission schedules a `Retransmit` event after
//! `backoff(attempt) = backoff_base · 2^(attempt-1)` ticks (clamped to
//! `1..=2·TICKS_PER_UNIT`), re-consulting `on_transmit` at each attempt.
//! After `max_retries` failed resends the message is abandoned: its slot
//! is freed, `RunReport::messages_lost` counts it, and with
//! [`RetransmitPolicy::fail_fast`] the run surfaces a structured
//! [`RunError::RetriesExhausted`](crate::RunError::RetriesExhausted)
//! instead of silently losing data.
//!
//! # Churn
//!
//! A churn directive makes a peer *leave* at one tick and *rejoin* at a
//! later one. While away the peer takes no steps: every event addressed
//! to it (starts included) is deferred to the rejoin tick, payload slot
//! riding along — a suspend/resume lifecycle that tears the peer out of
//! the schedule and re-admits it without leaking `MsgSlab` slots and
//! without losing messages.
//!
//! All three capabilities are recorded/replayed through
//! [`ScheduleTrace`](crate::ScheduleTrace) and degrade the sharded pump to
//! the bit-identical serial path while active (see
//! `Simulation::parallel_eligible`).

use crate::adversary::{Adversary, Delivery};
use crate::time::{Ticks, TICKS_PER_UNIT};
use crate::view::View;
use dr_core::{PeerId, ProtocolMessage};
use rand::rngs::StdRng;
use rand::Rng;

/// The adversary's decision about one transmission attempt of a message
/// over a lossy link (consulted only when [`Adversary::lossy`] is true).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// The attempt succeeds; the message is delivered after its latency.
    Transmit,
    /// The attempt is dropped; the retransmission layer schedules a
    /// backed-off resend (or abandons the message once retries cap out).
    Drop,
}

/// A named network partition with a scheduled heal tick.
///
/// While `from_tick <= now < heal_tick`, messages sent between `group`
/// and its complement are parked until `heal_tick`. A group that is empty
/// or contains every peer separates nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionDirective {
    /// Human-readable name (carried into docs and repro output).
    pub name: String,
    /// One side of the cut; the complement is the other side.
    pub group: Vec<PeerId>,
    /// First tick at which the cut is active.
    pub from_tick: Ticks,
    /// Tick at which the partition heals (exclusive end of the cut).
    pub heal_tick: Ticks,
}

impl PartitionDirective {
    /// Whether this cut is active at `now`.
    pub fn active_at(&self, now: Ticks) -> bool {
        self.from_tick <= now && now < self.heal_tick
    }
}

/// A peer leaving the network and rejoining later (suspend/resume churn:
/// the peer keeps its local state but takes no steps while away).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnDirective {
    /// The churning peer.
    pub peer: PeerId,
    /// Tick at which the peer leaves.
    pub leave: Ticks,
    /// Tick at which the peer rejoins (must be after `leave`).
    pub rejoin: Ticks,
}

/// Bounded-retry policy for dropped transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitPolicy {
    /// Base backoff in ticks; resend `a` waits `backoff_base · 2^(a-1)`
    /// ticks, clamped to `1..=2·TICKS_PER_UNIT`.
    pub backoff_base: Ticks,
    /// Maximum number of resends per message before it is abandoned.
    pub max_retries: u32,
    /// Whether an abandoned message aborts the run with
    /// [`RunError::RetriesExhausted`](crate::RunError::RetriesExhausted)
    /// instead of only counting into `RunReport::messages_lost`.
    pub fail_fast: bool,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        RetransmitPolicy {
            backoff_base: TICKS_PER_UNIT / 8,
            max_retries: 12,
            fail_fast: false,
        }
    }
}

/// The static link-fault declaration of one run: partitions, churn, and
/// the retransmission policy for lossy links. Fetched once from
/// [`Adversary::link_fault_plan`] at build time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaultPlan {
    /// Named partitions with scheduled heal ticks.
    pub partitions: Vec<PartitionDirective>,
    /// Peer leave/rejoin directives.
    pub churn: Vec<ChurnDirective>,
    /// Retry policy for transmissions dropped via [`Adversary::on_transmit`].
    pub retransmit: RetransmitPolicy,
}

impl LinkFaultPlan {
    /// Whether the plan declares no partitions and no churn. (Lossiness is
    /// declared separately through [`Adversary::lossy`].)
    pub fn is_trivial(&self) -> bool {
        self.partitions.is_empty() && self.churn.is_empty()
    }
}

/// One cut in the precomputed runtime form: membership bitmap instead of
/// a peer list, so the per-message check is O(#directives).
struct RuntimeCut {
    member: Vec<bool>,
    from_tick: Ticks,
    heal_tick: Ticks,
}

/// The simulator's validated, query-optimized view of a [`LinkFaultPlan`].
pub(crate) struct RuntimeLinkState {
    cuts: Vec<RuntimeCut>,
    /// Per-peer `(leave, rejoin)` windows.
    away: Vec<Vec<(Ticks, Ticks)>>,
    pub(crate) policy: RetransmitPolicy,
    trivial: bool,
}

impl RuntimeLinkState {
    /// Validates `plan` against the peer count and builds the runtime
    /// form.
    ///
    /// # Panics
    ///
    /// Panics on malformed directives (out-of-range peers, heal/rejoin
    /// not after the window start) — these are build-time configuration
    /// errors, like an over-budget crash plan.
    pub(crate) fn new(plan: &LinkFaultPlan, k: usize) -> Self {
        let mut cuts = Vec::with_capacity(plan.partitions.len());
        for p in &plan.partitions {
            assert!(
                p.heal_tick > p.from_tick,
                "partition {:?} never active: heal_tick {} <= from_tick {}",
                p.name,
                p.heal_tick,
                p.from_tick
            );
            let mut member = vec![false; k];
            for peer in &p.group {
                assert!(
                    peer.index() < k,
                    "partition {:?} names out-of-range peer {peer} (k={k})",
                    p.name
                );
                member[peer.index()] = true;
            }
            cuts.push(RuntimeCut {
                member,
                from_tick: p.from_tick,
                heal_tick: p.heal_tick,
            });
        }
        let mut away = vec![Vec::new(); k];
        for c in &plan.churn {
            assert!(
                c.peer.index() < k,
                "churn directive names out-of-range peer {} (k={k})",
                c.peer
            );
            assert!(
                c.rejoin > c.leave,
                "churn directive for {} never away: rejoin {} <= leave {}",
                c.peer,
                c.rejoin,
                c.leave
            );
            away[c.peer.index()].push((c.leave, c.rejoin));
        }
        RuntimeLinkState {
            cuts,
            away,
            policy: plan.retransmit,
            trivial: plan.is_trivial(),
        }
    }

    /// Whether the plan declared no partitions and no churn (the parallel
    /// pump eligibility condition alongside `!lossy`).
    pub(crate) fn is_trivial(&self) -> bool {
        self.trivial
    }

    /// If an active cut separates `a` from `b` at `now`, the latest heal
    /// tick among such cuts (always `> now`); `None` on a connected link.
    pub(crate) fn cut_heal(&self, a: PeerId, b: PeerId, now: Ticks) -> Option<Ticks> {
        self.cuts
            .iter()
            .filter(|c| {
                c.from_tick <= now
                    && now < c.heal_tick
                    && c.member[a.index()] != c.member[b.index()]
            })
            .map(|c| c.heal_tick)
            .max()
    }

    /// If `peer` is away at `now`, the latest rejoin tick among its active
    /// churn windows (always `> now`); `None` while present.
    pub(crate) fn away_until(&self, peer: PeerId, now: Ticks) -> Option<Ticks> {
        self.away[peer.index()]
            .iter()
            .filter(|(leave, rejoin)| *leave <= now && now < *rejoin)
            .map(|(_, rejoin)| *rejoin)
            .max()
    }

    /// Backoff before resend number `attempt` (1-based): exponential in
    /// the attempt, clamped to `1..=2·TICKS_PER_UNIT` so retry chains stay
    /// within a bounded multiple of the latency unit.
    pub(crate) fn backoff(&self, attempt: u32) -> Ticks {
        let shift = attempt.saturating_sub(1).min(16);
        (self.policy.backoff_base << shift).clamp(1, 2 * TICKS_PER_UNIT)
    }
}

/// Pure 64-bit mixer (splitmix64 finalizer) for seed-derived plan
/// construction — deterministic, no RNG state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seed-derived nontrivial group split: each peer joins by a hash bit,
/// then the split is forced proper (neither empty nor everyone).
fn seeded_split(k: usize, salt: u64) -> Vec<PeerId> {
    let mut group: Vec<PeerId> = (0..k)
        .filter(|&p| mix(salt ^ p as u64) & 1 == 1)
        .map(PeerId)
        .collect();
    if group.len() == k && k > 1 {
        group.pop();
    }
    if group.is_empty() {
        group.push(PeerId(0));
    }
    group
}

/// Adversary driving two successive seed-derived partitions that heal on
/// schedule, with uniform random delays — the "network splits, then
/// heals, then splits differently" robustness scenario. Crash-inert.
pub struct PartitionHealer {
    plan: LinkFaultPlan,
}

impl PartitionHealer {
    /// Builds the adversary for `k` peers: cut one spans
    /// `[0, heal_units/2)` time units, cut two (a different seed-derived
    /// split) spans `[heal_units/2, heal_units)`. `heal_units` must be at
    /// least 1.
    pub fn new(k: usize, seed: u64, heal_units: u64) -> Self {
        assert!(heal_units >= 1, "PartitionHealer needs a heal horizon");
        let mid = ((heal_units * TICKS_PER_UNIT) / 2).max(1);
        let end = (heal_units * TICKS_PER_UNIT).max(mid + 1);
        let plan = LinkFaultPlan {
            partitions: vec![
                PartitionDirective {
                    name: "early-cut".to_string(),
                    group: seeded_split(k, mix(seed)),
                    from_tick: 0,
                    heal_tick: mid,
                },
                PartitionDirective {
                    name: "late-cut".to_string(),
                    group: seeded_split(k, mix(seed ^ 0x5151_5151_5151_5151)),
                    from_tick: mid,
                    heal_tick: end,
                },
            ],
            churn: Vec::new(),
            retransmit: RetransmitPolicy::default(),
        };
        PartitionHealer { plan }
    }

    /// The plan this adversary declares (for tests and docs).
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }
}

impl<M: ProtocolMessage> Adversary<M> for PartitionHealer {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        self.plan.clone()
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn parallel_safe(&self) -> bool {
        // Crash hooks are inert; the nontrivial plan itself degrades the
        // run to the serial pump through the separate link-fault gate.
        true
    }
}

/// Adversary dropping transmissions per link at a seed-jittered rate,
/// with uniform random delays. Dropped messages retry under the plan's
/// [`RetransmitPolicy`]. Crash-inert.
pub struct LossyLinks {
    salt: u64,
    drop_permille: u16,
    policy: RetransmitPolicy,
}

impl LossyLinks {
    /// Builds the adversary: each directed link `(from, to)` drops a
    /// transmission attempt with probability `drop_permille/1000` scaled
    /// by a per-link jitter factor in `[0.5, 1.5)` derived from `seed`
    /// (and clamped below 1.0 so retransmission always eventually wins).
    /// A zero rate declares the adversary non-lossy.
    pub fn new(seed: u64, drop_permille: u16) -> Self {
        LossyLinks {
            salt: mix(seed ^ 0x10_55_1e_55),
            drop_permille: drop_permille.min(950),
            policy: RetransmitPolicy::default(),
        }
    }

    /// Overrides the retransmission policy.
    pub fn with_policy(mut self, policy: RetransmitPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Effective drop rate (permille) of the directed link `from → to`.
    pub fn link_rate(&self, from: PeerId, to: PeerId) -> u16 {
        if self.drop_permille == 0 {
            return 0;
        }
        let h = mix(self.salt ^ ((from.index() as u64) << 32 | to.index() as u64));
        // Jitter factor in [0.5, 1.5) as 512..1536 over 1024.
        let scale = 512 + (h % 1024);
        ((self.drop_permille as u64 * scale / 1024).clamp(1, 980)) as u16
    }
}

impl<M: ProtocolMessage> Adversary<M> for LossyLinks {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            partitions: Vec::new(),
            churn: Vec::new(),
            retransmit: self.policy,
        }
    }

    fn lossy(&self) -> bool {
        self.drop_permille > 0
    }

    fn on_transmit(
        &mut self,
        _view: &View<'_>,
        from: PeerId,
        to: PeerId,
        _attempt: u32,
        rng: &mut StdRng,
    ) -> LinkDecision {
        if rng.gen_range(0u64..1000) < self.link_rate(from, to) as u64 {
            LinkDecision::Drop
        } else {
            LinkDecision::Transmit
        }
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn parallel_safe(&self) -> bool {
        // Crash hooks are inert; lossiness degrades the run to the serial
        // pump through the separate link-fault gate.
        true
    }
}

/// Adversary churning a seed-derived subset of peers through staggered
/// leave/rejoin windows, with uniform random delays. Crash-inert and
/// lossless: deferred events re-enter at the rejoin tick.
pub struct ChurnMixer {
    plan: LinkFaultPlan,
}

impl ChurnMixer {
    /// Builds the adversary for `k` peers: `churners` distinct peers each
    /// leave once at a staggered seed-jittered tick within the first few
    /// time units and rejoin one to two units later.
    pub fn new(k: usize, seed: u64, churners: usize) -> Self {
        let churners = churners.clamp(1, k);
        // Distinct peers via a seeded stride over the ring.
        let stride = (mix(seed) as usize % k.max(1)).max(1) | 1;
        let start = mix(seed ^ 0xc0a1) as usize % k;
        let mut chosen = Vec::with_capacity(churners);
        let mut p = start;
        while chosen.len() < churners {
            if !chosen.contains(&p) {
                chosen.push(p);
            }
            p = (p + stride) % k;
        }
        let churn = chosen
            .into_iter()
            .enumerate()
            .map(|(i, peer)| {
                let j = mix(seed ^ (peer as u64) << 8);
                let leave =
                    TICKS_PER_UNIT / 4 + (i as u64 * TICKS_PER_UNIT) / 2 + j % (TICKS_PER_UNIT / 4);
                let rejoin = leave + TICKS_PER_UNIT + (j >> 32) % TICKS_PER_UNIT;
                ChurnDirective {
                    peer: PeerId(peer),
                    leave,
                    rejoin,
                }
            })
            .collect();
        ChurnMixer {
            plan: LinkFaultPlan {
                partitions: Vec::new(),
                churn,
                retransmit: RetransmitPolicy::default(),
            },
        }
    }

    /// The plan this adversary declares (for tests and docs).
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }
}

impl<M: ProtocolMessage> Adversary<M> for ChurnMixer {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        self.plan.clone()
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn parallel_safe(&self) -> bool {
        // Crash hooks are inert; churn degrades the run to the serial
        // pump through the separate link-fault gate.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_heal_respects_window_and_sides() {
        let plan = LinkFaultPlan {
            partitions: vec![PartitionDirective {
                name: "t".into(),
                group: vec![PeerId(0), PeerId(2)],
                from_tick: 10,
                heal_tick: 100,
            }],
            churn: Vec::new(),
            retransmit: RetransmitPolicy::default(),
        };
        let rt = RuntimeLinkState::new(&plan, 4);
        // Across the cut, inside the window.
        assert_eq!(rt.cut_heal(PeerId(0), PeerId(1), 10), Some(100));
        assert_eq!(rt.cut_heal(PeerId(1), PeerId(2), 99), Some(100));
        // Same side.
        assert_eq!(rt.cut_heal(PeerId(0), PeerId(2), 50), None);
        assert_eq!(rt.cut_heal(PeerId(1), PeerId(3), 50), None);
        // Outside the window.
        assert_eq!(rt.cut_heal(PeerId(0), PeerId(1), 9), None);
        assert_eq!(rt.cut_heal(PeerId(0), PeerId(1), 100), None);
    }

    #[test]
    fn away_until_covers_active_windows_only() {
        let plan = LinkFaultPlan {
            partitions: Vec::new(),
            churn: vec![
                ChurnDirective {
                    peer: PeerId(1),
                    leave: 5,
                    rejoin: 20,
                },
                ChurnDirective {
                    peer: PeerId(1),
                    leave: 15,
                    rejoin: 40,
                },
            ],
            retransmit: RetransmitPolicy::default(),
        };
        let rt = RuntimeLinkState::new(&plan, 2);
        assert_eq!(rt.away_until(PeerId(1), 4), None);
        assert_eq!(rt.away_until(PeerId(1), 5), Some(20));
        // Overlap picks the latest rejoin.
        assert_eq!(rt.away_until(PeerId(1), 16), Some(40));
        assert_eq!(rt.away_until(PeerId(1), 40), None);
        assert_eq!(rt.away_until(PeerId(0), 10), None);
    }

    #[test]
    fn backoff_is_exponential_and_clamped() {
        let plan = LinkFaultPlan::default();
        let rt = RuntimeLinkState::new(&plan, 1);
        let base = RetransmitPolicy::default().backoff_base;
        assert_eq!(rt.backoff(1), base);
        assert_eq!(rt.backoff(2), base * 2);
        assert_eq!(rt.backoff(3), base * 4);
        // Clamped: never past two time units, never below one tick.
        assert_eq!(rt.backoff(30), 2 * TICKS_PER_UNIT);
        let zero = RuntimeLinkState::new(
            &LinkFaultPlan {
                retransmit: RetransmitPolicy {
                    backoff_base: 0,
                    max_retries: 1,
                    fail_fast: false,
                },
                ..LinkFaultPlan::default()
            },
            1,
        );
        assert_eq!(zero.backoff(1), 1);
    }

    #[test]
    #[should_panic(expected = "never active")]
    fn empty_partition_window_rejected() {
        let plan = LinkFaultPlan {
            partitions: vec![PartitionDirective {
                name: "bad".into(),
                group: vec![PeerId(0)],
                from_tick: 7,
                heal_tick: 7,
            }],
            churn: Vec::new(),
            retransmit: RetransmitPolicy::default(),
        };
        let _ = RuntimeLinkState::new(&plan, 2);
    }

    #[test]
    fn seeded_split_is_proper_for_any_seed() {
        for k in [1, 2, 3, 17, 64] {
            for seed in 0..50 {
                let g = seeded_split(k, seed);
                assert!(!g.is_empty(), "k={k} seed={seed}");
                assert!(g.len() < k.max(2), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn lossy_link_rates_jitter_but_stay_capped() {
        let adv = LossyLinks::new(3, 500);
        let mut distinct = std::collections::BTreeSet::new();
        for f in 0..6 {
            for t in 0..6 {
                let r = adv.link_rate(PeerId(f), PeerId(t));
                assert!((1..=980).contains(&r));
                distinct.insert(r);
            }
        }
        assert!(
            distinct.len() > 3,
            "per-link jitter collapsed: {distinct:?}"
        );
        let off = LossyLinks::new(3, 0);
        assert_eq!(off.link_rate(PeerId(0), PeerId(1)), 0);
    }

    #[test]
    fn churn_mixer_directives_are_distinct_and_well_formed() {
        let mixer = ChurnMixer::new(16, 9, 5);
        let plan = mixer.plan();
        assert_eq!(plan.churn.len(), 5);
        let mut peers: Vec<usize> = plan.churn.iter().map(|c| c.peer.index()).collect();
        peers.sort_unstable();
        peers.dedup();
        assert_eq!(peers.len(), 5, "churners must be distinct");
        for c in &plan.churn {
            assert!(c.rejoin > c.leave);
        }
    }
}
