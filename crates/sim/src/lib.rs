//! Deterministic discrete-event simulator for the asynchronous DR model.
//!
//! This crate realizes the adversarial environment of the paper (§1.2): a
//! complete peer-to-peer network with adversary-chosen finite message
//! latencies, staggered starts, crash faults that strike only between local
//! steps (possibly cutting an outgoing batch short), Byzantine peers driven
//! by arbitrary behaviours, and the quiescence rule of §3.1 under which
//! held messages must eventually be released.
//!
//! The central types are [`SimBuilder`] → [`Simulation`] → [`RunReport`].
//! Protocols implement [`dr_core::Protocol`] and are driven unchanged by
//! either this simulator or the thread-based `dr-runtime`.
//!
//! # Examples
//!
//! See [`SimBuilder`] for a complete end-to-end run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod agent;
mod builder;
pub mod chaos;
pub mod explore;
mod lane;
mod linkfault;
mod report;
mod schedule;
mod shard;
mod sim;
pub mod slots;
pub mod sync;
mod time;
mod trace;
mod view;

pub use adversary::{
    Adversary, CrashDirective, CrashPlan, CrashTrigger, DelayStrategy, Delivery, FixedDelay,
    HeldInfo, Release, StandardAdversary, TargetedSlowdown, UniformDelay,
};
pub use agent::{Agent, SilentAgent};
pub use builder::SimBuilder;
pub use chaos::{AdaptiveCrasher, ChaosAdversary, ChaosConfig, HoldUntilQuiescence};
pub use lane::{SerialWindowExecutor, WindowExecutor};
pub use linkfault::{
    ChurnDirective, ChurnMixer, LinkDecision, LinkFaultPlan, LossyLinks, PartitionDirective,
    PartitionHealer, RetransmitPolicy,
};
pub use report::{DownloadViolation, RunError, RunReport};
pub use schedule::{CutDecision, RecordingAdversary, ReplayAdversary, ScheduleTrace, TraceHandle};
pub use sim::Simulation;
pub use time::{ticks_to_units, Ticks, TICKS_PER_UNIT};
pub use trace::{render_trace, TraceEntry};
pub use view::{PeerRole, PeerStatus, View};

#[cfg(test)]
mod tests {
    use super::*;
    use dr_core::{BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage};

    /// Message carrying a chunk of bits (offset + payload).
    #[derive(Debug, Clone)]
    struct Chunk {
        offset: usize,
        bits: BitArray,
    }

    impl ProtocolMessage for Chunk {
        fn bit_len(&self) -> usize {
            64 + self.bits.len()
        }
    }

    /// Fault-free balanced download: query your share, broadcast it, wait
    /// for everyone else's share.
    struct Balanced {
        out: dr_core::PartialArray,
        done: Option<BitArray>,
    }

    impl Balanced {
        fn new(n: usize) -> Self {
            Balanced {
                out: dr_core::PartialArray::new(n),
                done: None,
            }
        }
        fn check_done(&mut self) {
            if self.done.is_none() && self.out.is_complete() {
                self.done = Some(self.out.clone().into_complete());
            }
        }
    }

    impl Protocol for Balanced {
        type Msg = Chunk;
        fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
            let n = ctx.input_len();
            let k = ctx.num_peers();
            let me = ctx.me().index();
            let per = n.div_ceil(k);
            let range = (me * per).min(n)..((me + 1) * per).min(n);
            let bits = ctx.query_range(range.clone());
            self.out.learn_slice(range.start, &bits);
            ctx.broadcast(Chunk {
                offset: range.start,
                bits,
            });
            self.check_done();
        }
        fn on_message(&mut self, _from: PeerId, msg: Chunk, _ctx: &mut dyn Context<Chunk>) {
            self.out.learn_slice(msg.offset, &msg.bits);
            self.check_done();
        }
        fn output(&self) -> Option<&BitArray> {
            self.done.as_ref()
        }
    }

    fn run_balanced(seed: u64, n: usize, k: usize) -> (RunReport, BitArray) {
        let params = ModelParams::fault_free(n, k).unwrap();
        let sim = SimBuilder::new(params)
            .seed(seed)
            .protocol(move |_| Balanced::new(n))
            .build();
        let input = sim.input().clone();
        (sim.run().unwrap(), input)
    }

    #[test]
    fn balanced_download_fault_free() {
        let (report, input) = run_balanced(42, 256, 8);
        report.verify_downloads(&input).unwrap();
        // Each peer queries exactly its ⌈n/k⌉ share.
        assert_eq!(report.max_nonfaulty_queries, 32);
        // k*(k-1) chunk messages.
        assert_eq!(report.messages_sent, 8 * 7);
        assert!(report.virtual_time_units > 0.0);
    }

    #[test]
    fn bulk_query_meter_matches_bitwise_reference() {
        // Before the bulk fast path, SimCtx::query_range looped over
        // query(), metering each index one at a time. The bulk path must
        // charge identically: with Balanced at n=256, k=8 every peer is
        // charged its 32-bit share and the index log is that peer's
        // contiguous range in ascending order — the exact pre-change values.
        let n = 256;
        let k = 8;
        let params = ModelParams::fault_free(n, k).unwrap();
        let sim = SimBuilder::new(params)
            .seed(42)
            .protocol(move |_| Balanced::new(n))
            .track_query_indices()
            .build();
        let report = sim.run().unwrap();
        assert_eq!(report.query_counts, vec![32; 8]);
        let logs = report.query_indices.as_ref().expect("tracking enabled");
        for (p, log) in logs.iter().enumerate() {
            let expect: Vec<usize> = (p * 32..(p + 1) * 32).collect();
            assert_eq!(log, &expect, "peer {p} index log");
        }
    }

    #[test]
    fn same_seed_same_execution() {
        let (r1, _) = run_balanced(7, 128, 4);
        let (r2, _) = run_balanced(7, 128, 4);
        assert_eq!(r1.query_counts, r2.query_counts);
        assert_eq!(r1.messages_sent, r2.messages_sent);
        assert_eq!(r1.virtual_time_ticks, r2.virtual_time_ticks);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn different_seeds_differ() {
        let (r1, _) = run_balanced(1, 128, 4);
        let (r2, _) = run_balanced(2, 128, 4);
        // Virtual time depends on random latencies; astronomically unlikely
        // to collide exactly.
        assert_ne!(r1.virtual_time_ticks, r2.virtual_time_ticks);
    }

    #[test]
    fn crash_makes_balanced_deadlock() {
        // Balanced download waits for every peer, so one crash before
        // start must deadlock it — the motivating failure of §2.
        let n = 64;
        let params = ModelParams::builder(n, 4)
            .faults(dr_core::FaultModel::Crash, 1)
            .build()
            .unwrap();
        let sim = SimBuilder::new(params)
            .seed(3)
            .protocol(move |_| Balanced::new(n))
            .adversary(StandardAdversary::new(
                UniformDelay::new(),
                CrashPlan::before_event([PeerId(2)], 0),
            ))
            .build();
        match sim.run() {
            Err(RunError::Deadlock { stuck }) => {
                assert!(!stuck.is_empty());
                assert!(!stuck.contains(&PeerId(2)));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn mid_send_crash_cuts_batch() {
        // Crash peer 0 during its start batch keeping 1 message: exactly
        // one other peer receives its chunk; the rest deadlock.
        let n = 30;
        let params = ModelParams::builder(n, 3)
            .faults(dr_core::FaultModel::Crash, 1)
            .build()
            .unwrap();
        let mut plan = CrashPlan::none();
        plan.push(CrashDirective {
            peer: PeerId(0),
            trigger: CrashTrigger::DuringSend { event: 0, keep: 1 },
        });
        let sim = SimBuilder::new(params)
            .seed(11)
            .protocol(move |_| Balanced::new(n))
            .adversary(StandardAdversary::new(UniformDelay::new(), plan))
            .build();
        match sim.run() {
            Err(RunError::Deadlock { stuck }) => {
                // The kept message goes to peer 1 (first in broadcast
                // order), so peer 1 completes and only peer 2 is stuck.
                assert_eq!(stuck, vec![PeerId(2)]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn event_limit_guards_livelock() {
        // A protocol that ping-pongs forever trips the guard.
        #[derive(Debug, Clone)]
        struct Ping;
        impl ProtocolMessage for Ping {
            fn bit_len(&self) -> usize {
                1
            }
        }
        struct Pinger;
        impl Protocol for Pinger {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
                ctx.broadcast(Ping);
            }
            fn on_message(&mut self, from: PeerId, _m: Ping, ctx: &mut dyn Context<Ping>) {
                ctx.send(from, Ping);
            }
            fn output(&self) -> Option<&BitArray> {
                None
            }
        }
        let params = ModelParams::fault_free(8, 2).unwrap();
        let sim = SimBuilder::new(params)
            .seed(0)
            .protocol(|_| Pinger)
            .max_events(1000)
            .build();
        assert!(matches!(
            sim.run(),
            Err(RunError::EventLimitExceeded { limit: 1000 })
        ));
    }

    #[test]
    fn long_messages_charged_as_packets() {
        // With a = 64 bits, each 128-bit chunk + 64-bit header is 3 packets.
        let n = 256;
        let params = ModelParams::builder(n, 2).message_bits(64).build().unwrap();
        let sim = SimBuilder::new(params)
            .seed(5)
            .protocol(move |_| Balanced::new(n))
            .build();
        let report = sim.run().unwrap();
        assert_eq!(report.messages_sent, 2 * 3);
    }

    #[test]
    fn held_messages_released_at_quiescence() {
        // An adversary that holds every message: balanced download can
        // only finish via quiescence releases.
        struct HoldAll;
        impl Adversary<Chunk> for HoldAll {
            fn on_send(
                &mut self,
                _view: &View<'_>,
                _from: PeerId,
                _to: PeerId,
                _msg: &Chunk,
                _rng: &mut rand::rngs::StdRng,
            ) -> Delivery {
                Delivery::Hold
            }
        }
        let n = 64;
        let params = ModelParams::fault_free(n, 4).unwrap();
        let sim = SimBuilder::new(params)
            .seed(9)
            .protocol(move |_| Balanced::new(n))
            .adversary(HoldAll)
            .build();
        let input = sim.input().clone();
        let report = sim.run().unwrap();
        report.verify_downloads(&input).unwrap();
        assert!(report.quiescence_releases >= 1);
    }

    #[test]
    fn byzantine_silent_peer_consumes_budget() {
        let n = 60;
        let params = ModelParams::builder(n, 3)
            .faults(dr_core::FaultModel::Byzantine, 1)
            .build()
            .unwrap();
        // Balanced download with a silent Byzantine peer deadlocks: the
        // honest peers wait for its chunk forever.
        let sim = SimBuilder::new(params)
            .seed(2)
            .protocol(move |_| Balanced::new(n))
            .byzantine(PeerId(1), SilentAgent::new())
            .build();
        match sim.run() {
            Err(RunError::Deadlock { stuck }) => assert_eq!(stuck.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "exceed fault budget")]
    fn too_many_byzantine_panics() {
        let params = ModelParams::builder(8, 3)
            .faults(dr_core::FaultModel::Byzantine, 1)
            .build()
            .unwrap();
        let _ = SimBuilder::new(params)
            .protocol(move |_| Balanced::new(8))
            .byzantine(PeerId(0), SilentAgent::new())
            .byzantine(PeerId(1), SilentAgent::new())
            .build();
    }
}
