//! The discrete-event simulator for asynchronous faulty executions.
//!
//! [`Simulation`] drives a set of [`Agent`]s (honest protocol instances and
//! Byzantine behaviours) under an [`Adversary`] that controls start times,
//! message latencies, holds, and crashes, while metering queries, messages,
//! and virtual time. The semantics follow §1.2 of the paper:
//!
//! * every event-handler invocation is one atomic local step; the peer may
//!   query the source synchronously and emit messages;
//! * the adversary fixes each message's (finite) latency when it is sent,
//!   or holds it; held messages must be released at quiescence (§3.1);
//! * crashes happen only between steps — either immediately before an
//!   event is processed or mid-way through the outgoing batch of a step
//!   ("the peer has sent some, but perhaps not all, of its messages");
//! * a message longer than the model's `a` bits is charged as
//!   `⌈len/a⌉` packets and its delivery takes proportionally longer.
//!
//! # Hot-loop layout
//!
//! Message payloads never live inside heap nodes. Every in-flight or held
//! payload sits in a slab (see the `shard` module) and is addressed by a
//! `u32` slot, so a queued event is a small `Copy` struct and heap sifts
//! move a handful of words instead of whole `BitArray`s. Each slot is
//! owned by exactly one of: a queued `Deliver` event, a held message, or a
//! pre-start buffer entry; whichever path consumes or drops the message
//! frees the slot. Combined with the copy-on-write `BitArray` buffer, a
//! k-recipient broadcast of an n-bit payload costs O(k) reference bumps,
//! not O(k·n) copied bits.
//!
//! # Lane-major state and parallel windows
//!
//! Mutable per-peer state (agent, RNG, pre-start buffer, lifecycle-flag
//! mirror) lives in per-shard [`Lane`]s rather than k-length vectors, and
//! query accounting goes through each lane's `MeterDelta` rather than the
//! shared meter's atomics. The coordinator keeps the authoritative
//! contiguous [`PeerStatus`] vector — the read-only core every adversary
//! `View` borrows — and mirrors every lifecycle transition into the owning
//! lane's flags. When a [`WindowExecutor`] is installed, window batches
//! whose events all share one tick run their per-shard halves on worker
//! threads and replay the global bookkeeping serially — see `lane.rs` for
//! the two-pass argument and why `RunReport::fingerprint()` is
//! bit-identical to the serial pump for every (shards × threads)
//! combination.

use crate::adversary::{Adversary, Delivery, HeldInfo, Release};
use crate::agent::Agent;
use crate::lane::{Lane, LaneCtx, Pass1Outcome, WindowExecutor};
use crate::linkfault::{LinkDecision, RuntimeLinkState};
use crate::report::{RunError, RunReport};
use crate::shard::{EventKind, EventPump, MsgSlab, QueuedEvent};
use crate::slots::ResultSlots;
use crate::time::{Ticks, TICKS_PER_UNIT};
use crate::trace::TraceEntry;
use crate::view::{LaneFlags, PeerRole, PeerStatus, View};
use dr_core::collections::DetMap;
use dr_core::{BitArray, ModelParams, PeerId, PeerSet, ProtocolMessage, SharedSource};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct HeldMessage {
    from: PeerId,
    to: PeerId,
    slot: u32,
    sent_at: Ticks,
    packets: u64,
}

/// Bookkeeping for a message awaiting a backed-off resend. The payload's
/// slab slot is owned by the queued `Retransmit` event; this carries the
/// metadata the resend needs (keyed by `(to, slot)` in
/// `Simulation::retrans`).
struct RetransState {
    /// Latency the adversary assigned at the original send, reused for
    /// every attempt so the RNG draw count is schedule-stable.
    latency: Ticks,
    packets: u64,
    /// Failed transmission attempts so far (≥ 1 once state exists).
    attempt: u32,
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// Construct through [`SimBuilder`](crate::SimBuilder).
pub struct Simulation<M: ProtocolMessage> {
    pub(crate) params: ModelParams,
    /// Resident reference copy of the source (absent for streaming runs
    /// built with `SimBuilder::streaming_source`).
    pub(crate) input: Option<BitArray>,
    pub(crate) source: SharedSource,
    /// Authoritative per-peer status — the shared read-only core every
    /// adversary `View` borrows. Lifecycle bits are mirrored into the
    /// owning lane's `LaneFlags` at every transition.
    pub(crate) status: Vec<PeerStatus>,
    pub(crate) adversary: Box<dyn Adversary<M>>,
    pub(crate) adv_rng: StdRng,
    pub(crate) max_events: u64,
    /// Per-shard mutable peer state: peer `p` lives in lane
    /// `p % lanes.len()` at slot `p / lanes.len()`.
    lanes: Vec<Lane<M>>,
    pump: EventPump<M>,
    /// Executor for parallel window batches; `None` keeps every window on
    /// the calling thread through the identical two-pass path disabled.
    pub(crate) executor: Option<Arc<dyn WindowExecutor>>,
    /// Minimum unserved window size worth fanning out to workers; smaller
    /// windows stay on the serial pop path.
    pub(crate) parallel_window_min: usize,
    held: Vec<HeldMessage>,
    /// Validated runtime form of the adversary's link-fault plan
    /// (partitions, churn windows, retransmission policy).
    links: RuntimeLinkState,
    /// Cached [`Adversary::lossy`] answer (contractually constant per
    /// run): gates every `on_transmit` consultation.
    lossy: bool,
    /// Messages awaiting a backed-off resend, keyed by `(to, slot)`.
    retrans: DetMap<(usize, u32), RetransState>,
    /// Count of peers that are currently nonfaulty and not terminated.
    /// Maintained incrementally at crash and termination transitions so
    /// the run loop's stop check is O(1) instead of an O(k) scan.
    pending_nonfaulty: usize,
    /// Step outbox reused across serial `process_event` calls (empty
    /// between steps), so each event-handler invocation starts from
    /// retained capacity instead of a fresh allocation.
    outbox_scratch: Vec<(PeerId, M)>,
    /// `HeldInfo` buffer reused across `release_held` calls.
    held_infos: Vec<HeldInfo>,
    seq: u64,
    now: Ticks,
    crash_budget: usize,
    messages_sent: u64,
    message_bits: u64,
    events: u64,
    quiescence_releases: u64,
    parked_messages: u64,
    link_drops: u64,
    retransmissions: u64,
    messages_lost: u64,
    deferred_deliveries: u64,
    trace: Option<Vec<TraceEntry>>,
}

impl<M: ProtocolMessage> Simulation<M> {
    // Crate-internal constructor fed piecewise by SimBuilder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        params: ModelParams,
        input: Option<BitArray>,
        source: SharedSource,
        agents: Vec<Box<dyn Agent<M>>>,
        roles: Vec<PeerRole>,
        adversary: Box<dyn Adversary<M>>,
        seed: u64,
        max_events: u64,
        shards: usize,
        slab_capacity: u32,
    ) -> Self {
        let k = params.k();
        let byz = roles.iter().filter(|r| **r == PeerRole::Byzantine).count();
        assert!(
            byz <= params.b(),
            "{byz} Byzantine peers exceed fault budget b={}",
            params.b()
        );
        // Joint fault budget: crashes and Byzantine corruptions draw from
        // the same `b`. Adversaries with a declared crash plan are rejected
        // at build time instead of panicking mid-run.
        if let Some(planned) = adversary.planned_crashes() {
            assert!(
                byz + planned <= params.b(),
                "joint fault budget exceeded: {planned} planned crashes + {byz} Byzantine \
                 peers > b={}",
                params.b()
            );
        }
        // The link-fault plan is static for the run: fetch it once,
        // validate it against the peer count, and cache the (contractually
        // constant) lossiness flag.
        let link_plan = adversary.link_fault_plan();
        let links = RuntimeLinkState::new(&link_plan, k);
        let lossy = adversary.lossy();
        let mut lanes: Vec<Lane<M>> = (0..shards)
            .map(|s| Lane {
                shard: s,
                num_shards: shards,
                agents: Vec::new(),
                rngs: Vec::new(),
                pre_start: Vec::new(),
                flags: Vec::new(),
                delta: source.meter().delta(s, shards),
                source: source.source_arc(),
                spare_outboxes: Vec::new(),
            })
            .collect();
        for (p, agent) in agents.into_iter().enumerate() {
            let lane = &mut lanes[p % shards];
            lane.agents.push(agent);
            lane.rngs.push(StdRng::seed_from_u64(
                seed.wrapping_mul(0x9e37_79b9).wrapping_add(p as u64),
            ));
            lane.pre_start.push(Vec::new());
            lane.flags.push(LaneFlags::default());
        }
        Simulation {
            params,
            input,
            source,
            status: roles.into_iter().map(PeerStatus::new).collect(),
            adversary,
            adv_rng: StdRng::seed_from_u64(seed ^ 0xdead_beef),
            max_events,
            lanes,
            pump: EventPump::new(shards, slab_capacity),
            executor: None,
            parallel_window_min: 32,
            held: Vec::new(),
            links,
            lossy,
            retrans: DetMap::new(),
            // Nobody has crashed or terminated yet, so every honest peer
            // is pending.
            pending_nonfaulty: k - byz,
            outbox_scratch: Vec::new(),
            held_infos: Vec::new(),
            seq: 0,
            now: 0,
            crash_budget: params.b() - byz,
            messages_sent: 0,
            message_bits: 0,
            events: 0,
            quiescence_releases: 0,
            parked_messages: 0,
            link_drops: 0,
            retransmissions: 0,
            messages_lost: 0,
            deferred_deliveries: 0,
            trace: None,
        }
    }

    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
    }

    /// The input array this run downloads (for verification).
    ///
    /// # Panics
    ///
    /// Panics for runs built with
    /// [`streaming_source`](crate::SimBuilder::streaming_source), which
    /// deliberately never materialize the input; verify those with
    /// [`RunReport::verify_downloads_source`](crate::RunReport::verify_downloads_source).
    pub fn input(&self) -> &BitArray {
        self.input
            .as_ref()
            .expect("streaming run keeps no resident input; verify against the source")
    }

    /// Model parameters of this run.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The lane and lane-local slot owning `peer`.
    fn lane_slot(&self, peer: PeerId) -> (usize, usize) {
        let shards = self.lanes.len();
        (peer.index() % shards, peer.index() / shards)
    }

    fn push_event(&mut self, at: Ticks, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.pump.push(QueuedEvent { at, seq, kind });
    }

    fn crash(&mut self, peer: PeerId) {
        assert!(
            self.status[peer.index()].role == PeerRole::Honest,
            "adversary tried to crash Byzantine peer {peer}"
        );
        assert!(
            self.crash_budget > 0,
            "adversary exceeded crash budget trying to crash {peer}"
        );
        self.crash_budget -= 1;
        let st = &mut self.status[peer.index()];
        // Both crash hooks fire only for live peers, so this peer was
        // counted in `pending_nonfaulty` unless it had already terminated
        // (possible for a mid-send crash on a peer whose final step
        // terminated it).
        debug_assert!(!st.crashed);
        if !st.terminated {
            self.pending_nonfaulty -= 1;
        }
        st.crashed = true;
        let (s, slot) = self.lane_slot(peer);
        self.lanes[s].flags[slot].crashed = true;
        let now = self.now;
        self.record(TraceEntry::Crash { at: now, peer });
        // A crashed peer never starts, so anything parked in its pre-start
        // buffer can never be delivered or dropped through the normal
        // paths — free those slots now instead of leaking them for the
        // rest of the run.
        let waiting = std::mem::take(&mut self.lanes[s].pre_start[slot]);
        for (from, pslot) in waiting {
            drop(self.pump.take_payload(peer, pslot));
            self.record(TraceEntry::Drop {
                at: now,
                from,
                to: peer,
            });
        }
    }

    fn all_nonfaulty_terminated(&self) -> bool {
        self.status
            .iter()
            .all(|s| !s.is_nonfaulty() || s.terminated)
    }

    /// Charges and schedules the outgoing batch of one step, applying the
    /// adversary's mid-send crash cut if any. Drains `outbox` (handing the
    /// buffer back with retained capacity).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::SlabOverflow`] if storing a payload would grow
    /// a message slab past its configured capacity.
    fn dispatch_outbox(
        &mut self,
        peer: PeerId,
        outbox: &mut Vec<(PeerId, M)>,
    ) -> Result<(), RunError> {
        if !self.status[peer.index()].crashed {
            let cut = {
                let view = View {
                    now: self.now,
                    peers: &self.status,
                };
                self.adversary.crash_during_send(&view, peer, outbox.len())
            };
            if let Some(keep) = cut {
                outbox.truncate(keep);
                self.crash(peer);
            }
        }
        // A peer crashed mid-send (by the cut just above) is faulty from
        // this point on: the messages it still manages to emit must not
        // count toward the non-faulty communication complexity.
        let sender_nonfaulty_now = self.status[peer.index()].is_nonfaulty();
        // Peer statuses cannot change for the rest of the batch, so one
        // `View` serves every message. The destructuring splits the borrow:
        // the view holds `status` while the loop mutates the disjoint
        // queue/slab/meter fields.
        let Simulation {
            params,
            status,
            adversary,
            adv_rng,
            pump,
            held,
            links,
            lossy,
            retrans,
            seq,
            now,
            messages_sent,
            message_bits,
            parked_messages,
            link_drops,
            retransmissions,
            messages_lost,
            trace,
            ..
        } = self;
        let view = View {
            now: *now,
            peers: &*status,
        };
        let packet_bits = params.msg_bits() as u64;
        for (to, msg) in outbox.drain(..) {
            let bits = msg.bit_len() as u64;
            let packets = (bits.div_ceil(packet_bits)).max(1);
            if sender_nonfaulty_now {
                *messages_sent += packets;
                *message_bits += bits;
            }
            match adversary.on_send(&view, peer, to, &msg, adv_rng) {
                Delivery::After(latency) => {
                    let latency = latency.clamp(1, TICKS_PER_UNIT);
                    let transmission = (packets - 1) * TICKS_PER_UNIT;
                    // An active cut parks the message: it keeps its slab
                    // slot (owned by the delivery event, so the leak audit
                    // covers it) and re-enters delivery deterministically
                    // when the partition heals. The adversary's `on_send`
                    // was consulted as usual, so the RNG draw sequence and
                    // positional schedule trace are partition-agnostic.
                    if let Some(heal) = links.cut_heal(peer, to, *now) {
                        *parked_messages += 1;
                        if let Some(trace) = trace {
                            trace.push(TraceEntry::Park {
                                at: *now,
                                from: peer,
                                to,
                                until: heal,
                            });
                        }
                        let slot =
                            pump.insert_payload(to, msg)
                                .map_err(|e| RunError::SlabOverflow {
                                    capacity: e.capacity,
                                })?;
                        let s = *seq;
                        *seq += 1;
                        pump.push(QueuedEvent {
                            at: heal + latency + transmission,
                            seq: s,
                            kind: EventKind::Deliver {
                                from: peer,
                                to,
                                slot,
                            },
                        });
                        continue;
                    }
                    // Lossy links: the initial transmission attempt may be
                    // dropped, invoking the bounded retransmission layer.
                    if *lossy
                        && matches!(
                            adversary.on_transmit(&view, peer, to, 0, adv_rng),
                            LinkDecision::Drop
                        )
                    {
                        *link_drops += 1;
                        if let Some(trace) = trace {
                            trace.push(TraceEntry::LinkDrop {
                                at: *now,
                                from: peer,
                                to,
                                attempt: 0,
                            });
                        }
                        let slot =
                            pump.insert_payload(to, msg)
                                .map_err(|e| RunError::SlabOverflow {
                                    capacity: e.capacity,
                                })?;
                        if links.policy.max_retries == 0 {
                            // No retries allowed: the message is lost. The
                            // drop frees the slot immediately instead of
                            // leaking it.
                            drop(pump.take_payload(to, slot));
                            *messages_lost += 1;
                            if let Some(trace) = trace {
                                trace.push(TraceEntry::Lost {
                                    at: *now,
                                    from: peer,
                                    to,
                                    attempts: 1,
                                });
                            }
                            if links.policy.fail_fast {
                                return Err(RunError::RetriesExhausted {
                                    from: peer,
                                    to,
                                    attempts: 1,
                                });
                            }
                        } else {
                            *retransmissions += 1;
                            retrans.insert(
                                (to.index(), slot),
                                RetransState {
                                    latency,
                                    packets,
                                    attempt: 1,
                                },
                            );
                            let s = *seq;
                            *seq += 1;
                            pump.push(QueuedEvent {
                                at: *now + links.backoff(1),
                                seq: s,
                                kind: EventKind::Retransmit {
                                    from: peer,
                                    to,
                                    slot,
                                },
                            });
                        }
                        continue;
                    }
                    let at = *now + latency + transmission;
                    let slot =
                        pump.insert_payload(to, msg)
                            .map_err(|e| RunError::SlabOverflow {
                                capacity: e.capacity,
                            })?;
                    let s = *seq;
                    *seq += 1;
                    pump.push(QueuedEvent {
                        at,
                        seq: s,
                        kind: EventKind::Deliver {
                            from: peer,
                            to,
                            slot,
                        },
                    });
                }
                Delivery::Hold => {
                    if let Some(trace) = trace {
                        trace.push(TraceEntry::Hold {
                            at: *now,
                            from: peer,
                            to,
                        });
                    }
                    let slot =
                        pump.insert_payload(to, msg)
                            .map_err(|e| RunError::SlabOverflow {
                                capacity: e.capacity,
                            })?;
                    held.push(HeldMessage {
                        from: peer,
                        to,
                        slot,
                        sent_at: *now,
                        packets,
                    });
                }
            }
        }
        Ok(())
    }

    /// Delivers one event to a peer, running its handler. The produced
    /// outbox is left in `outbox_scratch`; returns the stepping peer, or
    /// `None` if the event was dropped (peer crashed, terminated, or
    /// crashed by the adversary just now).
    fn process_event(&mut self, kind: EventKind) -> Option<PeerId> {
        let to = kind.subject();
        let (s, slot) = self.lane_slot(to);
        let st = self.status[to.index()].clone();
        if st.crashed || st.terminated {
            if let EventKind::Deliver { from, to, slot } = kind {
                drop(self.pump.take_payload(to, slot));
                let at = self.now;
                self.record(TraceEntry::Drop { at, from, to });
            }
            return None;
        }
        // Churn: a peer that has left the network takes no steps until it
        // rejoins. Every event addressed to it — starts included — is
        // deferred to the rejoin tick, its payload slot riding along (the
        // re-pushed event owns it), so nothing is lost or leaked.
        if let Some(rejoin) = self.links.away_until(to, self.now) {
            self.deferred_deliveries += 1;
            let at = self.now;
            self.record(TraceEntry::ChurnDefer {
                at,
                peer: to,
                until: rejoin,
            });
            self.push_event(rejoin, kind);
            return None;
        }
        // A peer takes no steps before its start event: messages that
        // arrive earlier wait in a per-peer buffer (keeping their slab
        // slot) and are re-enqueued the moment the peer starts
        // (equivalent to the adversary delaying them until the recipient
        // is awake).
        if !st.started {
            if let EventKind::Deliver {
                from, slot: pslot, ..
            } = kind
            {
                self.lanes[s].pre_start[slot].push((from, pslot));
                return None;
            }
        }
        // Crash faults fire only between steps: the adversary may fell the
        // peer immediately before it processes this event.
        if st.role == PeerRole::Honest && self.crash_budget > 0 {
            let crash_now = {
                let view = View {
                    now: self.now,
                    peers: &self.status,
                };
                self.adversary.crash_before_event(&view, to)
            };
            if crash_now {
                self.crash(to);
                if let EventKind::Deliver { slot, .. } = kind {
                    drop(self.pump.take_payload(to, slot));
                }
                return None;
            }
        }
        self.status[to.index()].events_processed += 1;
        self.events += 1;
        let is_start = matches!(kind, EventKind::Start(_));
        // Move the payload out of the slab (freeing the slot) before the
        // handler runs; the agent takes it by value.
        let delivery = match kind {
            EventKind::Start(peer) => {
                let at = self.now;
                self.record(TraceEntry::Start { at, peer });
                None
            }
            EventKind::Deliver { from, slot, .. } => {
                let msg = self.pump.take_payload(to, slot);
                let (at, bits) = (self.now, msg.bit_len());
                self.record(TraceEntry::Deliver { at, from, to, bits });
                Some((from, msg))
            }
            EventKind::Retransmit { .. } => {
                unreachable!("retransmit events are handled by the coordinator, not process_event")
            }
        };
        if is_start {
            self.status[to.index()].started = true;
        }
        debug_assert!(self.outbox_scratch.is_empty());
        {
            let Lane {
                agents,
                rngs,
                flags,
                delta,
                source,
                ..
            } = &mut self.lanes[s];
            let mut ctx = LaneCtx {
                me: to,
                num_peers: self.params.k(),
                input_len: self.params.n(),
                source: &**source,
                delta,
                rng: &mut rngs[slot],
                outbox: &mut self.outbox_scratch,
            };
            match delivery {
                None => {
                    flags[slot].started = true;
                    agents[slot].on_start(&mut ctx);
                }
                Some((from, msg)) => {
                    agents[slot].on_message(from, msg, &mut ctx);
                }
            }
        }
        // Serial steps keep the shared meter current at step granularity:
        // one atomic merge per touched peer per step (cheaper than the old
        // per-query atomics, identical totals and per-peer index order).
        self.source.meter().fold(&mut self.lanes[s].delta);
        if is_start {
            // Deliver anything that arrived before the peer woke up,
            // immediately after its start step, in arrival order.
            let waiting = std::mem::take(&mut self.lanes[s].pre_start[slot]);
            for (from, pslot) in waiting {
                let now = self.now;
                self.push_event(
                    now,
                    EventKind::Deliver {
                        from,
                        to,
                        slot: pslot,
                    },
                );
            }
        }
        let was_terminated = self.status[to.index()].terminated;
        let terminated = self.lanes[s].agents[slot].is_terminated();
        self.status[to.index()].terminated = terminated;
        self.lanes[s].flags[slot].terminated = terminated;
        if !was_terminated && terminated {
            if self.status[to.index()].is_nonfaulty() {
                self.pending_nonfaulty -= 1;
            }
            let now = self.now;
            self.record(TraceEntry::Terminate { at: now, peer: to });
        }
        Some(to)
    }

    /// Whether window batches may fan out to worker threads at all for
    /// this run: needs an executor, more than one shard, no trace
    /// recording (lanes don't record), and an adversary whose crash hooks
    /// are inert (see [`Adversary::parallel_safe`]).
    fn parallel_eligible(&self) -> bool {
        self.executor.is_some()
            && self.pump.num_shards() > 1
            && self.trace.is_none()
            && self.adversary.parallel_safe()
            // Link faults degrade to the bit-identical serial pump:
            // transmit decisions, partition parking, and churn deferrals
            // interleave with the global event order, which only the
            // serial path reproduces exactly.
            && !self.lossy
            && self.links.is_trivial()
    }

    /// Runs the execution to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] if every queue drains while a
    /// nonfaulty peer is still waiting (the protocols in the paper are
    /// proven never to reach this state),
    /// [`RunError::EventLimitExceeded`] if the livelock guard trips, or
    /// [`RunError::SlabOverflow`] if a payload slab hits its configured
    /// slot capacity.
    pub fn run(mut self) -> Result<RunReport, RunError> {
        // The adversary decides when every peer starts (any finite offset;
        // there is no simultaneous-start assumption).
        for p in 0..self.params.k() {
            let offset = self.adversary.start_offset(PeerId(p), &mut self.adv_rng);
            self.push_event(offset, EventKind::Start(PeerId(p)));
        }
        let executor = if self.parallel_eligible() {
            self.executor.clone()
        } else {
            None
        };
        let window_min = self.parallel_window_min.max(1);
        loop {
            debug_assert_eq!(
                self.pending_nonfaulty == 0,
                self.all_nonfaulty_terminated(),
                "pending-nonfaulty counter out of sync with peer statuses"
            );
            if self.pending_nonfaulty == 0 {
                break;
            }
            if self.events >= self.max_events {
                return Err(RunError::EventLimitExceeded {
                    limit: self.max_events,
                });
            }
            if let Some(ex) = &executor {
                if let Some(window) = self.pump.take_window_at_least(window_min) {
                    self.now = self.now.max(window[0].at);
                    self.run_window(window, &**ex)?;
                    continue;
                }
            }
            match self.pump.pop() {
                Some(ev) => {
                    self.now = self.now.max(ev.at);
                    if let EventKind::Retransmit { from, to, slot } = ev.kind {
                        self.handle_retransmit(from, to, slot)?;
                        continue;
                    }
                    if let Some(peer) = self.process_event(ev.kind) {
                        let mut outbox = std::mem::take(&mut self.outbox_scratch);
                        let dispatched = self.dispatch_outbox(peer, &mut outbox);
                        self.outbox_scratch = outbox;
                        dispatched?;
                    }
                }
                None => {
                    if self.held.is_empty() {
                        let stuck: Vec<PeerId> = self
                            .status
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.is_nonfaulty() && !s.terminated)
                            .map(|(i, _)| PeerId(i))
                            .collect();
                        return Err(RunError::Deadlock { stuck });
                    }
                    // Quiescence: the adversary is compelled to release held
                    // messages so the system can make progress.
                    self.release_held();
                }
            }
        }
        #[cfg(debug_assertions)]
        self.assert_no_leaked_slots();
        Ok(self.into_report())
    }

    /// Executes one taken window through the two-pass scheme: pass 1 fans
    /// per-shard honest-subject batches out to `executor` (each job owning
    /// its lane and slab outright), pass 2 serially replays the global
    /// bookkeeping in seq order — including running Byzantine-subject
    /// events through the ordinary serial path. See `lane.rs` for why
    /// this is bit-identical to popping the window one event at a time.
    fn run_window(
        &mut self,
        window: Vec<QueuedEvent>,
        executor: &dyn WindowExecutor,
    ) -> Result<(), RunError> {
        let num_shards = self.lanes.len();
        // Partition honest-subject events per shard, preserving seq order.
        let mut shard_events: Vec<Vec<QueuedEvent>> = (0..num_shards).map(|_| Vec::new()).collect();
        for ev in &window {
            // Retransmit events never reach this path (lossy runs are
            // ineligible for parallel windows), but filter defensively:
            // they are coordinator work, not lane work.
            if matches!(ev.kind, EventKind::Retransmit { .. }) {
                continue;
            }
            let subject = ev.kind.subject();
            if self.status[subject.index()].role == PeerRole::Honest {
                shard_events[subject.index() % num_shards].push(*ev);
            }
        }
        // Pass 1: move each participating shard's lane and slab into a
        // job; results come home through write-once per-shard slots (the
        // put/drain protocol is model-checked in tests/loom_fold.rs).
        type LaneResult<M> = (Lane<M>, MsgSlab<M>, Vec<Pass1Outcome<M>>);
        let results: Arc<ResultSlots<LaneResult<M>>> = Arc::new(ResultSlots::new(num_shards));
        let params = self.params;
        let mut lent = vec![false; num_shards];
        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for (s, events) in shard_events.into_iter().enumerate() {
            if events.is_empty() {
                continue;
            }
            #[cfg(debug_assertions)]
            self.assert_lane_mirrors(s);
            lent[s] = true;
            let vacated = self.lanes[s].vacated();
            let mut lane = std::mem::replace(&mut self.lanes[s], vacated);
            let mut slab = self.pump.take_slab(s);
            let slots = Arc::clone(&results);
            jobs.push(Box::new(move || {
                let outcomes = lane.run_window(&mut slab, &events, &params);
                slots.put(s, (lane, slab, outcomes));
            }));
        }
        executor.run_jobs(jobs);
        // Bring lanes and slabs home and fold each shard's meter delta:
        // one atomic merge per touched peer per shard per window instead
        // of one per query. Peers never move between shards, so per-peer
        // index-log order is untouched by the shard fold order.
        let mut outcomes: Vec<std::vec::IntoIter<Pass1Outcome<M>>> =
            (0..num_shards).map(|_| Vec::new().into_iter()).collect();
        {
            let mut slots = results.take_all();
            for (s, was_lent) in lent.iter().enumerate() {
                if !was_lent {
                    continue;
                }
                let (lane, slab, outs) = slots[s]
                    .take()
                    .expect("window executor finished without running every job");
                self.lanes[s] = lane;
                self.pump.put_slab(s, slab);
                self.source.meter().fold(&mut self.lanes[s].delta);
                outcomes[s] = outs.into_iter();
            }
        }
        // Pass 2: replay global bookkeeping in seq order with the serial
        // loop's exact per-event stop/guard checks.
        for (i, ev) in window.iter().enumerate() {
            if self.pending_nonfaulty == 0 {
                self.free_unreached_window(&window[i..], &mut outcomes);
                break;
            }
            if self.events >= self.max_events {
                return Err(RunError::EventLimitExceeded {
                    limit: self.max_events,
                });
            }
            if let EventKind::Retransmit { from, to, slot } = ev.kind {
                self.handle_retransmit(from, to, slot)?;
                continue;
            }
            let subject = ev.kind.subject();
            if self.status[subject.index()].role == PeerRole::Byzantine {
                // Byzantine steps run serially: the serial loop may stop
                // mid-window, and a Byzantine handler it would never have
                // run must not run here either.
                if let Some(peer) = self.process_event(ev.kind) {
                    let mut outbox = std::mem::take(&mut self.outbox_scratch);
                    let dispatched = self.dispatch_outbox(peer, &mut outbox);
                    self.outbox_scratch = outbox;
                    dispatched?;
                }
                continue;
            }
            let s = subject.index() % num_shards;
            match outcomes[s]
                .next()
                .expect("pass-1 outcome missing for honest window event")
            {
                Pass1Outcome::Dropped | Pass1Outcome::Parked => {}
                Pass1Outcome::Stepped {
                    is_start,
                    mut outbox,
                    flush,
                    terminated_after,
                } => {
                    self.status[subject.index()].events_processed += 1;
                    self.events += 1;
                    if is_start {
                        self.status[subject.index()].started = true;
                        // Re-enqueue pre-start arrivals at the current
                        // tick — the same-tick window append, with the
                        // same seq stamps the serial loop would allocate.
                        for (from, pslot) in flush {
                            let now = self.now;
                            self.push_event(
                                now,
                                EventKind::Deliver {
                                    from,
                                    to: subject,
                                    slot: pslot,
                                },
                            );
                        }
                    }
                    let was_terminated = self.status[subject.index()].terminated;
                    self.status[subject.index()].terminated = terminated_after;
                    if !was_terminated
                        && terminated_after
                        && self.status[subject.index()].is_nonfaulty()
                    {
                        self.pending_nonfaulty -= 1;
                    }
                    let dispatched = self.dispatch_outbox(subject, &mut outbox);
                    outbox.clear();
                    self.lanes[s].spare_outboxes.push(outbox);
                    dispatched?;
                }
            }
        }
        Ok(())
    }

    /// Frees the payload slots of window events past the serial stop
    /// point (`pending_nonfaulty == 0` mid-window). The serial loop would
    /// have left these queued for the end-of-run drain; the parallel path
    /// already took them out of the pump, so it frees them here instead.
    /// Honest events past the stop point were necessarily `Dropped` by
    /// their lanes (every honest peer had terminated at an earlier seq),
    /// so only unprocessed Byzantine deliveries still own slots.
    fn free_unreached_window(
        &mut self,
        rest: &[QueuedEvent],
        outcomes: &mut [std::vec::IntoIter<Pass1Outcome<M>>],
    ) {
        let num_shards = self.lanes.len();
        for ev in rest {
            if let EventKind::Retransmit { to, slot, .. } = ev.kind {
                self.retrans.remove(&(to.index(), slot));
                drop(self.pump.take_payload(to, slot));
                continue;
            }
            let subject = ev.kind.subject();
            if self.status[subject.index()].role == PeerRole::Byzantine {
                if let EventKind::Deliver { to, slot, .. } = ev.kind {
                    drop(self.pump.take_payload(to, slot));
                }
            } else if let Some(Pass1Outcome::Stepped { flush, outbox, .. }) =
                outcomes[subject.index() % num_shards].next()
            {
                // Unreachable when every honest peer has terminated, but
                // free defensively: an unapplied step's flushed pre-start
                // slots would otherwise leak, and its outbox is dropped
                // exactly as the serial loop would never have sent it.
                drop(outbox);
                for (_, pslot) in flush {
                    drop(self.pump.take_payload(subject, pslot));
                }
            }
        }
    }

    /// A backed-off resend attempt fires: re-consult the adversary's
    /// transmit decision for the message parked in `to`'s slab at `slot`.
    /// On success the delivery is scheduled with the message's original
    /// latency; on another drop the backoff doubles until the retry cap,
    /// after which the message is abandoned (slot freed, counted into
    /// `messages_lost`, and — under a fail-fast policy — surfaced as
    /// [`RunError::RetriesExhausted`]).
    fn handle_retransmit(&mut self, from: PeerId, to: PeerId, slot: u32) -> Result<(), RunError> {
        let st = self
            .retrans
            .remove(&(to.index(), slot))
            .expect("retransmit event fired without resend state");
        let target = &self.status[to.index()];
        if target.crashed || target.terminated {
            // Same as a delivery to a dead peer: free the slot and move on.
            drop(self.pump.take_payload(to, slot));
            let at = self.now;
            self.record(TraceEntry::Drop { at, from, to });
            return Ok(());
        }
        let transmission = (st.packets - 1) * TICKS_PER_UNIT;
        // A cut that opened since the original send parks the resend until
        // heal — the link is down, so no transmit decision is consulted.
        if let Some(heal) = self.links.cut_heal(from, to, self.now) {
            self.parked_messages += 1;
            let at = self.now;
            self.record(TraceEntry::Park {
                at,
                from,
                to,
                until: heal,
            });
            self.push_event(
                heal + st.latency + transmission,
                EventKind::Deliver { from, to, slot },
            );
            return Ok(());
        }
        let decision = {
            let view = View {
                now: self.now,
                peers: &self.status,
            };
            self.adversary
                .on_transmit(&view, from, to, st.attempt, &mut self.adv_rng)
        };
        match decision {
            LinkDecision::Transmit => {
                let at = self.now + st.latency + transmission;
                self.push_event(at, EventKind::Deliver { from, to, slot });
            }
            LinkDecision::Drop => {
                self.link_drops += 1;
                let at = self.now;
                self.record(TraceEntry::LinkDrop {
                    at,
                    from,
                    to,
                    attempt: st.attempt,
                });
                if st.attempt >= self.links.policy.max_retries {
                    drop(self.pump.take_payload(to, slot));
                    self.messages_lost += 1;
                    let attempts = st.attempt + 1;
                    self.record(TraceEntry::Lost {
                        at,
                        from,
                        to,
                        attempts,
                    });
                    if self.links.policy.fail_fast {
                        return Err(RunError::RetriesExhausted { from, to, attempts });
                    }
                } else {
                    let next = st.attempt + 1;
                    self.retransmissions += 1;
                    self.retrans.insert(
                        (to.index(), slot),
                        RetransState {
                            attempt: next,
                            ..st
                        },
                    );
                    let fire = self.now + self.links.backoff(next);
                    self.push_event(fire, EventKind::Retransmit { from, to, slot });
                }
            }
        }
        Ok(())
    }

    /// Debug-build check that a lane's lifecycle-flag mirror agrees with
    /// the authoritative statuses before the lane is lent to a worker.
    #[cfg(debug_assertions)]
    fn assert_lane_mirrors(&self, s: usize) {
        let lane = &self.lanes[s];
        for (slot, flags) in lane.flags.iter().enumerate() {
            let peer = slot * self.lanes.len() + s;
            assert!(
                flags.mirrors(&self.status[peer]),
                "lane {s} flags out of sync with status for peer {peer}"
            );
        }
    }

    /// Debug-build invariant: at the end of a successful run every slab
    /// slot is owned by a still-pending queue event, held message, or
    /// pre-start buffer entry — after draining those, zero payloads may
    /// remain live. Catches lifecycle leaks (e.g. slots stranded by a
    /// cancelled delivery) that release builds would silently accumulate.
    #[cfg(debug_assertions)]
    fn assert_no_leaked_slots(&mut self) {
        let shards = self.lanes.len();
        while let Some(ev) = self.pump.pop() {
            match ev.kind {
                EventKind::Deliver { to, slot, .. } => {
                    drop(self.pump.take_payload(to, slot));
                }
                // A pending resend owns its payload slot exactly like a
                // queued delivery; drop its metadata alongside the slot.
                EventKind::Retransmit { to, slot, .. } => {
                    self.retrans.remove(&(to.index(), slot));
                    drop(self.pump.take_payload(to, slot));
                }
                EventKind::Start(_) => {}
            }
        }
        assert!(
            self.retrans.is_empty(),
            "slab leak: resend state with no queued retransmit event"
        );
        for h in std::mem::take(&mut self.held) {
            drop(self.pump.take_payload(h.to, h.slot));
        }
        for s in 0..shards {
            let buffers = std::mem::take(&mut self.lanes[s].pre_start);
            for (slot_idx, buf) in buffers.into_iter().enumerate() {
                let peer = PeerId(slot_idx * shards + s);
                if self.status[peer.index()].crashed {
                    assert!(
                        buf.is_empty(),
                        "slab leak: crashed peer {peer} still owns pre-start slots"
                    );
                }
                for (_, pslot) in buf {
                    drop(self.pump.take_payload(peer, pslot));
                }
            }
        }
        assert_eq!(
            self.pump.live_payloads(),
            0,
            "slab leak: payload slots live with no owner at end of run"
        );
    }

    fn release_held(&mut self) {
        self.quiescence_releases += 1;
        self.held_infos.clear();
        self.held_infos.extend(self.held.iter().map(|h| HeldInfo {
            from: h.from,
            to: h.to,
            sent_at: h.sent_at,
        }));
        let decision = self.adversary.on_quiescence(
            &View {
                now: self.now,
                peers: &self.status,
            },
            &self.held_infos,
        );
        let mut chosen = match decision {
            Release::All => (0..self.held.len()).collect::<Vec<_>>(),
            Release::Some(indices) => indices,
        };
        chosen.sort_unstable();
        chosen.dedup();
        chosen.retain(|&i| i < self.held.len());
        // The quiescence rule compels progress: an adversary that selects
        // nothing releasable would stall the run forever, which the model
        // forbids — fail loudly instead of spinning.
        assert!(
            !chosen.is_empty(),
            "adversary released no held message at quiescence ({} held) — \
             the model compels release (§3.1); return Release::All or a \
             non-empty in-range Release::Some",
            self.held.len()
        );
        let now = self.now;
        let released = chosen.len();
        self.record(TraceEntry::QuiescenceRelease { at: now, released });
        // Remove in reverse so indices stay valid. The payload never
        // moves: its slot passes straight from the held entry to the
        // delivery event.
        for &i in chosen.iter().rev() {
            let h = self.held.swap_remove(i);
            let transmission = (h.packets - 1) * TICKS_PER_UNIT;
            // A compelled release still cannot cross an unhealed cut: the
            // message counts as released (the compelled-progress rule is
            // about the adversary's hold, not the link), but its delivery
            // parks until the partition heals.
            let at = match self.links.cut_heal(h.from, h.to, self.now) {
                Some(heal) => {
                    self.parked_messages += 1;
                    let (at, from, to) = (self.now, h.from, h.to);
                    self.record(TraceEntry::Park {
                        at,
                        from,
                        to,
                        until: heal,
                    });
                    heal + 1 + transmission
                }
                None => self.now + 1 + transmission,
            };
            self.push_event(
                at,
                EventKind::Deliver {
                    from: h.from,
                    to: h.to,
                    slot: h.slot,
                },
            );
        }
    }

    fn into_report(mut self) -> RunReport {
        let k = self.params.k();
        let shards = self.lanes.len();
        // Every delta should already be folded (serial steps fold per
        // event, parallel windows at the barrier); fold defensively so the
        // meter is provably complete before it is read.
        for lane in &mut self.lanes {
            self.source.meter().fold(&mut lane.delta);
        }
        let mut nonfaulty = PeerSet::new(k);
        let mut crashed = PeerSet::new(k);
        let mut byzantine = PeerSet::new(k);
        for (i, s) in self.status.iter().enumerate() {
            if s.is_nonfaulty() {
                nonfaulty.insert(PeerId(i));
            }
            if s.crashed {
                crashed.insert(PeerId(i));
            }
            if s.role == PeerRole::Byzantine {
                byzantine.insert(PeerId(i));
            }
        }
        let query_counts = self.source.meter().counts();
        let query_indices = self.source.meter().indices(PeerId(0)).map(|_| {
            (0..k)
                .map(|p| {
                    self.source
                        .meter()
                        .indices(PeerId(p))
                        .expect("tracking enabled")
                })
                .collect()
        });
        let max_nonfaulty_queries = self.source.meter().max_over(nonfaulty.iter());
        RunReport {
            outputs: (0..k)
                .map(|p| self.lanes[p % shards].agents[p / shards].output().cloned())
                .collect(),
            nonfaulty,
            crashed,
            byzantine,
            query_counts,
            query_indices,
            max_nonfaulty_queries,
            messages_sent: self.messages_sent,
            message_bits: self.message_bits,
            virtual_time_units: RunReport::time_units_of(self.now),
            virtual_time_ticks: self.now,
            events: self.events,
            quiescence_releases: self.quiescence_releases,
            parked_messages: self.parked_messages,
            link_drops: self.link_drops,
            retransmissions: self.retransmissions,
            messages_lost: self.messages_lost,
            deferred_deliveries: self.deferred_deliveries,
            peak_queue_len: self.pump.peak_queued() as u64,
            peak_slab_len: self.pump.peak_live() as u64,
            peak_queue_lens: self.pump.peak_queued_per_shard(),
            peak_slab_lens: self.pump.peak_live_per_shard(),
            trace: self.trace,
        }
    }
}
