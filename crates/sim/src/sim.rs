//! The discrete-event simulator for asynchronous faulty executions.
//!
//! [`Simulation`] drives a set of [`Agent`]s (honest protocol instances and
//! Byzantine behaviours) under an [`Adversary`] that controls start times,
//! message latencies, holds, and crashes, while metering queries, messages,
//! and virtual time. The semantics follow §1.2 of the paper:
//!
//! * every event-handler invocation is one atomic local step; the peer may
//!   query the source synchronously and emit messages;
//! * the adversary fixes each message's (finite) latency when it is sent,
//!   or holds it; held messages must be released at quiescence (§3.1);
//! * crashes happen only between steps — either immediately before an
//!   event is processed or mid-way through the outgoing batch of a step
//!   ("the peer has sent some, but perhaps not all, of its messages");
//! * a message longer than the model's `a` bits is charged as
//!   `⌈len/a⌉` packets and its delivery takes proportionally longer.
//!
//! # Hot-loop layout
//!
//! Message payloads never live inside heap nodes. Every in-flight or held
//! payload sits in a slab (see the `shard` module) and is addressed by a
//! `u32` slot, so a queued event is a small `Copy` struct and heap sifts
//! move a handful of words instead of whole `BitArray`s. Each slot is
//! owned by exactly one of: a queued `Deliver` event, a held message, or a
//! pre-start buffer entry; whichever path consumes or drops the message
//! frees the slot. Combined with the copy-on-write `BitArray` buffer, a
//! k-recipient broadcast of an n-bit payload costs O(k) reference bumps,
//! not O(k·n) copied bits. The queue/slab pair itself comes in a serial
//! and a sharded flavour behind [`EventPump`] — see `shard.rs` for the
//! window-barrier determinism argument.

use crate::adversary::{Adversary, Delivery, HeldInfo, Release};
use crate::agent::Agent;
use crate::report::{RunError, RunReport};
use crate::shard::{EventKind, EventPump, QueuedEvent};
use crate::time::{Ticks, TICKS_PER_UNIT};
use crate::trace::TraceEntry;
use crate::view::{PeerRole, PeerStatus, View};
use dr_core::{
    BitArray, Context, ModelParams, PeerId, PeerSet, ProtocolMessage, SharedSource, SourceHandle,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

struct HeldMessage {
    from: PeerId,
    to: PeerId,
    slot: u32,
    sent_at: Ticks,
    packets: u64,
}

struct SimCtx<'a, M> {
    me: PeerId,
    num_peers: usize,
    input_len: usize,
    handle: &'a SourceHandle,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(PeerId, M)>,
}

impl<M: ProtocolMessage> Context<M> for SimCtx<'_, M> {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.num_peers
    }
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn send(&mut self, to: PeerId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn query(&mut self, index: usize) -> bool {
        self.handle.query(index)
    }
    fn query_range(&mut self, range: std::ops::Range<usize>) -> BitArray {
        // Bulk path: one meter update + word-level copy instead of the
        // default per-bit loop. Identical cost accounting and results.
        self.handle.query_range(range)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
///
/// Construct through [`SimBuilder`](crate::SimBuilder).
pub struct Simulation<M: ProtocolMessage> {
    pub(crate) params: ModelParams,
    /// Resident reference copy of the source (absent for streaming runs
    /// built with `SimBuilder::streaming_source`).
    pub(crate) input: Option<BitArray>,
    pub(crate) source: SharedSource,
    pub(crate) agents: Vec<Box<dyn Agent<M>>>,
    pub(crate) status: Vec<PeerStatus>,
    pub(crate) adversary: Box<dyn Adversary<M>>,
    pub(crate) rngs: Vec<StdRng>,
    pub(crate) adv_rng: StdRng,
    pub(crate) max_events: u64,
    handles: Vec<SourceHandle>,
    pump: EventPump<M>,
    held: Vec<HeldMessage>,
    /// Messages that arrived at a peer before its start event, waiting
    /// for it to begin (a peer cannot take a step before it starts).
    /// Entries are `(from, slot)` into the payload slab.
    pre_start: Vec<Vec<(PeerId, u32)>>,
    /// Count of peers that are currently nonfaulty and not terminated.
    /// Maintained incrementally at crash and termination transitions so
    /// the run loop's stop check is O(1) instead of an O(k) scan.
    pending_nonfaulty: usize,
    /// Step outbox reused across `process_event` calls (empty between
    /// steps), so each event-handler invocation starts from retained
    /// capacity instead of a fresh allocation.
    outbox_scratch: Vec<(PeerId, M)>,
    /// `HeldInfo` buffer reused across `release_held` calls.
    held_infos: Vec<HeldInfo>,
    seq: u64,
    now: Ticks,
    crash_budget: usize,
    messages_sent: u64,
    message_bits: u64,
    events: u64,
    quiescence_releases: u64,
    trace: Option<Vec<TraceEntry>>,
}

impl<M: ProtocolMessage> Simulation<M> {
    // Crate-internal constructor fed piecewise by SimBuilder.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        params: ModelParams,
        input: Option<BitArray>,
        source: SharedSource,
        agents: Vec<Box<dyn Agent<M>>>,
        roles: Vec<PeerRole>,
        adversary: Box<dyn Adversary<M>>,
        seed: u64,
        max_events: u64,
        shards: usize,
        slab_capacity: u32,
    ) -> Self {
        let k = params.k();
        let handles = (0..k).map(|p| source.handle(PeerId(p))).collect();
        let rngs = (0..k)
            .map(|p| StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(p as u64)))
            .collect();
        let byz = roles.iter().filter(|r| **r == PeerRole::Byzantine).count();
        assert!(
            byz <= params.b(),
            "{byz} Byzantine peers exceed fault budget b={}",
            params.b()
        );
        // Joint fault budget: crashes and Byzantine corruptions draw from
        // the same `b`. Adversaries with a declared crash plan are rejected
        // at build time instead of panicking mid-run.
        if let Some(planned) = adversary.planned_crashes() {
            assert!(
                byz + planned <= params.b(),
                "joint fault budget exceeded: {planned} planned crashes + {byz} Byzantine \
                 peers > b={}",
                params.b()
            );
        }
        Simulation {
            params,
            input,
            source,
            agents,
            status: roles.into_iter().map(PeerStatus::new).collect(),
            adversary,
            rngs,
            adv_rng: StdRng::seed_from_u64(seed ^ 0xdead_beef),
            max_events,
            handles,
            pump: EventPump::new(shards, slab_capacity),
            held: Vec::new(),
            pre_start: (0..k).map(|_| Vec::new()).collect(),
            // Nobody has crashed or terminated yet, so every honest peer
            // is pending.
            pending_nonfaulty: k - byz,
            outbox_scratch: Vec::new(),
            held_infos: Vec::new(),
            seq: 0,
            now: 0,
            crash_budget: params.b() - byz,
            messages_sent: 0,
            message_bits: 0,
            events: 0,
            quiescence_releases: 0,
            trace: None,
        }
    }

    pub(crate) fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    fn record(&mut self, entry: TraceEntry) {
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
    }

    /// The input array this run downloads (for verification).
    ///
    /// # Panics
    ///
    /// Panics for runs built with
    /// [`streaming_source`](crate::SimBuilder::streaming_source), which
    /// deliberately never materialize the input; verify those with
    /// [`RunReport::verify_downloads_source`](crate::RunReport::verify_downloads_source).
    pub fn input(&self) -> &BitArray {
        self.input
            .as_ref()
            .expect("streaming run keeps no resident input; verify against the source")
    }

    /// Model parameters of this run.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    fn push_event(&mut self, at: Ticks, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.pump.push(QueuedEvent { at, seq, kind });
    }

    fn crash(&mut self, peer: PeerId) {
        assert!(
            self.status[peer.index()].role == PeerRole::Honest,
            "adversary tried to crash Byzantine peer {peer}"
        );
        assert!(
            self.crash_budget > 0,
            "adversary exceeded crash budget trying to crash {peer}"
        );
        self.crash_budget -= 1;
        let st = &mut self.status[peer.index()];
        // Both crash hooks fire only for live peers, so this peer was
        // counted in `pending_nonfaulty` unless it had already terminated
        // (possible for a mid-send crash on a peer whose final step
        // terminated it).
        debug_assert!(!st.crashed);
        if !st.terminated {
            self.pending_nonfaulty -= 1;
        }
        st.crashed = true;
        let now = self.now;
        self.record(TraceEntry::Crash { at: now, peer });
        // A crashed peer never starts, so anything parked in its pre-start
        // buffer can never be delivered or dropped through the normal
        // paths — free those slots now instead of leaking them for the
        // rest of the run.
        let waiting = std::mem::take(&mut self.pre_start[peer.index()]);
        for (from, slot) in waiting {
            drop(self.pump.take_payload(peer, slot));
            self.record(TraceEntry::Drop {
                at: now,
                from,
                to: peer,
            });
        }
    }

    fn all_nonfaulty_terminated(&self) -> bool {
        self.status
            .iter()
            .all(|s| !s.is_nonfaulty() || s.terminated)
    }

    /// Charges and schedules the outgoing batch of one step, applying the
    /// adversary's mid-send crash cut if any. Consumes (and hands back)
    /// the step outbox left in `outbox_scratch` by `process_event`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::SlabOverflow`] if storing a payload would grow
    /// a message slab past its configured capacity.
    fn dispatch_outbox(&mut self, peer: PeerId) -> Result<(), RunError> {
        let mut outbox = std::mem::take(&mut self.outbox_scratch);
        if !self.status[peer.index()].crashed {
            let cut = {
                let view = View {
                    now: self.now,
                    peers: &self.status,
                };
                self.adversary.crash_during_send(&view, peer, outbox.len())
            };
            if let Some(keep) = cut {
                outbox.truncate(keep);
                self.crash(peer);
            }
        }
        // A peer crashed mid-send (by the cut just above) is faulty from
        // this point on: the messages it still manages to emit must not
        // count toward the non-faulty communication complexity.
        let sender_nonfaulty_now = self.status[peer.index()].is_nonfaulty();
        // Peer statuses cannot change for the rest of the batch, so one
        // `View` serves every message. The destructuring splits the borrow:
        // the view holds `status` while the loop mutates the disjoint
        // queue/slab/meter fields.
        let Simulation {
            params,
            status,
            adversary,
            adv_rng,
            pump,
            held,
            seq,
            now,
            messages_sent,
            message_bits,
            trace,
            ..
        } = self;
        let view = View {
            now: *now,
            peers: &*status,
        };
        let packet_bits = params.msg_bits() as u64;
        for (to, msg) in outbox.drain(..) {
            let bits = msg.bit_len() as u64;
            let packets = (bits.div_ceil(packet_bits)).max(1);
            if sender_nonfaulty_now {
                *messages_sent += packets;
                *message_bits += bits;
            }
            match adversary.on_send(&view, peer, to, &msg, adv_rng) {
                Delivery::After(latency) => {
                    let latency = latency.clamp(1, TICKS_PER_UNIT);
                    let transmission = (packets - 1) * TICKS_PER_UNIT;
                    let at = *now + latency + transmission;
                    let slot =
                        pump.insert_payload(to, msg)
                            .map_err(|e| RunError::SlabOverflow {
                                capacity: e.capacity,
                            })?;
                    let s = *seq;
                    *seq += 1;
                    pump.push(QueuedEvent {
                        at,
                        seq: s,
                        kind: EventKind::Deliver {
                            from: peer,
                            to,
                            slot,
                        },
                    });
                }
                Delivery::Hold => {
                    if let Some(trace) = trace {
                        trace.push(TraceEntry::Hold {
                            at: *now,
                            from: peer,
                            to,
                        });
                    }
                    let slot =
                        pump.insert_payload(to, msg)
                            .map_err(|e| RunError::SlabOverflow {
                                capacity: e.capacity,
                            })?;
                    held.push(HeldMessage {
                        from: peer,
                        to,
                        slot,
                        sent_at: *now,
                        packets,
                    });
                }
            }
        }
        // Hand the (drained) buffer back for the next step.
        self.outbox_scratch = outbox;
        Ok(())
    }

    /// Delivers one event to a peer, running its handler. The produced
    /// outbox is left in `outbox_scratch`; returns the stepping peer, or
    /// `None` if the event was dropped (peer crashed, terminated, or
    /// crashed by the adversary just now).
    fn process_event(&mut self, kind: EventKind) -> Option<PeerId> {
        let to = match kind {
            EventKind::Start(p) => p,
            EventKind::Deliver { to, .. } => to,
        };
        let st = &self.status[to.index()];
        if st.crashed || st.terminated {
            if let EventKind::Deliver { from, to, slot } = kind {
                drop(self.pump.take_payload(to, slot));
                let at = self.now;
                self.record(TraceEntry::Drop { at, from, to });
            }
            return None;
        }
        // A peer takes no steps before its start event: messages that
        // arrive earlier wait in a per-peer buffer (keeping their slab
        // slot) and are re-enqueued the moment the peer starts
        // (equivalent to the adversary delaying them until the recipient
        // is awake).
        if !st.started {
            if let EventKind::Deliver { from, slot, .. } = kind {
                self.pre_start[to.index()].push((from, slot));
                return None;
            }
        }
        // Crash faults fire only between steps: the adversary may fell the
        // peer immediately before it processes this event.
        if st.role == PeerRole::Honest && self.crash_budget > 0 {
            let crash_now = {
                let view = View {
                    now: self.now,
                    peers: &self.status,
                };
                self.adversary.crash_before_event(&view, to)
            };
            if crash_now {
                self.crash(to);
                if let EventKind::Deliver { slot, .. } = kind {
                    drop(self.pump.take_payload(to, slot));
                }
                return None;
            }
        }
        self.status[to.index()].events_processed += 1;
        self.events += 1;
        let is_start = matches!(kind, EventKind::Start(_));
        // Move the payload out of the slab (freeing the slot) before the
        // handler runs; the agent takes it by value.
        let delivery = match kind {
            EventKind::Start(peer) => {
                let at = self.now;
                self.record(TraceEntry::Start { at, peer });
                None
            }
            EventKind::Deliver { from, slot, .. } => {
                let msg = self.pump.take_payload(to, slot);
                let (at, bits) = (self.now, msg.bit_len());
                self.record(TraceEntry::Deliver { at, from, to, bits });
                Some((from, msg))
            }
        };
        debug_assert!(self.outbox_scratch.is_empty());
        {
            let agent = &mut self.agents[to.index()];
            let mut ctx = SimCtx {
                me: to,
                num_peers: self.params.k(),
                input_len: self.params.n(),
                handle: &self.handles[to.index()],
                rng: &mut self.rngs[to.index()],
                outbox: &mut self.outbox_scratch,
            };
            match delivery {
                None => {
                    self.status[to.index()].started = true;
                    agent.on_start(&mut ctx);
                }
                Some((from, msg)) => {
                    agent.on_message(from, msg, &mut ctx);
                }
            }
        }
        if is_start {
            // Deliver anything that arrived before the peer woke up,
            // immediately after its start step, in arrival order.
            let waiting = std::mem::take(&mut self.pre_start[to.index()]);
            for (from, slot) in waiting {
                let now = self.now;
                self.push_event(now, EventKind::Deliver { from, to, slot });
            }
        }
        let was_terminated = self.status[to.index()].terminated;
        self.status[to.index()].terminated = self.agents[to.index()].is_terminated();
        if !was_terminated && self.status[to.index()].terminated {
            if self.status[to.index()].is_nonfaulty() {
                self.pending_nonfaulty -= 1;
            }
            let now = self.now;
            self.record(TraceEntry::Terminate { at: now, peer: to });
        }
        Some(to)
    }

    /// Runs the execution to completion.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Deadlock`] if every queue drains while a
    /// nonfaulty peer is still waiting (the protocols in the paper are
    /// proven never to reach this state),
    /// [`RunError::EventLimitExceeded`] if the livelock guard trips, or
    /// [`RunError::SlabOverflow`] if a payload slab hits its configured
    /// slot capacity.
    pub fn run(mut self) -> Result<RunReport, RunError> {
        // The adversary decides when every peer starts (no simultaneous
        // start assumption).
        for p in 0..self.params.k() {
            // The adversary decides when each peer starts (any finite
            // offset; there is no simultaneous-start assumption).
            let offset = self.adversary.start_offset(PeerId(p), &mut self.adv_rng);
            self.push_event(offset, EventKind::Start(PeerId(p)));
        }
        loop {
            debug_assert_eq!(
                self.pending_nonfaulty == 0,
                self.all_nonfaulty_terminated(),
                "pending-nonfaulty counter out of sync with peer statuses"
            );
            if self.pending_nonfaulty == 0 {
                break;
            }
            if self.events >= self.max_events {
                return Err(RunError::EventLimitExceeded {
                    limit: self.max_events,
                });
            }
            match self.pump.pop() {
                Some(ev) => {
                    self.now = self.now.max(ev.at);
                    if let Some(peer) = self.process_event(ev.kind) {
                        self.dispatch_outbox(peer)?;
                    }
                }
                None => {
                    if self.held.is_empty() {
                        let stuck: Vec<PeerId> = self
                            .status
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.is_nonfaulty() && !s.terminated)
                            .map(|(i, _)| PeerId(i))
                            .collect();
                        return Err(RunError::Deadlock { stuck });
                    }
                    // Quiescence: the adversary is compelled to release held
                    // messages so the system can make progress.
                    self.release_held();
                }
            }
        }
        #[cfg(debug_assertions)]
        self.assert_no_leaked_slots();
        Ok(self.into_report())
    }

    /// Debug-build invariant: at the end of a successful run every slab
    /// slot is owned by a still-pending queue event, held message, or
    /// pre-start buffer entry — after draining those, zero payloads may
    /// remain live. Catches lifecycle leaks (e.g. slots stranded by a
    /// cancelled delivery) that release builds would silently accumulate.
    #[cfg(debug_assertions)]
    fn assert_no_leaked_slots(&mut self) {
        for (i, st) in self.status.iter().enumerate() {
            if st.crashed {
                assert!(
                    self.pre_start[i].is_empty(),
                    "slab leak: crashed peer {i} still owns pre-start slots"
                );
            }
        }
        while let Some(ev) = self.pump.pop() {
            if let EventKind::Deliver { to, slot, .. } = ev.kind {
                drop(self.pump.take_payload(to, slot));
            }
        }
        for h in self.held.drain(..) {
            drop(self.pump.take_payload(h.to, h.slot));
        }
        let buffers = std::mem::take(&mut self.pre_start);
        for (i, buf) in buffers.into_iter().enumerate() {
            for (_, slot) in buf {
                drop(self.pump.take_payload(PeerId(i), slot));
            }
        }
        assert_eq!(
            self.pump.live_payloads(),
            0,
            "slab leak: payload slots live with no owner at end of run"
        );
    }

    fn release_held(&mut self) {
        self.quiescence_releases += 1;
        self.held_infos.clear();
        self.held_infos.extend(self.held.iter().map(|h| HeldInfo {
            from: h.from,
            to: h.to,
            sent_at: h.sent_at,
        }));
        let decision = self.adversary.on_quiescence(
            &View {
                now: self.now,
                peers: &self.status,
            },
            &self.held_infos,
        );
        let mut chosen = match decision {
            Release::All => (0..self.held.len()).collect::<Vec<_>>(),
            Release::Some(indices) => indices,
        };
        chosen.sort_unstable();
        chosen.dedup();
        chosen.retain(|&i| i < self.held.len());
        // The quiescence rule compels progress: an adversary that selects
        // nothing releasable would stall the run forever, which the model
        // forbids — fail loudly instead of spinning.
        assert!(
            !chosen.is_empty(),
            "adversary released no held message at quiescence ({} held) — \
             the model compels release (§3.1); return Release::All or a \
             non-empty in-range Release::Some",
            self.held.len()
        );
        let now = self.now;
        let released = chosen.len();
        self.record(TraceEntry::QuiescenceRelease { at: now, released });
        // Remove in reverse so indices stay valid. The payload never
        // moves: its slot passes straight from the held entry to the
        // delivery event.
        for &i in chosen.iter().rev() {
            let h = self.held.swap_remove(i);
            let at = self.now + 1 + (h.packets - 1) * TICKS_PER_UNIT;
            self.push_event(
                at,
                EventKind::Deliver {
                    from: h.from,
                    to: h.to,
                    slot: h.slot,
                },
            );
        }
    }

    fn into_report(self) -> RunReport {
        let k = self.params.k();
        let mut nonfaulty = PeerSet::new(k);
        let mut crashed = PeerSet::new(k);
        let mut byzantine = PeerSet::new(k);
        for (i, s) in self.status.iter().enumerate() {
            if s.is_nonfaulty() {
                nonfaulty.insert(PeerId(i));
            }
            if s.crashed {
                crashed.insert(PeerId(i));
            }
            if s.role == PeerRole::Byzantine {
                byzantine.insert(PeerId(i));
            }
        }
        let query_counts = self.source.meter().counts();
        let query_indices = self.source.meter().indices(PeerId(0)).map(|_| {
            (0..k)
                .map(|p| {
                    self.source
                        .meter()
                        .indices(PeerId(p))
                        .expect("tracking enabled")
                })
                .collect()
        });
        let max_nonfaulty_queries = self.source.meter().max_over(nonfaulty.iter());
        RunReport {
            outputs: self.agents.iter().map(|a| a.output().cloned()).collect(),
            nonfaulty,
            crashed,
            byzantine,
            query_counts,
            query_indices,
            max_nonfaulty_queries,
            messages_sent: self.messages_sent,
            message_bits: self.message_bits,
            virtual_time_units: RunReport::time_units_of(self.now),
            virtual_time_ticks: self.now,
            events: self.events,
            quiescence_releases: self.quiescence_releases,
            peak_queue_len: self.pump.peak_queued() as u64,
            peak_slab_len: self.pump.peak_live() as u64,
            trace: self.trace,
        }
    }
}
