//! Adaptive fault-injection adversaries for chaos campaigns.
//!
//! The paper's adversary is adaptive (§1.2): it observes the execution and
//! chooses delays, holds, and crashes on the fly. The scripted
//! [`CrashPlan`](crate::CrashPlan)s and stateless delay strategies used by
//! the reproduction experiments never exercise that adaptivity. The three
//! adversaries here do:
//!
//! * [`AdaptiveCrasher`] — fells the *most advanced* honest peer, the
//!   worst case for protocols whose progress concentrates in a few peers;
//! * [`HoldUntilQuiescence`] — holds random message subsets until the
//!   quiescence rule (§3.1) compels release, then releases as little as
//!   allowed;
//! * [`ChaosAdversary`] — randomly mixes delays, holds, crashes, and
//!   mid-send cuts within the fault budget.
//!
//! All three are deterministic given the simulation seed, so every chaos
//! run can be recorded with
//! [`RecordingAdversary`](crate::RecordingAdversary) and replayed
//! bit-identically.

use crate::adversary::{Adversary, Delivery, HeldInfo, Release};
use crate::time::TICKS_PER_UNIT;
use crate::view::{PeerRole, View};
use dr_core::{PeerId, ProtocolMessage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget-aware adaptive crash adversary: before a peer processes an
/// event, crash it if it is (one of) the most advanced honest peers and
/// has taken at least `min_events` steps. Uniform random delays otherwise.
///
/// Targeting the front-runner is the adaptive analogue of the paper's
/// "crash the peer that already queried its part" worst case: whatever a
/// protocol has learned through its most advanced peer is destroyed the
/// moment before that peer can act on it again.
#[derive(Debug)]
pub struct AdaptiveCrasher {
    budget: usize,
    used: usize,
    min_events: u64,
}

impl AdaptiveCrasher {
    /// Crashes up to `budget` peers, each only once it has processed at
    /// least `min_events` events.
    pub fn new(budget: usize, min_events: u64) -> Self {
        AdaptiveCrasher {
            budget,
            used: 0,
            min_events,
        }
    }
}

impl<M: ProtocolMessage> Adversary<M> for AdaptiveCrasher {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
    }

    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        if self.used >= self.budget {
            return false;
        }
        let st = view.status(peer);
        // A peer that never took a step is not a front-runner, whatever
        // `min_events` says: with `min_events = 0` the all-zero frontier
        // used to let the crasher spend budget on a peer that had learned
        // nothing — crashing it destroys no progress and wastes the
        // adaptive budget.
        if st.events_processed == 0 || st.events_processed < self.min_events {
            return false;
        }
        // Only crash the current front-runner among live honest peers.
        let frontier = view
            .peers
            .iter()
            .filter(|p| p.is_nonfaulty() && !p.terminated)
            .map(|p| p.events_processed)
            .max()
            .unwrap_or(0);
        if st.events_processed >= frontier {
            self.used += 1;
            true
        } else {
            false
        }
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(self.budget)
    }

    fn parallel_safe(&self) -> bool {
        // With a zero budget every crash consultation returns false
        // without touching any state, so skipping those consultations in
        // parallel windows changes nothing.
        self.budget == 0
    }
}

/// Holds each message with probability `hold_prob` and, when compelled at
/// quiescence, releases only the `release_chunk` oldest held messages —
/// the stingiest schedule the quiescence rule permits.
#[derive(Debug)]
pub struct HoldUntilQuiescence {
    hold_prob: f64,
    release_chunk: usize,
}

impl HoldUntilQuiescence {
    /// Holds each message with probability `hold_prob` (clamped to
    /// `[0, 1]`), releasing `release_chunk.max(1)` messages per compelled
    /// quiescence.
    pub fn new(hold_prob: f64, release_chunk: usize) -> Self {
        HoldUntilQuiescence {
            hold_prob: hold_prob.clamp(0.0, 1.0),
            release_chunk: release_chunk.max(1),
        }
    }
}

impl<M: ProtocolMessage> Adversary<M> for HoldUntilQuiescence {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        if rng.gen_bool(self.hold_prob) {
            Delivery::Hold
        } else {
            Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
        }
    }

    fn on_quiescence(&mut self, _view: &View<'_>, held: &[HeldInfo]) -> Release {
        if held.len() <= self.release_chunk {
            return Release::All;
        }
        // Oldest `release_chunk` messages by send time (ties by index).
        let mut order: Vec<usize> = (0..held.len()).collect();
        order.sort_by_key(|&i| (held[i].sent_at, i));
        order.truncate(self.release_chunk);
        Release::Some(order)
    }

    fn parallel_safe(&self) -> bool {
        // Never crashes or cuts; holds and releases happen in the serial
        // coordinator pass regardless of dispatch mode.
        true
    }
}

/// Configuration for [`ChaosAdversary`]: per-decision probabilities and
/// the crash budget.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Crash budget: at most this many peers are crashed (must respect the
    /// joint fault budget `crashes + byzantine ≤ b`).
    pub crash_budget: usize,
    /// Probability of crashing an honest peer right before an event.
    pub crash_prob: f64,
    /// Probability of cutting an outgoing batch mid-send (also a crash).
    pub cut_prob: f64,
    /// Probability of holding a message instead of delivering it.
    pub hold_prob: f64,
    /// Probability that a compelled quiescence releases only a random
    /// non-empty subset instead of everything.
    pub partial_release_prob: f64,
}

impl ChaosConfig {
    /// A mild default mix: rare crashes and cuts, occasional holds.
    pub fn mild(crash_budget: usize) -> Self {
        ChaosConfig {
            crash_budget,
            crash_prob: 0.002,
            cut_prob: 0.002,
            hold_prob: 0.05,
            partial_release_prob: 0.25,
        }
    }

    /// An aggressive mix: frequent holds, eager crashes and cuts.
    pub fn aggressive(crash_budget: usize) -> Self {
        ChaosConfig {
            crash_budget,
            crash_prob: 0.01,
            cut_prob: 0.01,
            hold_prob: 0.25,
            partial_release_prob: 0.75,
        }
    }
}

/// Composable randomized adversary mixing delays, holds, crashes, and
/// mid-send cuts within the fault budget.
///
/// Crash hooks receive no RNG from the simulator, so the chaos adversary
/// carries its own seeded generator — the whole decision sequence is a
/// deterministic function of `(seed, config)` and the execution it
/// observes.
#[derive(Debug)]
pub struct ChaosAdversary {
    cfg: ChaosConfig,
    rng: StdRng,
    used: usize,
}

impl ChaosAdversary {
    /// Creates the adversary with its own decision RNG seeded by `seed`.
    pub fn new(seed: u64, cfg: ChaosConfig) -> Self {
        ChaosAdversary {
            cfg,
            rng: StdRng::seed_from_u64(seed ^ 0xc4a0_5c4a_05c4_a05c),
            used: 0,
        }
    }

    fn budget_left(&self) -> bool {
        self.used < self.cfg.crash_budget
    }
}

impl<M: ProtocolMessage> Adversary<M> for ChaosAdversary {
    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        if rng.gen_bool(self.cfg.hold_prob) {
            Delivery::Hold
        } else {
            Delivery::After(rng.gen_range(1..=TICKS_PER_UNIT))
        }
    }

    fn on_quiescence(&mut self, _view: &View<'_>, held: &[HeldInfo]) -> Release {
        if held.len() > 1 && self.rng.gen_bool(self.cfg.partial_release_prob) {
            let m = self.rng.gen_range(1..held.len());
            let mut chosen: Vec<usize> =
                (0..m).map(|_| self.rng.gen_range(0..held.len())).collect();
            chosen.sort_unstable();
            chosen.dedup();
            Release::Some(chosen)
        } else {
            Release::All
        }
    }

    fn crash_before_event(&mut self, _view: &View<'_>, _peer: PeerId) -> bool {
        // The simulator consults this hook only for honest peers while
        // crash budget remains; we additionally respect our own budget.
        if self.budget_left() && self.rng.gen_bool(self.cfg.crash_prob) {
            self.used += 1;
            true
        } else {
            false
        }
    }

    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        // Unlike crash_before_event, this hook fires for every live peer —
        // Byzantine ones must not be crashed (they are corrupted, not
        // crash-faulty, and the budget already paid for them).
        if view.status(peer).role != PeerRole::Honest {
            return None;
        }
        if self.budget_left() && self.rng.gen_bool(self.cfg.cut_prob) {
            self.used += 1;
            Some(self.rng.gen_range(0..=planned))
        } else {
            None
        }
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(self.cfg.crash_budget)
    }

    fn parallel_safe(&self) -> bool {
        // `budget_left()` short-circuits before the decision RNG is
        // drawn, so with a zero crash budget both crash hooks are inert
        // and RNG-neutral — skipping them cannot change the run.
        self.cfg.crash_budget == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::PeerStatus;

    #[derive(Debug, Clone)]
    struct Unit;
    impl ProtocolMessage for Unit {
        fn bit_len(&self) -> usize {
            0
        }
    }

    fn peers(events: &[u64]) -> Vec<PeerStatus> {
        events
            .iter()
            .map(|&e| {
                let mut s = PeerStatus::new(PeerRole::Honest);
                s.events_processed = e;
                s
            })
            .collect()
    }

    #[test]
    fn adaptive_crasher_hits_front_runner_only() {
        let mut adv = AdaptiveCrasher::new(1, 2);
        let ps = peers(&[5, 3]);
        let view = View { now: 0, peers: &ps };
        // Peer 1 trails the frontier: spared.
        assert!(!<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(1)
        ));
        // Peer 0 is the front-runner: crashed.
        assert!(<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(0)
        ));
        // Budget spent: never again.
        assert!(!<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(0)
        ));
    }

    #[test]
    fn adaptive_crasher_spares_peer_that_never_ran() {
        // min_events = 0 used to let the all-zero frontier nominate a peer
        // that had not taken a single step (its pre-start event count of 0
        // "matched" the frontier of 0), wasting the adaptive budget on a
        // peer holding no progress. Never-ran peers are now never targets.
        let mut adv = AdaptiveCrasher::new(1, 0);
        let ps = peers(&[0, 0]);
        let view = View { now: 0, peers: &ps };
        assert!(!<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(0)
        ));
        // The budget is still intact for a peer that actually ran.
        let ps = peers(&[1, 0]);
        let view = View { now: 0, peers: &ps };
        assert!(<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(0)
        ));
    }

    #[test]
    fn adaptive_crasher_respects_min_events() {
        let mut adv = AdaptiveCrasher::new(1, 10);
        let ps = peers(&[5, 3]);
        let view = View { now: 0, peers: &ps };
        assert!(!<AdaptiveCrasher as Adversary<Unit>>::crash_before_event(
            &mut adv,
            &view,
            PeerId(0)
        ));
    }

    #[test]
    fn hold_until_quiescence_releases_oldest() {
        let mut adv = HoldUntilQuiescence::new(1.0, 2);
        let held = [
            HeldInfo {
                from: PeerId(0),
                to: PeerId(1),
                sent_at: 30,
            },
            HeldInfo {
                from: PeerId(1),
                to: PeerId(0),
                sent_at: 10,
            },
            HeldInfo {
                from: PeerId(2),
                to: PeerId(0),
                sent_at: 20,
            },
        ];
        let ps = peers(&[0, 0, 0]);
        let view = View {
            now: 40,
            peers: &ps,
        };
        let r = <HoldUntilQuiescence as Adversary<Unit>>::on_quiescence(&mut adv, &view, &held);
        assert_eq!(r, Release::Some(vec![1, 2]));
    }

    #[test]
    fn chaos_adversary_never_exceeds_budget() {
        let mut adv = ChaosAdversary::new(
            7,
            ChaosConfig {
                crash_budget: 2,
                crash_prob: 1.0,
                cut_prob: 1.0,
                hold_prob: 0.0,
                partial_release_prob: 0.0,
            },
        );
        let ps = peers(&[1, 1, 1, 1]);
        let view = View { now: 0, peers: &ps };
        let mut crashes = 0;
        for p in 0..4 {
            if <ChaosAdversary as Adversary<Unit>>::crash_before_event(&mut adv, &view, PeerId(p)) {
                crashes += 1;
            }
            if <ChaosAdversary as Adversary<Unit>>::crash_during_send(&mut adv, &view, PeerId(p), 3)
                .is_some()
            {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 2);
        assert_eq!(
            <ChaosAdversary as Adversary<Unit>>::planned_crashes(&adv),
            Some(2)
        );
    }

    #[test]
    fn chaos_adversary_spares_byzantine_in_cut() {
        let mut adv = ChaosAdversary::new(
            1,
            ChaosConfig {
                crash_budget: 4,
                crash_prob: 0.0,
                cut_prob: 1.0,
                hold_prob: 0.0,
                partial_release_prob: 0.0,
            },
        );
        let mut ps = peers(&[1, 1]);
        ps[1] = PeerStatus::new(PeerRole::Byzantine);
        let view = View { now: 0, peers: &ps };
        assert!(<ChaosAdversary as Adversary<Unit>>::crash_during_send(
            &mut adv,
            &view,
            PeerId(1),
            3
        )
        .is_none());
        assert!(<ChaosAdversary as Adversary<Unit>>::crash_during_send(
            &mut adv,
            &view,
            PeerId(0),
            3
        )
        .is_some());
    }
}
