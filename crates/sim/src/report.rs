//! Outcome of a simulated execution.

use crate::time::{ticks_to_units, Ticks};
use crate::trace::TraceEntry;
use dr_core::{BitArray, PeerId, PeerSet, Source};
use std::error::Error;
use std::fmt;

/// Why a run ended without all nonfaulty peers terminating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained (nothing in flight, nothing held) while some
    /// nonfaulty peer had not terminated — a protocol deadlock. The paper's
    /// protocols must never reach this state (Claims 2 and 3).
    Deadlock {
        /// Nonfaulty peers that were still waiting.
        stuck: Vec<PeerId>,
    },
    /// The safety limit on processed events was exceeded (livelock guard).
    EventLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A message slab hit its configured slot capacity (see
    /// [`SimBuilder::slab_capacity`](crate::SimBuilder::slab_capacity)):
    /// storing one more in-flight payload would have grown some slab past
    /// `capacity` slots. Reported as an error so capacity-bounded runs
    /// fail gracefully instead of aborting mid-pump.
    SlabOverflow {
        /// The per-slab slot capacity that was hit.
        capacity: u32,
    },
    /// A lossy link dropped the same message more times than the
    /// retransmission policy's retry budget allows, and the policy is
    /// fail-fast (see [`RetransmitPolicy`](crate::RetransmitPolicy)):
    /// the loss surfaces as a structured error instead of a silent drop.
    RetriesExhausted {
        /// Sender of the abandoned message.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
        /// Total transmission attempts made (original send + resends).
        attempts: u32,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { stuck } => {
                write!(f, "deadlock: nonfaulty peers still waiting: {stuck:?}")
            }
            RunError::EventLimitExceeded { limit } => {
                write!(f, "event limit {limit} exceeded (livelock?)")
            }
            RunError::SlabOverflow { capacity } => {
                write!(f, "message slab overflow: slot capacity {capacity} reached")
            }
            RunError::RetriesExhausted { from, to, attempts } => {
                write!(
                    f,
                    "retries exhausted: {from} -> {to} abandoned after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for RunError {}

/// A violation of the Download specification found by
/// [`RunReport::verify_downloads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DownloadViolation {
    /// A nonfaulty peer terminated without an output (should be impossible
    /// by construction) or did not terminate.
    MissingOutput {
        /// The offending peer.
        peer: PeerId,
    },
    /// A nonfaulty peer's output differs from the source array.
    WrongOutput {
        /// The offending peer.
        peer: PeerId,
        /// First index at which the output disagrees with the input.
        first_bad_index: usize,
    },
}

impl fmt::Display for DownloadViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DownloadViolation::MissingOutput { peer } => {
                write!(f, "nonfaulty peer {peer} produced no output")
            }
            DownloadViolation::WrongOutput {
                peer,
                first_bad_index,
            } => write!(
                f,
                "nonfaulty peer {peer} output wrong bit at index {first_bad_index}"
            ),
        }
    }
}

impl Error for DownloadViolation {}

/// Metrics and outputs of one simulated execution.
#[derive(Debug)]
pub struct RunReport {
    /// Each peer's output (`None` for peers that never terminated,
    /// including faulty ones).
    pub outputs: Vec<Option<BitArray>>,
    /// Peers that were nonfaulty for the whole run (honest and never
    /// crashed). `Q`, the paper's query complexity, is measured over this
    /// set.
    pub nonfaulty: PeerSet,
    /// Peers crashed by the adversary.
    pub crashed: PeerSet,
    /// Byzantine peers.
    pub byzantine: PeerSet,
    /// Per-peer query counts, indexed by peer ID.
    pub query_counts: Vec<u64>,
    /// Exact query indices per peer (in query order), present when the
    /// simulation was built with
    /// [`track_query_indices`](crate::SimBuilder::track_query_indices).
    /// The lower-bound adversaries (§3.1) need this to find a bit the
    /// target peer never queried.
    pub query_indices: Option<Vec<Vec<usize>>>,
    /// `Q`: maximum queries over nonfaulty peers.
    pub max_nonfaulty_queries: u64,
    /// `M`: total messages sent by nonfaulty peers (in `a`-bit packets).
    pub messages_sent: u64,
    /// Total message payload bits sent by nonfaulty peers.
    pub message_bits: u64,
    /// `T`: virtual completion time in normalized units (max latency = 1).
    pub virtual_time_units: f64,
    /// Raw completion time in ticks.
    pub virtual_time_ticks: Ticks,
    /// Total events processed.
    pub events: u64,
    /// How many times the quiescence rule forced the adversary to release
    /// held messages.
    pub quiescence_releases: u64,
    /// Messages parked at an active partition cut (original sends and
    /// compelled quiescence releases alike) and re-injected at heal time.
    /// Like the peak gauges below, the link-fault counters are *excluded*
    /// from [`fingerprint`](Self::fingerprint) — the field list is fixed
    /// so recorded goldens stay stable; replay tests assert counter
    /// equality separately.
    pub parked_messages: u64,
    /// Transmission attempts a lossy link dropped (original sends and
    /// resends both count).
    pub link_drops: u64,
    /// Resend attempts the retransmission layer scheduled.
    pub retransmissions: u64,
    /// Messages abandoned after exhausting the retry budget. Always zero
    /// for a fail-fast policy on a successful run (the run errors out
    /// instead).
    pub messages_lost: u64,
    /// Deliveries deferred because the recipient had churned away; each
    /// re-fires at the peer's rejoin tick.
    pub deferred_deliveries: u64,
    /// Peak event-queue occupancy over the run. Together with
    /// [`peak_slab_len`](Self::peak_slab_len) this is the simulator's
    /// memory-pressure proxy: resident size scales with
    /// `peak_queue_len · sizeof(event) + peak_slab_len · payload bytes`.
    /// Not part of [`fingerprint`](Self::fingerprint) (the fingerprint
    /// field list is fixed so recorded goldens stay stable).
    pub peak_queue_len: u64,
    /// Peak number of payloads simultaneously alive in the message slab
    /// (queued + held + pre-start buffered).
    pub peak_slab_len: u64,
    /// Per-shard peak event-queue occupancy (one entry per shard; a
    /// single entry for the serial layout). Shows how evenly the window
    /// barrier spreads load across shards. Excluded from
    /// [`fingerprint`](Self::fingerprint) like the global peaks — the
    /// parallel dispatch path drains whole windows before re-inserting,
    /// so peaks can be *lower* than the serial pump observes, while every
    /// fingerprinted quantity is bit-identical.
    pub peak_queue_lens: Vec<u64>,
    /// Per-shard peak slab occupancy (see
    /// [`peak_queue_lens`](Self::peak_queue_lens)).
    pub peak_slab_lens: Vec<u64>,
    /// Structured execution trace, present when the simulation was built
    /// with [`trace`](crate::SimBuilder::trace). Render with
    /// [`render_trace`](crate::render_trace).
    pub trace: Option<Vec<TraceEntry>>,
}

impl RunReport {
    /// Checks the Download specification: every nonfaulty peer terminated
    /// with an output identical to `input`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_downloads(&self, input: &BitArray) -> Result<(), DownloadViolation> {
        for peer in self.nonfaulty.iter() {
            match &self.outputs[peer.index()] {
                None => return Err(DownloadViolation::MissingOutput { peer }),
                Some(out) => {
                    if out.len() != input.len() {
                        return Err(DownloadViolation::WrongOutput {
                            peer,
                            first_bad_index: out.len().min(input.len()),
                        });
                    }
                    if let Some(i) = out.first_difference(input) {
                        return Err(DownloadViolation::WrongOutput {
                            peer,
                            first_bad_index: i,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the Download specification against a [`Source`] directly,
    /// comparing outputs block by block, so streaming runs (built with
    /// [`streaming_source`](crate::SimBuilder::streaming_source)) can be
    /// verified without ever materializing the full n-bit reference. Uses
    /// the word-level [`Source::bits`] bulk path per block.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_downloads_source(&self, source: &dyn Source) -> Result<(), DownloadViolation> {
        // Big enough to amortize per-block overhead, small enough that the
        // resident verification window stays trivial (8 KiB per block).
        const BLOCK_BITS: usize = 1 << 16;
        let n = source.len();
        for peer in self.nonfaulty.iter() {
            match &self.outputs[peer.index()] {
                None => return Err(DownloadViolation::MissingOutput { peer }),
                Some(out) => {
                    if out.len() != n {
                        return Err(DownloadViolation::WrongOutput {
                            peer,
                            first_bad_index: out.len().min(n),
                        });
                    }
                    let mut start = 0;
                    while start < n {
                        let end = (start + BLOCK_BITS).min(n);
                        let expect = source.bits(start..end);
                        let got = out.slice(start..end);
                        if let Some(i) = got.first_difference(&expect) {
                            return Err(DownloadViolation::WrongOutput {
                                peer,
                                first_bad_index: start + i,
                            });
                        }
                        start = end;
                    }
                }
            }
        }
        Ok(())
    }

    /// Deterministic digest of everything observable about the run:
    /// outputs, fault sets, per-peer query counts, message/packet totals,
    /// timing, events, and quiescence releases. Two runs with equal
    /// fingerprints took the same execution — the bit-identity check
    /// behind schedule replay (`ReplayAdversary`).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            // FNV-1a over the value's bytes.
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for out in &self.outputs {
            match out {
                None => mix(u64::MAX),
                Some(bits) => {
                    mix(bits.len() as u64);
                    for w in 0..bits.word_count() {
                        mix(bits.word(w));
                    }
                }
            }
        }
        for set in [&self.nonfaulty, &self.crashed, &self.byzantine] {
            mix(set.len() as u64);
            for p in set.iter() {
                mix(p.index() as u64);
            }
        }
        for &q in &self.query_counts {
            mix(q);
        }
        mix(self.max_nonfaulty_queries);
        mix(self.messages_sent);
        mix(self.message_bits);
        mix(self.virtual_time_ticks);
        mix(self.events);
        mix(self.quiescence_releases);
        h
    }

    /// Average queries over nonfaulty peers.
    pub fn mean_nonfaulty_queries(&self) -> f64 {
        let n = self.nonfaulty.len();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self
            .nonfaulty
            .iter()
            .map(|p| self.query_counts[p.index()])
            .sum();
        total as f64 / n as f64
    }

    pub(crate) fn time_units_of(ticks: Ticks) -> f64 {
        ticks_to_units(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_outputs(outputs: Vec<Option<BitArray>>) -> RunReport {
        let k = outputs.len();
        RunReport {
            outputs,
            nonfaulty: PeerSet::full(k),
            crashed: PeerSet::new(k),
            byzantine: PeerSet::new(k),
            query_counts: vec![0; k],
            query_indices: None,
            max_nonfaulty_queries: 0,
            messages_sent: 0,
            message_bits: 0,
            virtual_time_units: 0.0,
            virtual_time_ticks: 0,
            events: 0,
            quiescence_releases: 0,
            parked_messages: 0,
            link_drops: 0,
            retransmissions: 0,
            messages_lost: 0,
            deferred_deliveries: 0,
            peak_queue_len: 0,
            peak_slab_len: 0,
            peak_queue_lens: vec![0],
            peak_slab_lens: vec![0],
            trace: None,
        }
    }

    #[test]
    fn verify_accepts_correct_outputs() {
        let input = BitArray::from_bools(&[true, false, true]);
        let r = report_with_outputs(vec![Some(input.clone()), Some(input.clone())]);
        assert!(r.verify_downloads(&input).is_ok());
    }

    #[test]
    fn verify_flags_missing_output() {
        let input = BitArray::zeros(3);
        let r = report_with_outputs(vec![Some(input.clone()), None]);
        assert_eq!(
            r.verify_downloads(&input),
            Err(DownloadViolation::MissingOutput { peer: PeerId(1) })
        );
    }

    #[test]
    fn verify_flags_wrong_bit() {
        let input = BitArray::zeros(3);
        let mut bad = input.clone();
        bad.set(1, true);
        let r = report_with_outputs(vec![Some(bad)]);
        assert_eq!(
            r.verify_downloads(&input),
            Err(DownloadViolation::WrongOutput {
                peer: PeerId(0),
                first_bad_index: 1
            })
        );
    }

    #[test]
    fn mean_queries_over_nonfaulty() {
        let mut r = report_with_outputs(vec![None, None]);
        r.query_counts = vec![4, 8];
        assert_eq!(r.mean_nonfaulty_queries(), 6.0);
    }
}
