//! Fluent construction of simulations.

use crate::adversary::{Adversary, StandardAdversary};
use crate::agent::Agent;
use crate::lane::WindowExecutor;
use crate::sim::Simulation;
use crate::view::PeerRole;
use dr_core::{ArraySource, BitArray, ModelParams, PeerId, ProtocolMessage, SharedSource, Source};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Factory producing each peer's agent; `Send` so a built
/// [`Simulation`] can move to a worker thread.
type AgentFactory<M> = Box<dyn FnMut(PeerId) -> Box<dyn Agent<M>> + Send>;

/// Builder for a [`Simulation`].
///
/// # Examples
///
/// ```
/// use dr_core::{BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage};
/// use dr_sim::SimBuilder;
///
/// #[derive(Debug, Clone)]
/// struct Nothing;
/// impl ProtocolMessage for Nothing {
///     fn bit_len(&self) -> usize { 0 }
/// }
///
/// /// Trivial protocol: query everything on start, terminate.
/// struct Naive(Option<BitArray>);
/// impl Protocol for Naive {
///     type Msg = Nothing;
///     fn on_start(&mut self, ctx: &mut dyn Context<Nothing>) {
///         let n = ctx.input_len();
///         self.0 = Some(ctx.query_range(0..n));
///     }
///     fn on_message(&mut self, _: PeerId, _: Nothing, _: &mut dyn Context<Nothing>) {}
///     fn output(&self) -> Option<&BitArray> { self.0.as_ref() }
/// }
///
/// let params = ModelParams::fault_free(32, 4)?;
/// let report = SimBuilder::new(params)
///     .seed(7)
///     .protocol(|_id| Naive(None))
///     .build()
///     .run()
///     .unwrap();
/// assert_eq!(report.max_nonfaulty_queries, 32);
/// # Ok::<(), dr_core::InvalidParamsError>(())
/// ```
pub struct SimBuilder<M: ProtocolMessage> {
    params: ModelParams,
    seed: u64,
    input: Option<BitArray>,
    custom_source: Option<Box<dyn Source>>,
    streaming_source: Option<Box<dyn Source>>,
    adversary: Option<Box<dyn Adversary<M>>>,
    factory: Option<AgentFactory<M>>,
    byzantine: Vec<(PeerId, Box<dyn Agent<M>>)>,
    max_events: u64,
    shards: usize,
    slab_capacity: u32,
    executor: Option<Arc<dyn WindowExecutor>>,
    parallel_window_min: usize,
    index_tracking: bool,
    trace: bool,
}

impl<M: ProtocolMessage> SimBuilder<M> {
    /// Starts a builder for the given model parameters.
    pub fn new(params: ModelParams) -> Self {
        SimBuilder {
            params,
            seed: 0,
            input: None,
            custom_source: None,
            streaming_source: None,
            adversary: None,
            factory: None,
            byzantine: Vec::new(),
            max_events: 50_000_000,
            shards: 1,
            slab_capacity: u32::MAX,
            executor: None,
            parallel_window_min: 32,
            index_tracking: false,
            trace: false,
        }
    }

    /// Sets the master seed (input generation, per-peer RNGs, adversary
    /// RNG). Same seed, same configuration ⇒ identical execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses an explicit input array instead of a seeded random one.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `params.n()`.
    pub fn input(mut self, input: BitArray) -> Self {
        assert_eq!(input.len(), self.params.n(), "input length != n");
        self.input = Some(input);
        self
    }

    /// Replaces the standard in-memory source with a custom [`Source`]
    /// implementation, keeping `reference` as the snapshot that
    /// [`RunReport::verify_downloads`](crate::RunReport::verify_downloads)
    /// and [`Simulation::input`] report against. The custom source is free
    /// to violate the static-data assumption (see the `dr-oracle`
    /// dynamic-data demonstration) — the DR model's guarantees then no
    /// longer apply.
    ///
    /// # Panics
    ///
    /// Panics if the source length differs from `params.n()`.
    pub fn source(mut self, source: impl Source + 'static, reference: BitArray) -> Self {
        assert_eq!(source.len(), self.params.n(), "source length != n");
        assert_eq!(reference.len(), self.params.n(), "reference length != n");
        self.custom_source = Some(Box::new(source));
        self.input = Some(reference);
        self
    }

    /// Sets the honest-protocol factory, called once per peer.
    pub fn protocol<P, F>(mut self, mut f: F) -> Self
    where
        P: crate::agent::Agent<M> + 'static,
        F: FnMut(PeerId) -> P + Send + 'static,
    {
        self.factory = Some(Box::new(move |id| Box::new(f(id))));
        self
    }

    /// Replaces the peer `id` with a Byzantine behaviour. The number of
    /// Byzantine peers must stay within the fault budget `b`.
    pub fn byzantine(mut self, id: PeerId, behaviour: impl Agent<M> + 'static) -> Self {
        self.byzantine.push((id, Box::new(behaviour)));
        self
    }

    /// Installs the adversary (defaults to [`StandardAdversary::benign`]).
    pub fn adversary(mut self, adversary: impl Adversary<M> + 'static) -> Self {
        self.adversary = Some(Box::new(adversary));
        self
    }

    /// Replaces the in-memory source with a [`Source`] that is *never*
    /// materialized as a resident reference array — the whole point of
    /// generate-on-demand sources like
    /// [`ChunkedSource`](dr_core::ChunkedSource) at billion-bit `n`.
    /// [`Simulation::input`] panics for such runs; verify outputs with
    /// [`RunReport::verify_downloads_source`](crate::RunReport::verify_downloads_source)
    /// against an equivalent source instead.
    ///
    /// # Panics
    ///
    /// Panics (at [`build`](Self::build)) if the source length differs
    /// from `params.n()`, or if [`input`](Self::input) /
    /// [`source`](Self::source) was also set.
    pub fn streaming_source(mut self, source: impl Source + 'static) -> Self {
        self.streaming_source = Some(Box::new(source));
        self
    }

    /// Overrides the livelock guard (default: 50 million events).
    pub fn max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }

    /// Partitions peers across `shards` event queues and message slabs
    /// advanced under a conservative time-window barrier (default: 1, the
    /// serial pump). Any value produces a bit-identical execution — same
    /// seed, same [`fingerprint`](crate::RunReport::fingerprint) — the
    /// sharded layout trades one global heap for per-shard heaps merged a
    /// tick-window at a time, which pays off on large runs.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "shards must be at least 1");
        self.shards = shards;
        self
    }

    /// Installs a [`WindowExecutor`] that runs each window's per-shard
    /// event batches on worker threads (e.g. `dr_bench::plane`'s pool).
    /// Takes effect only when [`shards`](Self::shards) > 1, tracing is
    /// off, and the adversary reports
    /// [`parallel_safe`](crate::Adversary::parallel_safe); otherwise the
    /// run stays on the serial pump. Either way the execution — and
    /// [`RunReport::fingerprint`](crate::RunReport::fingerprint) — is
    /// bit-identical for the same seed and configuration.
    pub fn pump_executor(mut self, executor: Arc<dyn WindowExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Minimum unserved window size worth fanning out to the executor
    /// (default: 32). Smaller windows stay on the serial pop path, where
    /// per-event overhead beats job-dispatch overhead. Tests exercising
    /// the parallel path on small topologies set this low.
    pub fn parallel_window_min(mut self, min: usize) -> Self {
        self.parallel_window_min = min;
        self
    }

    /// Caps every message slab at `capacity` payload slots (default:
    /// `u32::MAX`). Exceeding the cap surfaces as
    /// [`RunError::SlabOverflow`](crate::RunError::SlabOverflow) from
    /// [`Simulation::run`] instead of aborting the process.
    pub fn slab_capacity(mut self, capacity: u32) -> Self {
        self.slab_capacity = capacity;
        self
    }

    /// Enables per-peer query-index tracking on the meter (needed by the
    /// lower-bound adversaries).
    pub fn track_query_indices(mut self) -> Self {
        self.index_tracking = true;
        self
    }

    /// Records a structured execution trace, returned on
    /// [`RunReport::trace`](crate::RunReport) and renderable with
    /// [`render_trace`](crate::render_trace).
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Constructs the simulation.
    ///
    /// # Panics
    ///
    /// Panics if no protocol factory was supplied, a Byzantine ID is out of
    /// range or duplicated, or Byzantine peers exceed the fault budget.
    pub fn build(mut self) -> Simulation<M> {
        let k = self.params.k();
        let n = self.params.n();
        let (input, source) = if let Some(stream) = self.streaming_source.take() {
            assert!(
                self.input.is_none() && self.custom_source.is_none(),
                "streaming_source is mutually exclusive with input/source"
            );
            assert_eq!(stream.len(), n, "streaming source length != n");
            let source = if self.index_tracking {
                SharedSource::with_index_tracking(stream, k)
            } else {
                SharedSource::new(stream, k)
            };
            (None, source)
        } else {
            let input = self.input.take().unwrap_or_else(|| {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1234_5678);
                BitArray::random(n, &mut rng)
            });
            let source = match self.custom_source {
                Some(custom) if self.index_tracking => SharedSource::with_index_tracking(custom, k),
                Some(custom) => SharedSource::new(custom, k),
                None if self.index_tracking => {
                    SharedSource::with_index_tracking(ArraySource::new(input.clone()), k)
                }
                None => SharedSource::new(ArraySource::new(input.clone()), k),
            };
            (Some(input), source)
        };
        let mut factory = self.factory.expect("protocol factory not set");
        let mut byz_ids: Vec<usize> = self.byzantine.iter().map(|(p, _)| p.index()).collect();
        byz_ids.sort_unstable();
        let dupes = byz_ids.windows(2).any(|w| w[0] == w[1]);
        assert!(!dupes, "duplicate Byzantine peer IDs");
        assert!(
            byz_ids.iter().all(|&i| i < k),
            "Byzantine peer ID out of range"
        );
        let mut byz: Vec<Option<Box<dyn Agent<M>>>> = (0..k).map(|_| None).collect();
        for (id, agent) in self.byzantine {
            byz[id.index()] = Some(agent);
        }
        let mut agents = Vec::with_capacity(k);
        let mut roles = Vec::with_capacity(k);
        for (i, slot) in byz.into_iter().enumerate() {
            match slot {
                Some(agent) => {
                    agents.push(agent);
                    roles.push(PeerRole::Byzantine);
                }
                None => {
                    agents.push(factory(PeerId(i)));
                    roles.push(PeerRole::Honest);
                }
            }
        }
        let adversary = self
            .adversary
            .unwrap_or_else(|| Box::new(StandardAdversary::benign()));
        let mut sim = Simulation::from_parts(
            self.params,
            input,
            source,
            agents,
            roles,
            adversary,
            self.seed,
            self.max_events,
            self.shards,
            self.slab_capacity,
        );
        sim.executor = self.executor;
        sim.parallel_window_min = self.parallel_window_min;
        if self.trace {
            sim.enable_trace();
        }
        sim
    }
}

// The bench harness fans trials across worker threads, constructing and
// running simulations off the main thread. Every trait object a builder
// or simulation holds has a `Send` supertrait (Agent, Adversary,
// DelayStrategy, Source) and the factory box is `+ Send`, so both types
// are `Send` for every message type — checked at compile time here.
#[allow(dead_code)]
fn assert_builder_and_simulation_are_send<M: ProtocolMessage>() {
    fn assert_send<T: Send>() {}
    assert_send::<SimBuilder<M>>();
    assert_send::<Simulation<M>>();
}
