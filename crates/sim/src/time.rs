//! Virtual time for the discrete-event simulator.
//!
//! The asynchronous model has no global clock; for *time complexity*
//! accounting the paper normalizes the maximum message latency in an
//! execution to one time unit. The simulator uses integer ticks with
//! [`TICKS_PER_UNIT`] ticks per normalized unit; adversary delay strategies
//! produce latencies in `1..=TICKS_PER_UNIT`, so the reported virtual time
//! (in units) is directly comparable to the paper's `T` bounds.

/// Number of simulator ticks per normalized time unit (the maximum
/// adversarial latency of a single message).
pub const TICKS_PER_UNIT: u64 = 1024;

/// A point in virtual time, in ticks.
pub type Ticks = u64;

/// Converts ticks to normalized time units.
pub fn ticks_to_units(ticks: Ticks) -> f64 {
    ticks as f64 / TICKS_PER_UNIT as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_linear() {
        assert_eq!(ticks_to_units(0), 0.0);
        assert_eq!(ticks_to_units(TICKS_PER_UNIT), 1.0);
        assert_eq!(ticks_to_units(3 * TICKS_PER_UNIT / 2), 1.5);
    }
}
