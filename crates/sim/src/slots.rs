//! Window-barrier result slots.
//!
//! Pass 1 of a parallel window lends each participating shard's lane and
//! slab to a job on the execution plane; each job returns them through
//! exactly one slot here. The coordinator drains the slots at the window
//! barrier and folds every shard's `MeterDelta` into the shared
//! `QueryMeter` exactly once — the "exactly once" is load-bearing for
//! bit-identity (a double-fold would double-count queries; a missed fold
//! would drop them), so [`ResultSlots::put`] panics on a second write to
//! the same slot rather than silently overwriting.
//!
//! Built on the [`crate::sync`] facade: under the `loom-model` feature the
//! slot mutex is a loom primitive and `tests/loom_fold.rs` model-checks
//! the put/drain protocol across every interleaving of shard jobs.

use crate::sync::Mutex;

/// One write-once slot per shard, shared between lane jobs and the window
/// coordinator.
pub struct ResultSlots<T> {
    slots: Mutex<Vec<Option<T>>>,
}

impl<T> ResultSlots<T> {
    /// `count` empty slots.
    pub fn new(count: usize) -> Self {
        ResultSlots {
            slots: Mutex::new((0..count).map(|_| None).collect()),
        }
    }

    /// Fills slot `index`, panicking if it was already filled — a
    /// double-put means two jobs ran for the same shard, which would
    /// double-fold that shard's meter delta.
    pub fn put(&self, index: usize, value: T) {
        let mut slots = self.slots.lock().unwrap();
        assert!(
            slots[index].is_none(),
            "window result slot {index} written twice"
        );
        slots[index] = Some(value);
    }

    /// Drains every slot, leaving the container empty. Called once by the
    /// coordinator after the executor's batch barrier, so each filled slot
    /// is observed exactly once.
    pub fn take_all(&self) -> Vec<Option<T>> {
        std::mem::take(&mut *self.slots.lock().unwrap())
    }
}
