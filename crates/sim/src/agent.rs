//! Object-safe wrapper over [`dr_core::Protocol`].
//!
//! The simulator stores a heterogeneous collection of peers — honest
//! protocol instances and Byzantine behaviours — all exchanging the same
//! message type. [`Agent`] is the object-safe form of `Protocol` with the
//! message type lifted to a trait parameter; every `Protocol` implements it
//! via the blanket impl, so protocols, Byzantine strategies, and test stubs
//! are all just `Box<dyn Agent<M>>` to the simulator.

use dr_core::{BitArray, Context, PeerId, Protocol, ProtocolMessage};

/// One peer as seen by the simulator: an event-driven state machine over
/// message type `M`.
pub trait Agent<M: ProtocolMessage>: Send {
    /// Called once when the peer starts executing.
    fn on_start(&mut self, ctx: &mut dyn Context<M>);

    /// Called on every delivered message.
    fn on_message(&mut self, from: PeerId, msg: M, ctx: &mut dyn Context<M>);

    /// The peer's Download output once terminated.
    fn output(&self) -> Option<&BitArray>;

    /// Whether the peer has terminated (halted with an output).
    fn is_terminated(&self) -> bool {
        self.output().is_some()
    }
}

impl<M: ProtocolMessage, P: Protocol<Msg = M>> Agent<M> for P {
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {
        Protocol::on_start(self, ctx);
    }

    fn on_message(&mut self, from: PeerId, msg: M, ctx: &mut dyn Context<M>) {
        Protocol::on_message(self, from, msg, ctx);
    }

    fn output(&self) -> Option<&BitArray> {
        Protocol::output(self)
    }
}

impl<M: ProtocolMessage> Agent<M> for Box<dyn Agent<M>> {
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {
        (**self).on_start(ctx);
    }
    fn on_message(&mut self, from: PeerId, msg: M, ctx: &mut dyn Context<M>) {
        (**self).on_message(from, msg, ctx);
    }
    fn output(&self) -> Option<&BitArray> {
        (**self).output()
    }
}

/// An agent that does nothing and never terminates. Used to model peers
/// that are silent from the first step (e.g. a Byzantine peer playing
/// dead, or a placeholder for a peer crashed before starting).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentAgent;

impl SilentAgent {
    /// Creates a silent agent.
    pub fn new() -> Self {
        SilentAgent
    }
}

impl<M: ProtocolMessage> Agent<M> for SilentAgent {
    fn on_start(&mut self, _ctx: &mut dyn Context<M>) {}
    fn on_message(&mut self, _from: PeerId, _msg: M, _ctx: &mut dyn Context<M>) {}
    fn output(&self) -> Option<&BitArray> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Unit;
    impl ProtocolMessage for Unit {
        fn bit_len(&self) -> usize {
            0
        }
    }

    struct Immediate(BitArray);
    impl Protocol for Immediate {
        type Msg = Unit;
        fn on_start(&mut self, _ctx: &mut dyn Context<Unit>) {}
        fn on_message(&mut self, _from: PeerId, _msg: Unit, _ctx: &mut dyn Context<Unit>) {}
        fn output(&self) -> Option<&BitArray> {
            Some(&self.0)
        }
    }

    #[test]
    fn blanket_impl_forwards_output() {
        let agent: Box<dyn Agent<Unit>> = Box::new(Immediate(BitArray::zeros(3)));
        assert!(agent.is_terminated());
        assert_eq!(agent.output().unwrap().len(), 3);
    }

    #[test]
    fn silent_agent_never_terminates() {
        let agent: Box<dyn Agent<Unit>> = Box::new(SilentAgent::new());
        assert!(!agent.is_terminated());
    }
}
