//! Schedule record/replay: serializable adversary decisions.
//!
//! Determinism (same seed, same decision sequence ⇒ identical execution)
//! makes every run reproducible *given the adversary's decisions*. This
//! module captures those decisions — start offsets, per-message latencies
//! and holds, quiescence releases, crash triggers, and mid-send cuts — into
//! a [`ScheduleTrace`] that a [`ReplayAdversary`] plays back bit-identically,
//! turning any failing chaos run into a committed reproducer. The chaos
//! campaign (`dr_bench::chaos`) shrinks such traces to minimal failing
//! schedules.
//!
//! Decisions are recorded positionally, aligned by hook-call order: the
//! simulator consults the adversary in a deterministic sequence, so the
//! `i`-th `on_send` call of a replay corresponds to the `i`-th recorded
//! send decision. Sparse decisions (crashes, cuts) are keyed by call index
//! instead.

use crate::adversary::{Adversary, Delivery, HeldInfo, Release};
use crate::linkfault::{
    ChurnDirective, LinkDecision, LinkFaultPlan, PartitionDirective, RetransmitPolicy,
};
use crate::time::Ticks;
use crate::view::{PeerRole, View};
use dr_core::{PeerId, ProtocolMessage};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A recorded mid-send cut: on the `call`-th `crash_during_send`
/// consultation, crash the sender keeping only the first `keep` messages
/// of its batch. (A named struct because the vendored serde derive does
/// not support tuples.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutDecision {
    /// Index of the `crash_during_send` call this cut fires on.
    pub call: u64,
    /// Number of batch messages that still get out.
    pub keep: usize,
}

/// A serialized [`PartitionDirective`]: a named cut separating `group`
/// from everyone else over `[from_tick, heal_tick)`. (Peer IDs flatten to
/// `u64` for the vendored serde derive.)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Human-readable cut name (diagnostics only).
    pub name: String,
    /// Peers on one side of the cut.
    pub group: Vec<u64>,
    /// First tick the cut is active.
    pub from_tick: u64,
    /// Tick at which the cut heals (exclusive).
    pub heal_tick: u64,
}

/// A serialized [`ChurnDirective`]: `peer` is away over `[leave, rejoin)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// The churning peer.
    pub peer: u64,
    /// Tick the peer leaves.
    pub leave: u64,
    /// Tick the peer rejoins (exclusive end of the away window).
    pub rejoin: u64,
}

/// Every adversary decision of one run, in hook-call order.
///
/// Encodings chosen for the vendored serde derive (no data-carrying enum
/// variants, no tuples):
/// * `sends[i] = None` means the `i`-th sent message was held,
///   `Some(t)` means it was delivered after `t` ticks;
/// * `releases[q] = None` means the `q`-th quiescence released everything
///   ([`Release::All`]), `Some(v)` a partial release of indices `v`;
/// * `crashes` lists the `crash_before_event` call indices that returned
///   `true` (sparse);
/// * `cuts` lists the `crash_during_send` calls that cut a batch (sparse).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Start offset (ticks) per `start_offset` call, in call order.
    pub start_offsets: Vec<u64>,
    /// Latency per `on_send` call; `None` = held.
    pub sends: Vec<Option<u64>>,
    /// Release decision per quiescence; `None` = release all.
    pub releases: Vec<Option<Vec<usize>>>,
    /// `crash_before_event` call indices that crashed the peer.
    pub crashes: Vec<u64>,
    /// Mid-send cuts by `crash_during_send` call index.
    pub cuts: Vec<CutDecision>,
    /// Partition directives of the recorded link-fault plan.
    pub partitions: Vec<PartitionSpec>,
    /// Churn directives of the recorded link-fault plan.
    pub churn: Vec<ChurnSpec>,
    /// Retransmission backoff base (ticks) of the recorded plan.
    pub backoff_base: u64,
    /// Retry cap of the recorded plan.
    pub max_retries: u64,
    /// Whether the recorded plan surfaces exhausted retries as a
    /// [`RunError::RetriesExhausted`](crate::RunError::RetriesExhausted).
    pub fail_fast: bool,
    /// Transmit decision per `on_transmit` call (`true` = transmitted,
    /// `false` = dropped). Empty for non-lossy recordings; non-empty
    /// marks the replay itself as lossy.
    pub transmits: Vec<bool>,
}

impl ScheduleTrace {
    /// Total fault directives (crashes + cuts) — the quantity the chaos
    /// shrinker minimizes first.
    pub fn num_fault_directives(&self) -> usize {
        self.crashes.len() + self.cuts.len()
    }

    /// Number of held sends plus partial releases — the schedule's
    /// "hold complexity", minimized second.
    pub fn num_hold_directives(&self) -> usize {
        self.sends.iter().filter(|s| s.is_none()).count()
            + self.releases.iter().filter(|r| r.is_some()).count()
    }

    /// Link-fault directives (partitions + churn) — minimized by the
    /// chaos shrinker alongside the fault directives.
    pub fn num_link_directives(&self) -> usize {
        self.partitions.len() + self.churn.len()
    }

    /// The [`LinkFaultPlan`] this trace encodes (trivial for recordings of
    /// fault-free adversaries).
    pub fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            partitions: self
                .partitions
                .iter()
                .map(|p| PartitionDirective {
                    name: p.name.clone(),
                    group: p.group.iter().map(|&i| PeerId(i as usize)).collect(),
                    from_tick: p.from_tick,
                    heal_tick: p.heal_tick,
                })
                .collect(),
            churn: self
                .churn
                .iter()
                .map(|c| ChurnDirective {
                    peer: PeerId(c.peer as usize),
                    leave: c.leave,
                    rejoin: c.rejoin,
                })
                .collect(),
            retransmit: RetransmitPolicy {
                backoff_base: self.backoff_base,
                max_retries: self.max_retries as u32,
                fail_fast: self.fail_fast,
            },
        }
    }

    /// Writes `plan` into the trace's link-fault fields (the inverse of
    /// [`link_fault_plan`](Self::link_fault_plan)).
    pub fn set_link_fault_plan(&mut self, plan: &LinkFaultPlan) {
        self.partitions = plan
            .partitions
            .iter()
            .map(|p| PartitionSpec {
                name: p.name.clone(),
                group: p.group.iter().map(|pid| pid.index() as u64).collect(),
                from_tick: p.from_tick,
                heal_tick: p.heal_tick,
            })
            .collect();
        self.churn = plan
            .churn
            .iter()
            .map(|c| ChurnSpec {
                peer: c.peer.index() as u64,
                leave: c.leave,
                rejoin: c.rejoin,
            })
            .collect();
        self.backoff_base = plan.retransmit.backoff_base;
        self.max_retries = u64::from(plan.retransmit.max_retries);
        self.fail_fast = plan.retransmit.fail_fast;
    }

    /// Stable content hash (FNV-1a over the canonical JSON rendering),
    /// used to name `chaos_repro_<hash>.json` files.
    pub fn content_hash(&self) -> u64 {
        let text = serde::json::to_string(self);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Shared handle to a trace being recorded by a [`RecordingAdversary`].
///
/// `Simulation` consumes its adversary, so the recorder hands out an
/// `Arc`-backed handle up front; call [`take`](TraceHandle::take) after the
/// run to obtain the captured trace.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Arc<Mutex<ScheduleTrace>>);

impl TraceHandle {
    /// Snapshot of the trace recorded so far (the full trace, after the
    /// run completes).
    pub fn take(&self) -> ScheduleTrace {
        self.0.lock().clone()
    }
}

/// Wraps any adversary and records every decision it makes into a
/// [`ScheduleTrace`].
pub struct RecordingAdversary<M> {
    inner: Box<dyn Adversary<M>>,
    trace: Arc<Mutex<ScheduleTrace>>,
    crash_calls: u64,
    cut_calls: u64,
}

impl<M: ProtocolMessage> RecordingAdversary<M> {
    /// Wraps `inner`, returning the recorder and a handle to the trace it
    /// will fill in.
    pub fn new(inner: impl Adversary<M> + 'static) -> (Self, TraceHandle) {
        // dr-lint: allow(sync-primitive-outside-facade): parking_lot trace cell; written by the single-threaded sim loop, read after the run
        let trace = Arc::new(Mutex::new(ScheduleTrace::default()));
        let handle = TraceHandle(trace.clone());
        (
            RecordingAdversary {
                inner: Box::new(inner),
                trace,
                crash_calls: 0,
                cut_calls: 0,
            },
            handle,
        )
    }
}

impl<M: ProtocolMessage> Adversary<M> for RecordingAdversary<M> {
    fn start_offset(&mut self, peer: PeerId, rng: &mut StdRng) -> Ticks {
        let t = self.inner.start_offset(peer, rng);
        self.trace.lock().start_offsets.push(t);
        t
    }

    fn on_send(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        let d = self.inner.on_send(view, from, to, msg, rng);
        self.trace.lock().sends.push(match d {
            Delivery::After(t) => Some(t),
            Delivery::Hold => None,
        });
        d
    }

    fn on_quiescence(&mut self, view: &View<'_>, held: &[HeldInfo]) -> Release {
        let r = self.inner.on_quiescence(view, held);
        // Canonicalize partial releases (sorted, deduped, in-range) so a
        // re-recorded trace is a stable fixed point of replay.
        let canonical = match &r {
            Release::All => None,
            Release::Some(v) => {
                let mut v = v.clone();
                v.sort_unstable();
                v.dedup();
                v.retain(|&i| i < held.len());
                Some(v)
            }
        };
        self.trace.lock().releases.push(canonical);
        r
    }

    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        let call = self.crash_calls;
        self.crash_calls += 1;
        let crash = self.inner.crash_before_event(view, peer);
        if crash {
            self.trace.lock().crashes.push(call);
        }
        crash
    }

    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        let call = self.cut_calls;
        self.cut_calls += 1;
        let cut = self.inner.crash_during_send(view, peer, planned);
        if let Some(keep) = cut {
            // Record the effective keep so replay reproduces the same
            // truncation even if the inner adversary over-asked.
            self.trace.lock().cuts.push(CutDecision {
                call,
                keep: keep.min(planned),
            });
        }
        cut
    }

    fn planned_crashes(&self) -> Option<usize> {
        self.inner.planned_crashes()
    }

    fn parallel_safe(&self) -> bool {
        // Recording adds no decisions of its own. With an inert-crash
        // inner adversary the parallel path records the same trace the
        // serial pump would: the skipped `crash_before_event`
        // consultations could only ever have appended to `crashes`, which
        // stays empty either way, and the positional send/release/start
        // streams are produced serially in pass 2.
        self.inner.parallel_safe()
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        // Fetched once at build time; capture the plan into the trace so
        // replay reconstructs the same cuts, churn, and retry policy.
        let plan = self.inner.link_fault_plan();
        self.trace.lock().set_link_fault_plan(&plan);
        plan
    }

    fn lossy(&self) -> bool {
        self.inner.lossy()
    }

    fn on_transmit(
        &mut self,
        view: &View<'_>,
        from: PeerId,
        to: PeerId,
        attempt: u32,
        rng: &mut StdRng,
    ) -> LinkDecision {
        let d = self.inner.on_transmit(view, from, to, attempt, rng);
        self.trace
            .lock()
            .transmits
            .push(matches!(d, LinkDecision::Transmit));
        d
    }
}

/// Plays a [`ScheduleTrace`] back, decision for decision.
///
/// On the recording's own simulation configuration the hook-call sequence
/// aligns exactly and the run is bit-identical. Past the end of the trace
/// (possible while the chaos shrinker evaluates edited candidates, which
/// can change the trajectory) the replayer degrades to deterministic
/// benign behaviour: offset 0, a fixed latency, release-all, no crashes.
pub struct ReplayAdversary {
    trace: ScheduleTrace,
    fault_cap: Option<usize>,
    start_idx: usize,
    send_idx: usize,
    release_idx: usize,
    transmit_idx: usize,
    crash_calls: u64,
    cut_calls: u64,
}

impl ReplayAdversary {
    /// Replays `trace` from the beginning.
    pub fn new(trace: ScheduleTrace) -> Self {
        ReplayAdversary {
            trace,
            fault_cap: None,
            start_idx: 0,
            send_idx: 0,
            release_idx: 0,
            transmit_idx: 0,
            crash_calls: 0,
            cut_calls: 0,
        }
    }

    /// Caps total faults (crashed + Byzantine) at `b`, making replay of
    /// *edited* traces safe: a cut that would overdraw the simulator's
    /// crash budget is dropped instead of panicking.
    pub fn with_fault_cap(mut self, b: usize) -> Self {
        self.fault_cap = Some(b);
        self
    }

    fn faults_so_far(view: &View<'_>) -> usize {
        view.peers
            .iter()
            .filter(|p| p.crashed || p.role == PeerRole::Byzantine)
            .count()
    }

    fn may_crash(&self, view: &View<'_>, peer: PeerId) -> bool {
        view.status(peer).role == PeerRole::Honest
            && self
                .fault_cap
                .is_none_or(|cap| Self::faults_so_far(view) < cap)
    }
}

impl<M: ProtocolMessage> Adversary<M> for ReplayAdversary {
    fn start_offset(&mut self, _peer: PeerId, _rng: &mut StdRng) -> Ticks {
        let t = self.trace.start_offsets.get(self.start_idx).copied();
        self.start_idx += 1;
        t.unwrap_or(0)
    }

    fn on_send(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        _rng: &mut StdRng,
    ) -> Delivery {
        let d = self.trace.sends.get(self.send_idx).cloned();
        self.send_idx += 1;
        match d {
            Some(Some(t)) => Delivery::After(t),
            Some(None) => Delivery::Hold,
            None => Delivery::After(1),
        }
    }

    fn on_quiescence(&mut self, _view: &View<'_>, held: &[HeldInfo]) -> Release {
        let r = self.trace.releases.get(self.release_idx).cloned();
        self.release_idx += 1;
        match r {
            Some(Some(mut v)) => {
                v.retain(|&i| i < held.len());
                if v.is_empty() {
                    // The edited trajectory holds fewer messages than the
                    // recording did here; degrade to the compelled default.
                    Release::All
                } else {
                    Release::Some(v)
                }
            }
            _ => Release::All,
        }
    }

    fn crash_before_event(&mut self, view: &View<'_>, peer: PeerId) -> bool {
        let call = self.crash_calls;
        self.crash_calls += 1;
        self.trace.crashes.contains(&call) && self.may_crash(view, peer)
    }

    fn crash_during_send(
        &mut self,
        view: &View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        let call = self.cut_calls;
        self.cut_calls += 1;
        if !self.may_crash(view, peer) {
            return None;
        }
        self.trace
            .cuts
            .iter()
            .find(|c| c.call == call)
            .map(|c| c.keep.min(planned))
    }

    fn parallel_safe(&self) -> bool {
        // A crash-free, cut-free trace makes both crash hooks provably
        // inert, so the replay may fan windows out to workers and still be
        // bit-identical. Any recorded fault forces the serial pump (a cut
        // crashing a peer mid-window would invalidate pass-1 decisions
        // already taken for its later events). Recorded link faults do
        // not flip this bit: the simulator's own link-fault gate degrades
        // those runs to the serial pump.
        self.trace.crashes.is_empty() && self.trace.cuts.is_empty()
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        self.trace.link_fault_plan()
    }

    fn lossy(&self) -> bool {
        // A recording with any transmit consultations was lossy; replay
        // must re-consult at the same positions to stay aligned.
        !self.trace.transmits.is_empty()
    }

    fn on_transmit(
        &mut self,
        _view: &View<'_>,
        _from: PeerId,
        _to: PeerId,
        _attempt: u32,
        _rng: &mut StdRng,
    ) -> LinkDecision {
        let d = self.trace.transmits.get(self.transmit_idx).copied();
        self.transmit_idx += 1;
        match d {
            Some(true) | None => LinkDecision::Transmit,
            Some(false) => LinkDecision::Drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_roundtrips_through_json() {
        let trace = ScheduleTrace {
            start_offsets: vec![0, 17, 1023],
            sends: vec![Some(5), None, Some(1024)],
            releases: vec![None, Some(vec![0, 2])],
            crashes: vec![3],
            cuts: vec![CutDecision { call: 7, keep: 1 }],
            partitions: vec![PartitionSpec {
                name: "half".into(),
                group: vec![0, 2],
                from_tick: 0,
                heal_tick: 4096,
            }],
            churn: vec![ChurnSpec {
                peer: 1,
                leave: 100,
                rejoin: 5000,
            }],
            backoff_base: 128,
            max_retries: 12,
            fail_fast: true,
            transmits: vec![true, false, true],
        };
        let text = serde::json::to_string_pretty(&trace);
        let back: ScheduleTrace = serde::json::from_str(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.content_hash(), trace.content_hash());
    }

    #[test]
    fn link_fault_plan_roundtrips_through_trace() {
        let plan = LinkFaultPlan {
            partitions: vec![PartitionDirective {
                name: "cut-a".into(),
                group: vec![PeerId(1), PeerId(3)],
                from_tick: 10,
                heal_tick: 2048,
            }],
            churn: vec![ChurnDirective {
                peer: PeerId(2),
                leave: 512,
                rejoin: 4096,
            }],
            retransmit: RetransmitPolicy {
                backoff_base: 64,
                max_retries: 7,
                fail_fast: true,
            },
        };
        let mut trace = ScheduleTrace::default();
        trace.set_link_fault_plan(&plan);
        assert_eq!(trace.num_link_directives(), 2);
        assert_eq!(trace.link_fault_plan(), plan);
        // A default trace encodes the trivial plan (zero policy included:
        // it is never consulted because `transmits` is empty).
        assert!(ScheduleTrace::default().link_fault_plan().is_trivial());
    }

    #[test]
    fn hash_distinguishes_traces() {
        let a = ScheduleTrace::default();
        let mut b = ScheduleTrace::default();
        b.crashes.push(0);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn directive_counts() {
        let trace = ScheduleTrace {
            start_offsets: vec![],
            sends: vec![Some(1), None, None],
            releases: vec![None, Some(vec![1])],
            crashes: vec![2, 9],
            cuts: vec![CutDecision { call: 0, keep: 0 }],
            ..Default::default()
        };
        assert_eq!(trace.num_fault_directives(), 3);
        assert_eq!(trace.num_hold_directives(), 3);
        assert_eq!(trace.num_link_directives(), 0);
    }
}
