//! Structured execution traces.
//!
//! When enabled on the builder, the simulator records one [`TraceEntry`]
//! per scheduler action — starts, deliveries, drops, crashes, holds, and
//! quiescence releases — with virtual timestamps. Traces make adversarial
//! executions auditable: tests assert on them, and
//! [`render_trace`] pretty-prints them for debugging.

use crate::time::{ticks_to_units, Ticks};
use dr_core::PeerId;

/// One scheduler action in an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEntry {
    /// A peer processed its start event.
    Start {
        /// Virtual time in ticks.
        at: Ticks,
        /// The starting peer.
        peer: PeerId,
    },
    /// A message was delivered and processed.
    Deliver {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Receiver.
        to: PeerId,
        /// Payload size in bits.
        bits: usize,
    },
    /// A message arrived at a crashed or terminated peer and was dropped.
    Drop {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
    },
    /// The adversary crashed a peer.
    Crash {
        /// Virtual time in ticks.
        at: Ticks,
        /// The crashed peer.
        peer: PeerId,
    },
    /// The adversary decided to hold a message indefinitely.
    Hold {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
    },
    /// Quiescence forced held messages out.
    QuiescenceRelease {
        /// Virtual time in ticks.
        at: Ticks,
        /// Number of messages released.
        released: usize,
    },
    /// A peer terminated with an output.
    Terminate {
        /// Virtual time in ticks.
        at: Ticks,
        /// The terminating peer.
        peer: PeerId,
    },
    /// A message crossed an active partition cut and was parked: it keeps
    /// its payload slot and re-enters delivery when the cut heals.
    Park {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
        /// The tick at which the separating cut heals.
        until: Ticks,
    },
    /// A lossy link dropped a transmission attempt (the retransmission
    /// layer will resend unless the retry cap is reached).
    LinkDrop {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
        /// Which attempt failed: 0 is the original send, `a ≥ 1` the
        /// `a`-th resend.
        attempt: u32,
    },
    /// The retransmission layer gave up on a message after exhausting its
    /// retry budget; the payload slot was freed.
    Lost {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
        /// Total transmission attempts made (original send + resends).
        attempts: u32,
    },
    /// A delivery addressed to a churned-away peer was deferred to its
    /// rejoin tick (the payload slot rides along; nothing is lost).
    ChurnDefer {
        /// Virtual time in ticks.
        at: Ticks,
        /// The absent peer.
        peer: PeerId,
        /// The tick at which the peer rejoins and the event re-fires.
        until: Ticks,
    },
}

impl TraceEntry {
    /// The entry's virtual timestamp in ticks.
    pub fn at(&self) -> Ticks {
        match self {
            TraceEntry::Start { at, .. }
            | TraceEntry::Deliver { at, .. }
            | TraceEntry::Drop { at, .. }
            | TraceEntry::Crash { at, .. }
            | TraceEntry::Hold { at, .. }
            | TraceEntry::QuiescenceRelease { at, .. }
            | TraceEntry::Terminate { at, .. }
            | TraceEntry::Park { at, .. }
            | TraceEntry::LinkDrop { at, .. }
            | TraceEntry::Lost { at, .. }
            | TraceEntry::ChurnDefer { at, .. } => *at,
        }
    }
}

/// Renders a trace as human-readable lines (one per entry, timestamps in
/// normalized units).
pub fn render_trace(trace: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in trace {
        let t = ticks_to_units(e.at());
        let line = match e {
            TraceEntry::Start { peer, .. } => format!("{t:8.3}  START    {peer}"),
            TraceEntry::Deliver { from, to, bits, .. } => {
                format!("{t:8.3}  DELIVER  {from} -> {to} ({bits} bits)")
            }
            TraceEntry::Drop { from, to, .. } => format!("{t:8.3}  DROP     {from} -> {to}"),
            TraceEntry::Crash { peer, .. } => format!("{t:8.3}  CRASH    {peer}"),
            TraceEntry::Hold { from, to, .. } => format!("{t:8.3}  HOLD     {from} -> {to}"),
            TraceEntry::QuiescenceRelease { released, .. } => {
                format!("{t:8.3}  RELEASE  {released} held message(s)")
            }
            TraceEntry::Terminate { peer, .. } => format!("{t:8.3}  DONE     {peer}"),
            TraceEntry::Park {
                from, to, until, ..
            } => {
                let u = ticks_to_units(*until);
                format!("{t:8.3}  PARK     {from} -> {to} (until {u:.3})")
            }
            TraceEntry::LinkDrop {
                from, to, attempt, ..
            } => {
                format!("{t:8.3}  LDROP    {from} -> {to} (attempt {attempt})")
            }
            TraceEntry::Lost {
                from, to, attempts, ..
            } => {
                format!("{t:8.3}  LOST     {from} -> {to} ({attempts} attempts)")
            }
            TraceEntry::ChurnDefer { peer, until, .. } => {
                let u = ticks_to_units(*until);
                format!("{t:8.3}  DEFER    to {peer} (rejoins {u:.3})")
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_every_variant() {
        let trace = vec![
            TraceEntry::Start {
                at: 0,
                peer: PeerId(0),
            },
            TraceEntry::Deliver {
                at: 1024,
                from: PeerId(0),
                to: PeerId(1),
                bits: 64,
            },
            TraceEntry::Drop {
                at: 1025,
                from: PeerId(1),
                to: PeerId(2),
            },
            TraceEntry::Crash {
                at: 1026,
                peer: PeerId(2),
            },
            TraceEntry::Hold {
                at: 1027,
                from: PeerId(0),
                to: PeerId(1),
            },
            TraceEntry::QuiescenceRelease {
                at: 1028,
                released: 3,
            },
            TraceEntry::Terminate {
                at: 2048,
                peer: PeerId(0),
            },
            TraceEntry::Park {
                at: 2049,
                from: PeerId(1),
                to: PeerId(2),
                until: 4096,
            },
            TraceEntry::LinkDrop {
                at: 2050,
                from: PeerId(2),
                to: PeerId(0),
                attempt: 0,
            },
            TraceEntry::Lost {
                at: 2051,
                from: PeerId(2),
                to: PeerId(0),
                attempts: 5,
            },
            TraceEntry::ChurnDefer {
                at: 2052,
                peer: PeerId(1),
                until: 8192,
            },
        ];
        let text = render_trace(&trace);
        for needle in [
            "START", "DELIVER", "DROP", "CRASH", "HOLD", "RELEASE", "DONE", "PARK", "LDROP",
            "LOST", "DEFER",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        assert_eq!(trace[6].at(), 2048);
        assert_eq!(trace[10].at(), 2052);
    }
}
