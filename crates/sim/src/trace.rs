//! Structured execution traces.
//!
//! When enabled on the builder, the simulator records one [`TraceEntry`]
//! per scheduler action — starts, deliveries, drops, crashes, holds, and
//! quiescence releases — with virtual timestamps. Traces make adversarial
//! executions auditable: tests assert on them, and
//! [`render_trace`] pretty-prints them for debugging.

use crate::time::{ticks_to_units, Ticks};
use dr_core::PeerId;

/// One scheduler action in an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEntry {
    /// A peer processed its start event.
    Start {
        /// Virtual time in ticks.
        at: Ticks,
        /// The starting peer.
        peer: PeerId,
    },
    /// A message was delivered and processed.
    Deliver {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Receiver.
        to: PeerId,
        /// Payload size in bits.
        bits: usize,
    },
    /// A message arrived at a crashed or terminated peer and was dropped.
    Drop {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
    },
    /// The adversary crashed a peer.
    Crash {
        /// Virtual time in ticks.
        at: Ticks,
        /// The crashed peer.
        peer: PeerId,
    },
    /// The adversary decided to hold a message indefinitely.
    Hold {
        /// Virtual time in ticks.
        at: Ticks,
        /// Sender.
        from: PeerId,
        /// Intended receiver.
        to: PeerId,
    },
    /// Quiescence forced held messages out.
    QuiescenceRelease {
        /// Virtual time in ticks.
        at: Ticks,
        /// Number of messages released.
        released: usize,
    },
    /// A peer terminated with an output.
    Terminate {
        /// Virtual time in ticks.
        at: Ticks,
        /// The terminating peer.
        peer: PeerId,
    },
}

impl TraceEntry {
    /// The entry's virtual timestamp in ticks.
    pub fn at(&self) -> Ticks {
        match self {
            TraceEntry::Start { at, .. }
            | TraceEntry::Deliver { at, .. }
            | TraceEntry::Drop { at, .. }
            | TraceEntry::Crash { at, .. }
            | TraceEntry::Hold { at, .. }
            | TraceEntry::QuiescenceRelease { at, .. }
            | TraceEntry::Terminate { at, .. } => *at,
        }
    }
}

/// Renders a trace as human-readable lines (one per entry, timestamps in
/// normalized units).
pub fn render_trace(trace: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in trace {
        let t = ticks_to_units(e.at());
        let line = match e {
            TraceEntry::Start { peer, .. } => format!("{t:8.3}  START    {peer}"),
            TraceEntry::Deliver { from, to, bits, .. } => {
                format!("{t:8.3}  DELIVER  {from} -> {to} ({bits} bits)")
            }
            TraceEntry::Drop { from, to, .. } => format!("{t:8.3}  DROP     {from} -> {to}"),
            TraceEntry::Crash { peer, .. } => format!("{t:8.3}  CRASH    {peer}"),
            TraceEntry::Hold { from, to, .. } => format!("{t:8.3}  HOLD     {from} -> {to}"),
            TraceEntry::QuiescenceRelease { released, .. } => {
                format!("{t:8.3}  RELEASE  {released} held message(s)")
            }
            TraceEntry::Terminate { peer, .. } => format!("{t:8.3}  DONE     {peer}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_every_variant() {
        let trace = vec![
            TraceEntry::Start {
                at: 0,
                peer: PeerId(0),
            },
            TraceEntry::Deliver {
                at: 1024,
                from: PeerId(0),
                to: PeerId(1),
                bits: 64,
            },
            TraceEntry::Drop {
                at: 1025,
                from: PeerId(1),
                to: PeerId(2),
            },
            TraceEntry::Crash {
                at: 1026,
                peer: PeerId(2),
            },
            TraceEntry::Hold {
                at: 1027,
                from: PeerId(0),
                to: PeerId(1),
            },
            TraceEntry::QuiescenceRelease {
                at: 1028,
                released: 3,
            },
            TraceEntry::Terminate {
                at: 2048,
                peer: PeerId(0),
            },
        ];
        let text = render_trace(&trace);
        for needle in [
            "START", "DELIVER", "DROP", "CRASH", "HOLD", "RELEASE", "DONE",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
        assert_eq!(trace[6].at(), 2048);
    }
}
