//! Shard lanes: the per-shard mutable state a worker thread owns while a
//! window batch executes, plus the executor abstraction that runs the
//! batches.
//!
//! # The two-pass window execution
//!
//! Under the time-window barrier (see `shard.rs`), all events of one
//! window share a tick, and message latencies ≥ 1 tick guarantee no event
//! in the window can schedule another event into it (the only same-tick
//! append, the pre-start flush, is made by the coordinator between
//! passes). Events with different subject peers therefore touch disjoint
//! mutable state inside a window: agent, RNG, pre-start buffer, and
//! payload slots all belong to the subject, and peers are partitioned
//! across shards. That makes a window embarrassingly parallel *per
//! shard* — provided everything shared is either read-only (the source,
//! the model parameters) or deferred to a serial pass (adversary hooks,
//! global `seq` stamping, the query meter's atomics).
//!
//! **Pass 1 (parallel).** Each shard's [`Lane`] plus its message slab is
//! moved into a job that processes the shard's honest-subject window
//! events in global sequence order: drop/park decisions from the lane's
//! [`LaneFlags`] mirror, payload takes from the shard slab, handler
//! invocations metering queries into the lane's [`MeterDelta`], and the
//! step's outbox captured per event as a [`Pass1Outcome`]. Nothing
//! global is touched; the lane and slab come back through a result slot.
//!
//! **Pass 2 (serial).** The coordinator walks the window in global
//! sequence order, replaying exactly the serial loop's bookkeeping per
//! event — livelock-guard check, status transitions, pre-start flush
//! pushes (allocating the same `seq` stamps the serial pump would),
//! termination accounting, and the full outbox dispatch with its
//! adversary `on_send` calls against the shared adversary RNG. Byzantine
//! -subject events are not given to lanes at all; the coordinator runs
//! them inline in pass 2, because the serial loop may stop mid-window
//! the moment the last pending honest peer terminates, and a Byzantine
//! handler that the serial pump would never have run must not run here
//! either. (Honest-subject events after that stop point are provably
//! side-effect-free: their subjects have all terminated by then, in lane
//! order, so pass 1 dropped them without running a handler.)
//!
//! Every adversary decision, RNG draw, `seq` stamp, meter count, and
//! agent step therefore happens in exactly the serial order — which is
//! why `RunReport::fingerprint()` is bit-identical for every
//! (shards × threads) combination, and why parallel windows are gated on
//! [`Adversary::parallel_safe`](crate::Adversary::parallel_safe):
//! adversaries whose crash hooks can fire (or that record a trace) fall
//! back to the serial pump, where those hooks interleave exactly.

use crate::agent::Agent;
use crate::shard::{EventKind, MsgSlab, QueuedEvent};
use crate::view::LaneFlags;
use dr_core::{BitArray, Context, MeterDelta, ModelParams, PeerId, ProtocolMessage, Source};
use rand::rngs::StdRng;
use rand::RngCore;
use std::sync::Arc;

/// What pass 1 decided (and already did, lane-locally) for one event.
pub(crate) enum Pass1Outcome<M> {
    /// Subject was crashed or terminated; any payload slot was freed.
    Dropped,
    /// Subject had not started; the payload was parked in the lane's
    /// pre-start buffer, keeping its slot.
    Parked,
    /// The handler ran. The coordinator applies the global bookkeeping.
    Stepped {
        /// Whether this was the subject's start event.
        is_start: bool,
        /// Messages the step emitted, in send order.
        outbox: Vec<(PeerId, M)>,
        /// Pre-start buffer drained by a start step (`(from, slot)` in
        /// arrival order), for the coordinator to re-enqueue.
        flush: Vec<(PeerId, u32)>,
        /// `agent.is_terminated()` after the step.
        terminated_after: bool,
    },
}

/// The mutable per-shard half of the simulator state: everything a
/// window batch for this shard's peers needs to own on a worker thread.
/// Peer `p` lives in lane `p % num_shards`, slot `p / num_shards`.
pub(crate) struct Lane<M: ProtocolMessage> {
    pub(crate) shard: usize,
    pub(crate) num_shards: usize,
    pub(crate) agents: Vec<Box<dyn Agent<M>>>,
    pub(crate) rngs: Vec<StdRng>,
    /// Messages that arrived at a peer before its start event, waiting
    /// for it to begin. Entries are `(from, slot)` into the shard slab.
    pub(crate) pre_start: Vec<Vec<(PeerId, u32)>>,
    /// Mirror of the authoritative `PeerStatus` lifecycle bits.
    pub(crate) flags: Vec<LaneFlags>,
    /// Shard-local query buffer, folded into the shared meter at the
    /// window barrier (parallel) or after each step (serial).
    pub(crate) delta: MeterDelta,
    /// Unmetered handle to the source; the lane does its own accounting
    /// through `delta`.
    pub(crate) source: Arc<dyn Source>,
    /// Drained outbox buffers recycled across steps.
    pub(crate) spare_outboxes: Vec<Vec<(PeerId, M)>>,
}

impl<M: ProtocolMessage> Lane<M> {
    /// The lane-local slot of `peer` (which must belong to this lane).
    pub(crate) fn slot_of(&self, peer: PeerId) -> usize {
        debug_assert_eq!(peer.index() % self.num_shards, self.shard);
        peer.index() / self.num_shards
    }

    /// An empty stand-in left behind while the real lane is lent to a
    /// worker thread. Never executes events.
    pub(crate) fn vacated(&self) -> Lane<M> {
        Lane {
            shard: self.shard,
            num_shards: self.num_shards,
            agents: Vec::new(),
            rngs: Vec::new(),
            pre_start: Vec::new(),
            flags: Vec::new(),
            delta: dr_core::QueryMeter::new(0).delta(0, 1),
            source: Arc::clone(&self.source),
            spare_outboxes: Vec::new(),
        }
    }

    /// Pass 1 for this lane: processes `events` (all subjects owned by
    /// this lane, ascending global seq) against the lane's own state and
    /// the shard slab, returning one outcome per event. See the module
    /// docs for the safety argument; adversary crash hooks are not
    /// consulted — the caller guarantees they are inert
    /// (`Adversary::parallel_safe`).
    pub(crate) fn run_window(
        &mut self,
        slab: &mut MsgSlab<M>,
        events: &[QueuedEvent],
        params: &ModelParams,
    ) -> Vec<Pass1Outcome<M>> {
        let mut outcomes = Vec::with_capacity(events.len());
        for ev in events {
            let to = ev.kind.subject();
            let slot_of = self.slot_of(to);
            let flags = self.flags[slot_of];
            if flags.crashed || flags.terminated {
                if let EventKind::Deliver { slot, .. } = ev.kind {
                    drop(slab.take(slot));
                }
                outcomes.push(Pass1Outcome::Dropped);
                continue;
            }
            if !flags.started {
                if let EventKind::Deliver { from, slot, .. } = ev.kind {
                    self.pre_start[slot_of].push((from, slot));
                    outcomes.push(Pass1Outcome::Parked);
                    continue;
                }
            }
            let mut outbox = self.spare_outboxes.pop().unwrap_or_default();
            debug_assert!(outbox.is_empty());
            let is_start = matches!(ev.kind, EventKind::Start(_));
            {
                let agent = &mut self.agents[slot_of];
                let mut ctx = LaneCtx {
                    me: to,
                    num_peers: params.k(),
                    input_len: params.n(),
                    source: &*self.source,
                    delta: &mut self.delta,
                    rng: &mut self.rngs[slot_of],
                    outbox: &mut outbox,
                };
                match ev.kind {
                    EventKind::Start(_) => {
                        self.flags[slot_of].started = true;
                        agent.on_start(&mut ctx);
                    }
                    EventKind::Deliver { from, slot, .. } => {
                        let msg = slab.take(slot);
                        agent.on_message(from, msg, &mut ctx);
                    }
                    EventKind::Retransmit { .. } => {
                        // Retransmit events exist only for lossy runs,
                        // which the eligibility gate keeps on the serial
                        // pump; the coordinator also filters them out of
                        // lane batches defensively.
                        unreachable!("retransmit event handed to a lane")
                    }
                }
            }
            let flush = if is_start {
                std::mem::take(&mut self.pre_start[slot_of])
            } else {
                Vec::new()
            };
            let terminated_after = self.agents[slot_of].is_terminated();
            self.flags[slot_of].terminated = terminated_after;
            outcomes.push(Pass1Outcome::Stepped {
                is_start,
                outbox,
                flush,
                terminated_after,
            });
        }
        outcomes
    }
}

/// The [`Context`] a lane hands its agents: queries go straight to the
/// raw source with accounting buffered in the lane's [`MeterDelta`] — no
/// atomics, no locks — and sends accumulate in the step outbox for the
/// coordinator to dispatch.
pub(crate) struct LaneCtx<'a, M> {
    pub(crate) me: PeerId,
    pub(crate) num_peers: usize,
    pub(crate) input_len: usize,
    pub(crate) source: &'a dyn Source,
    pub(crate) delta: &'a mut MeterDelta,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) outbox: &'a mut Vec<(PeerId, M)>,
}

impl<M: ProtocolMessage> Context<M> for LaneCtx<'_, M> {
    fn me(&self) -> PeerId {
        self.me
    }
    fn num_peers(&self) -> usize {
        self.num_peers
    }
    fn input_len(&self) -> usize {
        self.input_len
    }
    fn send(&mut self, to: PeerId, msg: M) {
        self.outbox.push((to, msg));
    }
    fn query(&mut self, index: usize) -> bool {
        self.delta.record(self.me, index);
        self.source.bit(index)
    }
    fn query_range(&mut self, range: std::ops::Range<usize>) -> BitArray {
        // Bulk path: one buffered meter update + word-level copy instead
        // of the default per-bit loop. Identical accounting and results.
        self.delta.record_range(self.me, range.clone());
        self.source.bits(range)
    }
    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// Runs a window's shard jobs. The simulator is executor-agnostic: the
/// serial executor below runs jobs inline, and `dr_bench::plane`
/// provides the work-stealing pool implementation that shares workers
/// with trial-level parallelism. Implementations must run every job to
/// completion (in any order, on any threads) before returning.
pub trait WindowExecutor: Send + Sync {
    /// Executes all `jobs`, returning only once each has finished.
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send>>);
}

/// Runs window jobs inline on the calling thread — the degenerate
/// executor, useful for exercising the two-pass window path without any
/// worker pool.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialWindowExecutor;

impl WindowExecutor for SerialWindowExecutor {
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send>>) {
        for job in jobs {
            job();
        }
    }
}
