//! Event pumps: the serial and sharded queue/slab backends behind the
//! simulator hot loop.
//!
//! [`EventPump`] owns the pending-event queue and the payload slabs for a
//! run. The serial backend is one `BinaryHeap` plus one [`MsgSlab`] — the
//! layout every golden fingerprint was recorded against. The sharded
//! backend partitions peers across `s` shards (`shard(p) = p mod s`), each
//! with its own heap and slab, and advances them under a conservative
//! time-window barrier:
//!
//! * **Window.** All pending events sharing the minimum tick `T` form one
//!   window. Message latencies are clamped to `1..=TICKS_PER_UNIT`, so an
//!   event processed at tick `T` can only schedule events at `T + 1` or
//!   later — the window is causally closed and can be drained from every
//!   shard up front without missing a cross-shard send into it.
//! * **Merge.** The drained window is sorted by the global `seq` stamp, so
//!   events pop in exactly the `(at, seq)` order the serial heap produces.
//! * **Same-tick appends.** The one exception to "new events land after
//!   the window" is the pre-start flush, which re-enqueues buffered
//!   messages at the *current* tick. Those pushes carry fresh `seq` stamps
//!   larger than everything already drained, so appending them to the
//!   active window keeps it sorted — checked by a debug assertion.
//!
//! Pop order therefore matches the serial pump event for event; adversary
//! hooks, RNG draws, and every fingerprinted observable are bit-identical.
//! Occupancy accounting (queue depth, live payloads, peaks) lives on the
//! pump wrapper and counts globally, so the memory-pressure metrics also
//! match the serial backend exactly.
//!
//! Slot lifecycle: every slab slot is owned by exactly one of a queued
//! `Deliver` event, a held message, or a pre-start buffer entry; whichever
//! path consumes or cancels the message frees the slot. The simulator
//! asserts at the end of successful debug runs that no slot is left owned.

use crate::time::Ticks;
use dr_core::PeerId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Slot-indexed store for message payloads.
///
/// A hand-rolled slab: `insert` hands out a `u32` slot (recycling freed
/// slots LIFO), `take` moves the payload out and frees the slot. Payloads
/// stay put for their whole queued/held lifetime — only slot indices move
/// through the event queue.
pub(crate) struct MsgSlab<M> {
    slots: Vec<Option<M>>,
    free: Vec<u32>,
}

impl<M> MsgSlab<M> {
    fn new() -> Self {
        MsgSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores a payload, recycling a freed slot when one exists and
    /// growing the slab otherwise. Fails (instead of panicking) when
    /// growth would exceed `capacity` slots.
    fn insert(&mut self, msg: M, capacity: u32) -> Result<u32, SlabOverflow> {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(msg);
                Ok(slot)
            }
            None => {
                if self.slots.len() >= capacity as usize {
                    return Err(SlabOverflow { capacity });
                }
                let slot = self.slots.len() as u32;
                self.slots.push(Some(msg));
                Ok(slot)
            }
        }
    }

    fn take(&mut self, slot: u32) -> M {
        let msg = self.slots[slot as usize]
            .take()
            .expect("message slot already freed");
        self.free.push(slot);
        msg
    }
}

/// A payload slab filled up: inserting one more message would grow some
/// slab past its configured slot capacity. Surfaced through
/// [`RunError::SlabOverflow`](crate::RunError::SlabOverflow) instead of
/// aborting mid-pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlabOverflow {
    /// The per-slab slot capacity that was hit.
    pub capacity: u32,
}

#[derive(Clone, Copy)]
pub(crate) enum EventKind {
    Start(PeerId),
    Deliver { from: PeerId, to: PeerId, slot: u32 },
}

impl EventKind {
    /// The peer an event steps (and whose shard owns any payload slot).
    fn subject(self) -> PeerId {
        match self {
            EventKind::Start(p) => p,
            EventKind::Deliver { to, .. } => to,
        }
    }
}

#[derive(Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub(crate) at: Ticks,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    // Reversed so that BinaryHeap pops the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One shard: a private event heap plus a private payload slab for the
/// peers this shard owns.
struct Shard<M> {
    queue: BinaryHeap<QueuedEvent>,
    slab: MsgSlab<M>,
}

/// The sharded backend state: per-shard heaps plus the active time window.
struct Sharded<M> {
    shards: Vec<Shard<M>>,
    /// Events of the active window in ascending `seq` order; positions
    /// before `cursor` have been popped.
    window: Vec<QueuedEvent>,
    cursor: usize,
    /// Tick of the active window. Stays set after the window drains so a
    /// same-tick push (pre-start flush) still lands in the window rather
    /// than a shard heap.
    window_at: Option<Ticks>,
}

impl<M> Sharded<M> {
    fn shard_of(&self, peer: PeerId) -> usize {
        peer.index() % self.shards.len()
    }

    fn push(&mut self, ev: QueuedEvent) {
        match self.window_at {
            Some(t) if ev.at == t => {
                // Same-tick append (pre-start flush): `seq` stamps are
                // globally monotonic, so the window stays sorted.
                debug_assert!(
                    self.window.last().is_none_or(|last| last.seq < ev.seq),
                    "same-tick push out of seq order"
                );
                self.window.push(ev);
            }
            earlier => {
                debug_assert!(
                    earlier.is_none_or(|t| ev.at > t),
                    "event scheduled before the active window (latency < 1?)"
                );
                let s = self.shard_of(ev.kind.subject());
                self.shards[s].queue.push(ev);
            }
        }
    }

    fn pop(&mut self) -> Option<QueuedEvent> {
        if self.cursor < self.window.len() {
            let ev = self.window[self.cursor];
            self.cursor += 1;
            return Some(ev);
        }
        // Refill: drain every shard's events at the global minimum tick
        // into a fresh window, then merge by seq.
        self.window.clear();
        self.cursor = 0;
        let t = self
            .shards
            .iter()
            .filter_map(|s| s.queue.peek())
            .map(|ev| ev.at)
            .min()?;
        self.window_at = Some(t);
        for shard in &mut self.shards {
            while shard.queue.peek().is_some_and(|ev| ev.at == t) {
                self.window.push(shard.queue.pop().expect("peeked"));
            }
        }
        self.window.sort_unstable_by_key(|ev| ev.seq);
        self.cursor = 1;
        Some(self.window[0])
    }
}

enum Backend<M> {
    Serial {
        queue: BinaryHeap<QueuedEvent>,
        slab: MsgSlab<M>,
    },
    Sharded(Sharded<M>),
}

/// The simulator's pending-event queue and payload store, in either the
/// serial (one heap, one slab) or the sharded (per-shard heaps and slabs
/// under a time-window barrier) layout. Both pop events in identical
/// global `(at, seq)` order.
pub(crate) struct EventPump<M> {
    backend: Backend<M>,
    /// Per-slab slot capacity; inserting past it yields [`SlabOverflow`].
    capacity: u32,
    queued: usize,
    peak_queued: usize,
    live: usize,
    peak_live: usize,
}

impl<M> EventPump<M> {
    /// Creates a pump with `shards` shards (1 = the serial layout) and a
    /// per-slab slot capacity.
    pub(crate) fn new(shards: usize, capacity: u32) -> Self {
        assert!(shards >= 1, "a pump needs at least one shard");
        let backend = if shards == 1 {
            Backend::Serial {
                queue: BinaryHeap::new(),
                slab: MsgSlab::new(),
            }
        } else {
            Backend::Sharded(Sharded {
                shards: (0..shards)
                    .map(|_| Shard {
                        queue: BinaryHeap::new(),
                        slab: MsgSlab::new(),
                    })
                    .collect(),
                window: Vec::new(),
                cursor: 0,
                window_at: None,
            })
        };
        EventPump {
            backend,
            capacity,
            queued: 0,
            peak_queued: 0,
            live: 0,
            peak_live: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: QueuedEvent) {
        match &mut self.backend {
            Backend::Serial { queue, .. } => queue.push(ev),
            Backend::Sharded(sharded) => sharded.push(ev),
        }
        self.queued += 1;
        self.peak_queued = self.peak_queued.max(self.queued);
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let ev = match &mut self.backend {
            Backend::Serial { queue, .. } => queue.pop(),
            Backend::Sharded(sharded) => sharded.pop(),
        };
        if ev.is_some() {
            self.queued -= 1;
        }
        ev
    }

    /// Stores a payload in the slab of the shard owning `owner` (the
    /// destination peer for deliveries, holds, and pre-start buffers).
    pub(crate) fn insert_payload(&mut self, owner: PeerId, msg: M) -> Result<u32, SlabOverflow> {
        let slot = match &mut self.backend {
            Backend::Serial { slab, .. } => slab.insert(msg, self.capacity)?,
            Backend::Sharded(sharded) => {
                let s = sharded.shard_of(owner);
                sharded.shards[s].slab.insert(msg, self.capacity)?
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        Ok(slot)
    }

    /// Moves a payload out of `owner`'s shard slab, freeing the slot.
    pub(crate) fn take_payload(&mut self, owner: PeerId, slot: u32) -> M {
        self.live -= 1;
        match &mut self.backend {
            Backend::Serial { slab, .. } => slab.take(slot),
            Backend::Sharded(sharded) => {
                let s = sharded.shard_of(owner);
                sharded.shards[s].slab.take(slot)
            }
        }
    }

    /// Payloads currently alive across all slabs (queued + held +
    /// pre-start buffered).
    pub(crate) fn live_payloads(&self) -> usize {
        self.live
    }

    /// Peak queue occupancy over the run (all shards combined).
    pub(crate) fn peak_queued(&self) -> usize {
        self.peak_queued
    }

    /// Peak live payloads over the run (all slabs combined).
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Ticks, seq: u64, peer: usize) -> QueuedEvent {
        QueuedEvent {
            at,
            seq,
            kind: EventKind::Start(PeerId(peer)),
        }
    }

    fn drain_order(pump: &mut EventPump<()>) -> Vec<(Ticks, u64)> {
        std::iter::from_fn(|| pump.pop())
            .map(|e| (e.at, e.seq))
            .collect()
    }

    #[test]
    fn sharded_pops_in_global_at_seq_order() {
        for shards in [1, 2, 3, 7] {
            let mut pump: EventPump<()> = EventPump::new(shards, u32::MAX);
            // Interleave peers and ticks in a scrambled push order.
            let pushes = [
                (5, 0, 0),
                (1, 1, 3),
                (5, 2, 1),
                (1, 3, 2),
                (9, 4, 5),
                (1, 5, 4),
                (5, 6, 6),
            ];
            for (at, seq, peer) in pushes {
                pump.push(ev(at, seq, peer));
            }
            assert_eq!(
                drain_order(&mut pump),
                vec![(1, 1), (1, 3), (1, 5), (5, 0), (5, 2), (5, 6), (9, 4)],
                "shards={shards}"
            );
        }
    }

    #[test]
    fn same_tick_push_lands_in_active_window() {
        let mut pump: EventPump<()> = EventPump::new(3, u32::MAX);
        pump.push(ev(4, 0, 0));
        pump.push(ev(4, 1, 1));
        pump.push(ev(7, 2, 2));
        assert_eq!(pump.pop().map(|e| e.seq), Some(0));
        // Mid-window push at the same tick (the pre-start flush shape).
        pump.push(ev(4, 3, 2));
        assert_eq!(pump.pop().map(|e| e.seq), Some(1));
        assert_eq!(pump.pop().map(|e| e.seq), Some(3));
        // Push at the window tick after the window drained but before the
        // next refill — still ahead of the tick-7 event.
        pump.push(ev(4, 4, 1));
        assert_eq!(pump.pop().map(|e| e.seq), Some(4));
        assert_eq!(pump.pop().map(|e| e.seq), Some(2));
        assert!(pump.pop().is_none());
    }

    #[test]
    fn payloads_route_to_owner_shard() {
        let mut pump: EventPump<&'static str> = EventPump::new(4, u32::MAX);
        let a = pump.insert_payload(PeerId(1), "one").unwrap();
        let b = pump.insert_payload(PeerId(5), "five").unwrap();
        // Peers 1 and 5 share shard 1 of 4; distinct slots in one slab.
        assert_ne!(a, b);
        let c = pump.insert_payload(PeerId(2), "two").unwrap();
        assert_eq!(pump.live_payloads(), 3);
        assert_eq!(pump.take_payload(PeerId(5), b), "five");
        assert_eq!(pump.take_payload(PeerId(1), a), "one");
        assert_eq!(pump.take_payload(PeerId(2), c), "two");
        assert_eq!(pump.live_payloads(), 0);
        assert_eq!(pump.peak_live(), 3);
    }

    #[test]
    fn slab_capacity_overflows_structuredly() {
        let mut pump: EventPump<u8> = EventPump::new(1, 2);
        let a = pump.insert_payload(PeerId(0), 1).unwrap();
        let _b = pump.insert_payload(PeerId(0), 2).unwrap();
        assert_eq!(
            pump.insert_payload(PeerId(0), 3),
            Err(SlabOverflow { capacity: 2 })
        );
        // Freeing a slot makes room again (recycled, not grown).
        assert_eq!(pump.take_payload(PeerId(0), a), 1);
        assert!(pump.insert_payload(PeerId(0), 4).is_ok());
    }

    #[test]
    fn queue_peaks_count_globally() {
        let mut pump: EventPump<()> = EventPump::new(2, u32::MAX);
        for seq in 0..6 {
            pump.push(ev(1 + seq, seq, seq as usize));
        }
        assert_eq!(pump.peak_queued(), 6);
        while pump.pop().is_some() {}
        assert_eq!(pump.peak_queued(), 6);
    }
}
