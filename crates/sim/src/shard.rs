//! The event pump: the sharded queue/slab structure behind the simulator
//! hot loop, and the single source of truth for event pop order.
//!
//! [`EventPump`] owns the pending-event queue and the payload slabs for a
//! run. There is one layout for every shard count: peers are partitioned
//! across `s` shards (`shard(p) = p mod s`, with `s = 1` recovering the
//! serial configuration), each with its own heap and slab, advanced under
//! a conservative time-window barrier:
//!
//! * **Window.** All pending events sharing the minimum tick `T` form one
//!   window. Message latencies are clamped to `1..=TICKS_PER_UNIT`, so an
//!   event processed at tick `T` can only schedule events at `T + 1` or
//!   later — the window is causally closed and can be drained from every
//!   shard up front without missing a cross-shard send into it.
//! * **Merge.** The drained window is sorted by the global `seq` stamp, so
//!   events pop in exactly the global `(at, seq)` order a single heap
//!   would produce. With one shard the refill is a straight heap drain of
//!   the minimum tick; the serving order is identical either way, which is
//!   why the pre-unification serial backend could be deleted without
//!   re-pinning a single golden fingerprint.
//! * **Same-tick appends.** The one exception to "new events land after
//!   the window" is the pre-start flush, which re-enqueues buffered
//!   messages at the *current* tick. Those pushes carry fresh `seq` stamps
//!   larger than everything already drained, so appending them to the
//!   active window keeps it sorted — checked by a debug assertion.
//!
//! Occupancy accounting (queue depth, live payloads, peaks) lives both on
//! the pump wrapper (global, matching the historical serial counters) and
//! per shard (for the `RunReport` per-shard peak columns). The parallel
//! dispatch path borrows whole windows ([`EventPump::take_window_at_least`])
//! and shard slabs ([`EventPump::take_slab`]/[`EventPump::put_slab`]) so
//! worker threads can own their shard's state outright for the duration of
//! a window — see `sim.rs` for the two-pass execution argument.
//!
//! Slot lifecycle: every slab slot is owned by exactly one of a queued
//! `Deliver` event, a held message, or a pre-start buffer entry; whichever
//! path consumes or cancels the message frees the slot. The simulator
//! asserts at the end of successful debug runs that no slot is left owned.

use crate::time::Ticks;
use dr_core::PeerId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Slot-indexed store for message payloads.
///
/// A hand-rolled slab: `insert` hands out a `u32` slot (recycling freed
/// slots LIFO), `take` moves the payload out and frees the slot. Payloads
/// stay put for their whole queued/held lifetime — only slot indices move
/// through the event queue. The slab tracks its own live/peak occupancy so
/// per-shard peaks stay exact even while the slab is lent out to a worker
/// thread.
pub(crate) struct MsgSlab<M> {
    slots: Vec<Option<M>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
}

impl<M> MsgSlab<M> {
    fn new() -> Self {
        MsgSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Stores a payload, recycling a freed slot when one exists and
    /// growing the slab otherwise. Fails (instead of panicking) when
    /// growth would exceed `capacity` slots.
    fn insert(&mut self, msg: M, capacity: u32) -> Result<u32, SlabOverflow> {
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(msg);
                slot
            }
            None => {
                if self.slots.len() >= capacity as usize {
                    return Err(SlabOverflow { capacity });
                }
                let slot = self.slots.len() as u32;
                self.slots.push(Some(msg));
                slot
            }
        };
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        Ok(slot)
    }

    pub(crate) fn take(&mut self, slot: u32) -> M {
        let msg = self.slots[slot as usize]
            .take()
            .expect("message slot already freed");
        self.free.push(slot);
        self.live -= 1;
        msg
    }

    /// Payloads currently stored.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Peak stored payloads over this slab's lifetime.
    fn peak_live(&self) -> usize {
        self.peak_live
    }
}

/// A payload slab filled up: inserting one more message would grow some
/// slab past its configured slot capacity. Surfaced through
/// [`RunError::SlabOverflow`](crate::RunError::SlabOverflow) instead of
/// aborting mid-pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlabOverflow {
    /// The per-slab slot capacity that was hit.
    pub capacity: u32,
}

#[derive(Clone, Copy)]
pub(crate) enum EventKind {
    Start(PeerId),
    Deliver {
        from: PeerId,
        to: PeerId,
        slot: u32,
    },
    /// A backed-off resend attempt of a dropped transmission fires: the
    /// payload still sits in `to`'s shard slab at `slot` (the event owns
    /// the slot, like a queued delivery), and the coordinator re-consults
    /// the adversary's transmit decision. Never steps an agent.
    Retransmit {
        from: PeerId,
        to: PeerId,
        slot: u32,
    },
}

impl EventKind {
    /// The peer an event steps (and whose shard owns any payload slot).
    pub(crate) fn subject(self) -> PeerId {
        match self {
            EventKind::Start(p) => p,
            EventKind::Deliver { to, .. } => to,
            EventKind::Retransmit { to, .. } => to,
        }
    }
}

#[derive(Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub(crate) at: Ticks,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    // Reversed so that BinaryHeap pops the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One shard: a private event heap plus a private payload slab for the
/// peers this shard owns. The slab sits in an `Option` so the parallel
/// dispatch path can lend it to a worker thread for the duration of a
/// window; every access asserts it is home.
struct Shard<M> {
    queue: BinaryHeap<QueuedEvent>,
    slab: Option<MsgSlab<M>>,
    /// Events currently queued for this shard (heap + unserved window).
    queued: usize,
    peak_queued: usize,
}

impl<M> Shard<M> {
    fn slab(&mut self) -> &mut MsgSlab<M> {
        self.slab.as_mut().expect("shard slab lent out")
    }
}

/// The simulator's pending-event queue and payload store: per-shard heaps
/// and slabs drained through a time-window barrier, popping events in
/// global `(at, seq)` order for any shard count (1 = the serial layout).
pub(crate) struct EventPump<M> {
    shards: Vec<Shard<M>>,
    /// Events of the active window in ascending `seq` order; positions
    /// before `cursor` have been popped.
    window: Vec<QueuedEvent>,
    cursor: usize,
    /// Tick of the active window. Stays set after the window drains so a
    /// same-tick push (pre-start flush) still lands in the window rather
    /// than a shard heap.
    window_at: Option<Ticks>,
    /// Per-slab slot capacity; inserting past it yields [`SlabOverflow`].
    capacity: u32,
    queued: usize,
    peak_queued: usize,
    live: usize,
    peak_live: usize,
}

impl<M> EventPump<M> {
    /// Creates a pump with `shards` shards (1 = the serial layout) and a
    /// per-slab slot capacity.
    pub(crate) fn new(shards: usize, capacity: u32) -> Self {
        assert!(shards >= 1, "a pump needs at least one shard");
        EventPump {
            shards: (0..shards)
                .map(|_| Shard {
                    queue: BinaryHeap::new(),
                    slab: Some(MsgSlab::new()),
                    queued: 0,
                    peak_queued: 0,
                })
                .collect(),
            window: Vec::new(),
            cursor: 0,
            window_at: None,
            capacity,
            queued: 0,
            peak_queued: 0,
            live: 0,
            peak_live: 0,
        }
    }

    /// Number of shards (1 for the serial layout).
    pub(crate) fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `peer`'s events and payloads.
    pub(crate) fn shard_of(&self, peer: PeerId) -> usize {
        peer.index() % self.shards.len()
    }

    pub(crate) fn push(&mut self, ev: QueuedEvent) {
        let s = self.shard_of(ev.kind.subject());
        match self.window_at {
            Some(t) if ev.at == t => {
                // Same-tick append (pre-start flush): `seq` stamps are
                // globally monotonic, so the window stays sorted.
                debug_assert!(
                    self.window.last().is_none_or(|last| last.seq < ev.seq),
                    "same-tick push out of seq order"
                );
                self.window.push(ev);
            }
            earlier => {
                debug_assert!(
                    earlier.is_none_or(|t| ev.at > t),
                    "event scheduled before the active window (latency < 1?)"
                );
                self.shards[s].queue.push(ev);
            }
        }
        self.shards[s].queued += 1;
        self.shards[s].peak_queued = self.shards[s].peak_queued.max(self.shards[s].queued);
        self.queued += 1;
        self.peak_queued = self.peak_queued.max(self.queued);
    }

    /// Refills the window with every shard's events at the global minimum
    /// tick, merged by seq. Returns `false` if all heaps are empty.
    fn refill(&mut self) -> bool {
        debug_assert!(self.cursor >= self.window.len());
        self.window.clear();
        self.cursor = 0;
        let Some(t) = self
            .shards
            .iter()
            .filter_map(|s| s.queue.peek())
            .map(|ev| ev.at)
            .min()
        else {
            return false;
        };
        self.window_at = Some(t);
        for shard in &mut self.shards {
            while shard.queue.peek().is_some_and(|ev| ev.at == t) {
                self.window.push(shard.queue.pop().expect("peeked"));
            }
        }
        self.window.sort_unstable_by_key(|ev| ev.seq);
        true
    }

    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        if self.cursor >= self.window.len() && !self.refill() {
            return None;
        }
        let ev = self.window[self.cursor];
        self.cursor += 1;
        self.queued -= 1;
        let s = self.shard_of(ev.kind.subject());
        self.shards[s].queued -= 1;
        Some(ev)
    }

    /// Takes the whole active window (refilling it first if needed) when
    /// it holds at least `min` unserved events; otherwise leaves it for
    /// [`EventPump::pop`]. The window tick stays active, so same-tick
    /// appends made while the caller processes the taken events land in
    /// serving order behind them.
    pub(crate) fn take_window_at_least(&mut self, min: usize) -> Option<Vec<QueuedEvent>> {
        if self.cursor >= self.window.len() && !self.refill() {
            return None;
        }
        if self.window.len() - self.cursor < min {
            return None;
        }
        let taken: Vec<QueuedEvent> = self.window.split_off(self.cursor);
        for ev in &taken {
            self.queued -= 1;
            let s = self.shard_of(ev.kind.subject());
            self.shards[s].queued -= 1;
        }
        Some(taken)
    }

    /// Lends shard `s`'s slab to a worker. Live-payload accounting moves
    /// with it; [`EventPump::put_slab`] brings both home.
    pub(crate) fn take_slab(&mut self, s: usize) -> MsgSlab<M> {
        let slab = self.shards[s].slab.take().expect("shard slab already lent");
        self.live -= slab.live();
        slab
    }

    /// Returns a lent slab (see [`EventPump::take_slab`]).
    pub(crate) fn put_slab(&mut self, s: usize, slab: MsgSlab<M>) {
        debug_assert!(self.shards[s].slab.is_none(), "shard slab returned twice");
        self.live += slab.live();
        self.shards[s].slab = Some(slab);
    }

    /// Stores a payload in the slab of the shard owning `owner` (the
    /// destination peer for deliveries, holds, and pre-start buffers).
    pub(crate) fn insert_payload(&mut self, owner: PeerId, msg: M) -> Result<u32, SlabOverflow> {
        let s = self.shard_of(owner);
        let capacity = self.capacity;
        let slot = self.shards[s].slab().insert(msg, capacity)?;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        Ok(slot)
    }

    /// Moves a payload out of `owner`'s shard slab, freeing the slot.
    pub(crate) fn take_payload(&mut self, owner: PeerId, slot: u32) -> M {
        let s = self.shard_of(owner);
        self.live -= 1;
        self.shards[s].slab().take(slot)
    }

    /// Payloads currently alive across all slabs (queued + held +
    /// pre-start buffered).
    pub(crate) fn live_payloads(&self) -> usize {
        self.live
    }

    /// Peak queue occupancy over the run (all shards combined).
    pub(crate) fn peak_queued(&self) -> usize {
        self.peak_queued
    }

    /// Peak live payloads over the run (all slabs combined).
    pub(crate) fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Peak queue occupancy per shard.
    pub(crate) fn peak_queued_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.peak_queued as u64).collect()
    }

    /// Peak live payloads per shard slab.
    pub(crate) fn peak_live_per_shard(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.slab.as_ref().expect("shard slab lent out").peak_live() as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: Ticks, seq: u64, peer: usize) -> QueuedEvent {
        QueuedEvent {
            at,
            seq,
            kind: EventKind::Start(PeerId(peer)),
        }
    }

    fn drain_order(pump: &mut EventPump<()>) -> Vec<(Ticks, u64)> {
        std::iter::from_fn(|| pump.pop())
            .map(|e| (e.at, e.seq))
            .collect()
    }

    #[test]
    fn sharded_pops_in_global_at_seq_order() {
        for shards in [1, 2, 3, 7] {
            let mut pump: EventPump<()> = EventPump::new(shards, u32::MAX);
            // Interleave peers and ticks in a scrambled push order.
            let pushes = [
                (5, 0, 0),
                (1, 1, 3),
                (5, 2, 1),
                (1, 3, 2),
                (9, 4, 5),
                (1, 5, 4),
                (5, 6, 6),
            ];
            for (at, seq, peer) in pushes {
                pump.push(ev(at, seq, peer));
            }
            assert_eq!(
                drain_order(&mut pump),
                vec![(1, 1), (1, 3), (1, 5), (5, 0), (5, 2), (5, 6), (9, 4)],
                "shards={shards}"
            );
        }
    }

    #[test]
    fn same_tick_push_lands_in_active_window() {
        let mut pump: EventPump<()> = EventPump::new(3, u32::MAX);
        pump.push(ev(4, 0, 0));
        pump.push(ev(4, 1, 1));
        pump.push(ev(7, 2, 2));
        assert_eq!(pump.pop().map(|e| e.seq), Some(0));
        // Mid-window push at the same tick (the pre-start flush shape).
        pump.push(ev(4, 3, 2));
        assert_eq!(pump.pop().map(|e| e.seq), Some(1));
        assert_eq!(pump.pop().map(|e| e.seq), Some(3));
        // Push at the window tick after the window drained but before the
        // next refill — still ahead of the tick-7 event.
        pump.push(ev(4, 4, 1));
        assert_eq!(pump.pop().map(|e| e.seq), Some(4));
        assert_eq!(pump.pop().map(|e| e.seq), Some(2));
        assert!(pump.pop().is_none());
    }

    #[test]
    fn payloads_route_to_owner_shard() {
        let mut pump: EventPump<&'static str> = EventPump::new(4, u32::MAX);
        let a = pump.insert_payload(PeerId(1), "one").unwrap();
        let b = pump.insert_payload(PeerId(5), "five").unwrap();
        // Peers 1 and 5 share shard 1 of 4; distinct slots in one slab.
        assert_ne!(a, b);
        let c = pump.insert_payload(PeerId(2), "two").unwrap();
        assert_eq!(pump.live_payloads(), 3);
        assert_eq!(pump.take_payload(PeerId(5), b), "five");
        assert_eq!(pump.take_payload(PeerId(1), a), "one");
        assert_eq!(pump.take_payload(PeerId(2), c), "two");
        assert_eq!(pump.live_payloads(), 0);
        assert_eq!(pump.peak_live(), 3);
        // Per-shard attribution: shard 1 peaked at 2, shard 2 at 1, the
        // rest never held a payload.
        assert_eq!(pump.peak_live_per_shard(), vec![0, 2, 1, 0]);
    }

    #[test]
    fn slab_capacity_overflows_structuredly() {
        let mut pump: EventPump<u8> = EventPump::new(1, 2);
        let a = pump.insert_payload(PeerId(0), 1).unwrap();
        let _b = pump.insert_payload(PeerId(0), 2).unwrap();
        assert_eq!(
            pump.insert_payload(PeerId(0), 3),
            Err(SlabOverflow { capacity: 2 })
        );
        // Freeing a slot makes room again (recycled, not grown).
        assert_eq!(pump.take_payload(PeerId(0), a), 1);
        assert!(pump.insert_payload(PeerId(0), 4).is_ok());
    }

    #[test]
    fn queue_peaks_count_globally_and_per_shard() {
        let mut pump: EventPump<()> = EventPump::new(2, u32::MAX);
        for seq in 0..6 {
            pump.push(ev(1 + seq, seq, seq as usize));
        }
        assert_eq!(pump.peak_queued(), 6);
        assert_eq!(pump.peak_queued_per_shard(), vec![3, 3]);
        while pump.pop().is_some() {}
        assert_eq!(pump.peak_queued(), 6);
        assert_eq!(pump.peak_queued_per_shard(), vec![3, 3]);
    }

    #[test]
    fn take_window_respects_min_and_serving_order() {
        let mut pump: EventPump<()> = EventPump::new(3, u32::MAX);
        for (at, seq, peer) in [(2, 0, 0), (2, 1, 1), (2, 2, 5), (6, 3, 2)] {
            pump.push(ev(at, seq, peer));
        }
        // Window of 3 is below a min of 4: left for pop.
        assert!(pump.take_window_at_least(4).is_none());
        let win = pump.take_window_at_least(3).expect("window of 3");
        assert_eq!(win.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(pump.queued, 1);
        // Same-tick appends made while the window is out are served before
        // the next tick's events.
        pump.push(ev(2, 4, 1));
        assert_eq!(pump.pop().map(|e| e.seq), Some(4));
        assert_eq!(pump.pop().map(|e| e.seq), Some(3));
        assert!(pump.pop().is_none());
    }

    #[test]
    fn partially_served_window_can_still_be_taken() {
        let mut pump: EventPump<()> = EventPump::new(2, u32::MAX);
        for seq in 0..4 {
            pump.push(ev(3, seq, seq as usize));
        }
        assert_eq!(pump.pop().map(|e| e.seq), Some(0));
        let rest = pump.take_window_at_least(1).expect("remainder");
        assert_eq!(
            rest.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(pump.pop().is_none());
    }

    #[test]
    fn lent_slab_accounting_moves_with_it() {
        let mut pump: EventPump<u8> = EventPump::new(2, u32::MAX);
        let s0 = pump.insert_payload(PeerId(0), 10).unwrap();
        let _s1 = pump.insert_payload(PeerId(1), 11).unwrap();
        let mut slab = pump.take_slab(0);
        assert_eq!(pump.live_payloads(), 1);
        assert_eq!(slab.take(s0), 10);
        pump.put_slab(0, slab);
        assert_eq!(pump.live_payloads(), 1);
        assert_eq!(pump.peak_live(), 2);
        assert_eq!(pump.peak_live_per_shard(), vec![1, 1]);
    }
}
