//! Synchronization facade for the simulator's window barrier.
//!
//! The only cross-thread state the simulator owns is the per-shard result
//! slot vector ([`crate::slots::ResultSlots`]) that pass-1 lane jobs write
//! and the window barrier drains. Its mutex is constructed through this
//! module: `std::sync` by default, the vendored `loom` model checker under
//! the `loom-model` feature (std-equivalent outside `loom::model`), so
//! `tests/loom_fold.rs` can exhaustively interleave the shard-delta fold
//! protocol against the real `MeterDelta`/`QueryMeter` code.
//!
//! The `sync-primitive-outside-facade` lint keys off this file: raw
//! primitive construction elsewhere in the deterministic tier needs a
//! justified allow.

#[cfg(feature = "loom-model")]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "loom-model"))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};
