//! Tests of the structured execution-trace facility.

use dr_core::{BitArray, Context, FaultModel, ModelParams, PeerId, Protocol, ProtocolMessage};
use dr_sim::{render_trace, CrashPlan, FixedDelay, SimBuilder, StandardAdversary, TraceEntry};

#[derive(Debug, Clone)]
struct Ping;
impl ProtocolMessage for Ping {
    fn bit_len(&self) -> usize {
        8
    }
}

/// Queries everything, pings everyone once, terminates on first ping.
struct PingOnce {
    out: Option<BitArray>,
    acc: Option<BitArray>,
}
impl Protocol for PingOnce {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
        let n = ctx.input_len();
        self.acc = Some(ctx.query_range(0..n));
        ctx.broadcast(Ping);
        if ctx.num_peers() == 1 {
            self.out = self.acc.clone();
        }
    }
    fn on_message(&mut self, _f: PeerId, _m: Ping, _c: &mut dyn Context<Ping>) {
        self.out = self.acc.clone();
    }
    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[test]
fn trace_records_starts_deliveries_and_terminations() {
    let params = ModelParams::fault_free(8, 3).unwrap();
    let sim = SimBuilder::new(params)
        .seed(1)
        .protocol(|_| PingOnce {
            out: None,
            acc: None,
        })
        .trace()
        .build();
    let report = sim.run().unwrap();
    let trace = report.trace.as_ref().expect("trace enabled");
    let starts = trace
        .iter()
        .filter(|e| matches!(e, TraceEntry::Start { .. }))
        .count();
    let terms = trace
        .iter()
        .filter(|e| matches!(e, TraceEntry::Terminate { .. }))
        .count();
    let delivers = trace
        .iter()
        .filter(|e| matches!(e, TraceEntry::Deliver { .. }))
        .count();
    assert_eq!(starts, 3);
    assert_eq!(terms, 3);
    assert!(delivers >= 3, "each peer terminates on a delivery");
    // Timestamps are monotone.
    for w in trace.windows(2) {
        assert!(w[0].at() <= w[1].at());
    }
    // Renderable.
    let text = render_trace(trace);
    assert!(text.contains("START") && text.contains("DONE"));
}

#[test]
fn trace_records_crash_and_drop() {
    let params = ModelParams::builder(8, 3)
        .faults(FaultModel::Crash, 1)
        .build()
        .unwrap();
    // Fixed delays + simultaneous start make the delivery order the send
    // order, so peer 0's ping to the (pre-start-crashed) peer 1 is
    // processed — and dropped — before anyone terminates.
    let sim = SimBuilder::new(params)
        .seed(2)
        .protocol(|_| PingOnce {
            out: None,
            acc: None,
        })
        .adversary(
            StandardAdversary::new(FixedDelay(100), CrashPlan::before_event([PeerId(1)], 0))
                .simultaneous_start(),
        )
        .trace()
        .build();
    let report = sim.run().unwrap();
    let trace = report.trace.as_ref().unwrap();
    assert!(trace
        .iter()
        .any(|e| matches!(e, TraceEntry::Crash { peer, .. } if *peer == PeerId(1))));
    assert!(trace
        .iter()
        .any(|e| matches!(e, TraceEntry::Drop { to, .. } if *to == PeerId(1))));
}

#[test]
fn trace_is_absent_when_not_requested() {
    let params = ModelParams::fault_free(8, 2).unwrap();
    let sim = SimBuilder::new(params)
        .seed(3)
        .protocol(|_| PingOnce {
            out: None,
            acc: None,
        })
        .build();
    let report = sim.run().unwrap();
    assert!(report.trace.is_none());
}
