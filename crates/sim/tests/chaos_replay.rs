//! Integration tests for chaos adversaries, schedule record/replay, and
//! the joint fault budget.

use dr_core::{
    BitArray, Context, FaultModel, ModelParams, PartialArray, PeerId, Protocol, ProtocolMessage,
};
use dr_sim::{
    Adversary, ChaosAdversary, ChaosConfig, CrashPlan, Delivery, RecordingAdversary,
    ReplayAdversary, RunError, SilentAgent, SimBuilder, StandardAdversary, UniformDelay, View,
};
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct Chunk {
    offset: usize,
    bits: BitArray,
}

impl ProtocolMessage for Chunk {
    fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

struct Balanced {
    acc: PartialArray,
    out: Option<BitArray>,
}

impl Balanced {
    fn new(n: usize) -> Self {
        Balanced {
            acc: PartialArray::new(n),
            out: None,
        }
    }
    fn check(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }
}

impl Protocol for Balanced {
    type Msg = Chunk;
    fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
        let n = ctx.input_len();
        let k = ctx.num_peers();
        let per = n.div_ceil(k);
        let me = ctx.me().index();
        let range = (me * per).min(n)..((me + 1) * per).min(n);
        let bits = ctx.query_range(range.clone());
        self.acc.learn_slice(range.start, &bits);
        ctx.broadcast(Chunk {
            offset: range.start,
            bits,
        });
        self.check();
    }
    fn on_message(&mut self, _f: PeerId, m: Chunk, _c: &mut dyn Context<Chunk>) {
        self.acc.learn_slice(m.offset, &m.bits);
        self.check();
    }
    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[test]
fn recorded_chaos_run_replays_bit_identically() {
    let n = 64;
    let k = 4;
    let seed = 0xfeed;
    // Hold-heavy chaos without crashes so the run completes and yields a
    // report to fingerprint.
    let cfg = ChaosConfig {
        crash_budget: 0,
        crash_prob: 0.0,
        cut_prob: 0.0,
        hold_prob: 0.4,
        partial_release_prob: 0.8,
    };
    let params = ModelParams::fault_free(n, k).unwrap();
    let (recorder, handle) = RecordingAdversary::new(ChaosAdversary::new(seed, cfg));
    let sim = SimBuilder::new(params)
        .seed(seed)
        .protocol(move |_| Balanced::new(n))
        .adversary(recorder)
        .build();
    let input = sim.input().clone();
    let original = sim.run().unwrap();
    original.verify_downloads(&input).unwrap();
    assert!(original.quiescence_releases > 0, "chaos run held nothing");
    let trace = handle.take();
    assert!(trace.sends.iter().any(|s| s.is_none()));

    // Replay, re-recording to confirm the trace is a fixed point.
    let (rerecorder, rehandle) = RecordingAdversary::new(ReplayAdversary::new(trace.clone()));
    let sim = SimBuilder::new(params)
        .seed(seed)
        .protocol(move |_| Balanced::new(n))
        .adversary(rerecorder)
        .build();
    let replayed = sim.run().unwrap();
    assert_eq!(replayed.fingerprint(), original.fingerprint());
    assert_eq!(rehandle.take(), trace);
}

#[test]
fn replayed_failure_reproduces_the_error() {
    // A crashing chaos schedule that deadlocks Balanced must deadlock
    // identically on replay.
    let n = 64;
    let k = 4;
    let seed = 7;
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Crash, 1)
        .build()
        .unwrap();
    let cfg = ChaosConfig {
        crash_budget: 1,
        crash_prob: 0.5,
        cut_prob: 0.0,
        hold_prob: 0.0,
        partial_release_prob: 0.0,
    };
    let (recorder, handle) = RecordingAdversary::new(ChaosAdversary::new(seed, cfg));
    let sim = SimBuilder::new(params)
        .seed(seed)
        .protocol(move |_| Balanced::new(n))
        .adversary(recorder)
        .build();
    let original = sim.run();
    let trace = handle.take();
    assert_eq!(trace.crashes.len(), 1, "expected exactly one crash");
    let stuck = match original {
        Err(RunError::Deadlock { stuck }) => stuck,
        other => panic!("expected deadlock, got {other:?}"),
    };

    let sim = SimBuilder::new(params)
        .seed(seed)
        .protocol(move |_| Balanced::new(n))
        .adversary(ReplayAdversary::new(trace).with_fault_cap(1))
        .build();
    match sim.run() {
        Err(RunError::Deadlock { stuck: stuck2 }) => assert_eq!(stuck2, stuck),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "joint fault budget exceeded")]
fn joint_fault_budget_enforced_at_build_time() {
    // b = 1: one Byzantine corruption plus one planned crash must be
    // rejected before the run starts.
    let n = 16;
    let params = ModelParams::builder(n, 4)
        .faults(FaultModel::Byzantine, 1)
        .build()
        .unwrap();
    let _ = SimBuilder::new(params)
        .seed(0)
        .protocol(move |_| Balanced::new(n))
        .byzantine(PeerId(3), SilentAgent::new())
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(0)], 0),
        ))
        .build();
}

#[test]
fn joint_fault_budget_allows_exact_fit() {
    // b = 2: one Byzantine + one planned crash fills the budget exactly
    // and must build (the crash itself stays legal at run time).
    let n = 16;
    let params = ModelParams::builder(n, 4)
        .faults(FaultModel::Byzantine, 2)
        .build()
        .unwrap();
    let sim = SimBuilder::new(params)
        .seed(0)
        .protocol(move |_| Balanced::new(n))
        .byzantine(PeerId(3), SilentAgent::new())
        .adversary(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(0)], 0),
        ))
        .build();
    // Balanced can't survive faults; we only care that the build-time
    // budget check passed and the run executes the planned crash.
    match sim.run() {
        Err(RunError::Deadlock { stuck }) => {
            assert!(!stuck.contains(&PeerId(0)));
            assert!(!stuck.contains(&PeerId(3)));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// Cuts peer 0's start batch down to its first message *and* holds that
/// surviving message: the crash_during_send × held interaction of the
/// chaos satellite.
struct CutAndHold;

impl Adversary<Chunk> for CutAndHold {
    fn on_send(
        &mut self,
        _v: &View<'_>,
        from: PeerId,
        _t: PeerId,
        _m: &Chunk,
        _r: &mut StdRng,
    ) -> Delivery {
        if from == PeerId(0) {
            Delivery::Hold
        } else {
            Delivery::After(1)
        }
    }

    fn crash_during_send(&mut self, _v: &View<'_>, peer: PeerId, planned: usize) -> Option<usize> {
        if peer == PeerId(0) {
            Some(planned.min(1))
        } else {
            None
        }
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(1)
    }
}

#[test]
fn cut_batch_surviving_prefix_is_releasable_at_quiescence() {
    // k = 2: peer 0's single-message start batch is "cut" at keep = 1
    // (crashing peer 0) and the surviving message to peer 1 is held. At
    // quiescence the adversary must still be able to release it, letting
    // peer 1 — the only nonfaulty peer — finish the download.
    let n = 32;
    let params = ModelParams::builder(n, 2)
        .faults(FaultModel::Crash, 1)
        .build()
        .unwrap();
    let sim = SimBuilder::new(params)
        .seed(5)
        .protocol(move |_| Balanced::new(n))
        .adversary(CutAndHold)
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert!(report.crashed.contains(PeerId(0)));
    assert!(report.nonfaulty.contains(PeerId(1)));
    assert_eq!(report.quiescence_releases, 1);
    assert!(report.outputs[1].is_some());
}

/// Holds every message while a partition separates the two peers: the
/// compelled-release × link-fault interaction of the fault-plane
/// satellite.
struct HoldAllWithCut {
    heal: dr_sim::Ticks,
}

impl Adversary<Chunk> for HoldAllWithCut {
    fn on_send(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _m: &Chunk,
        _r: &mut StdRng,
    ) -> Delivery {
        Delivery::Hold
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn link_fault_plan(&self) -> dr_sim::LinkFaultPlan {
        dr_sim::LinkFaultPlan {
            partitions: vec![dr_sim::PartitionDirective {
                name: "quiescence-cut".into(),
                group: vec![PeerId(0)],
                from_tick: 0,
                heal_tick: self.heal,
            }],
            ..Default::default()
        }
    }
}

#[test]
fn compelled_release_parks_across_an_unhealed_cut() {
    // k = 2, every message held, peers partitioned from tick 0: the
    // queue drains while the cut is still up, so quiescence compels the
    // adversary to release both chunks *during* the partition. The
    // release must still happen (compelled progress is non-negotiable)
    // but the released messages must not cross the unhealed cut — they
    // park and deliver at heal, so the run finishes only after it.
    let n = 32;
    let heal = 10 * dr_sim::TICKS_PER_UNIT;
    let params = ModelParams::fault_free(n, 2).unwrap();
    let sim = SimBuilder::new(params)
        .seed(5)
        .protocol(move |_| Balanced::new(n))
        .adversary(HoldAllWithCut { heal })
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    assert!(report.quiescence_releases > 0, "nothing was compelled");
    assert_eq!(
        report.parked_messages, 2,
        "both released chunks should park at the cut"
    );
    assert!(
        report.virtual_time_ticks >= heal,
        "completed at {} < heal {heal} — a compelled release crossed the unhealed cut",
        report.virtual_time_ticks
    );
    assert!(report.outputs[0].is_some() && report.outputs[1].is_some());
}
