//! Integration tests for the link-fault plane: healing partitions,
//! lossy links with bounded retransmission, peer churn, and the
//! record/replay + sharded-pump-degrade guarantees of all three.

use dr_core::{BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage};
use dr_sim::{
    Adversary, ChurnDirective, ChurnMixer, Delivery, LinkDecision, LinkFaultPlan, LossyLinks,
    PartitionDirective, PartitionHealer, RecordingAdversary, ReplayAdversary, RetransmitPolicy,
    RunError, RunReport, SimBuilder, Ticks, TraceEntry, View, TICKS_PER_UNIT,
};
use rand::rngs::StdRng;

/// Message carrying a chunk of bits (offset + payload).
#[derive(Debug, Clone)]
struct Chunk {
    offset: usize,
    bits: BitArray,
}

impl ProtocolMessage for Chunk {
    fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

/// Fault-free balanced download: query your share, broadcast it, wait
/// for everyone else's. Needs every message to eventually arrive, so it
/// terminates iff the link layer is lossless-in-the-limit.
struct Balanced {
    acc: dr_core::PartialArray,
    out: Option<BitArray>,
}

impl Balanced {
    fn new(n: usize) -> Self {
        Balanced {
            acc: dr_core::PartialArray::new(n),
            out: None,
        }
    }
    fn check(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }
}

impl Protocol for Balanced {
    type Msg = Chunk;
    fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
        let n = ctx.input_len();
        let k = ctx.num_peers();
        let per = n.div_ceil(k);
        let me = ctx.me().index();
        let range = (me * per).min(n)..((me + 1) * per).min(n);
        let bits = ctx.query_range(range.clone());
        self.acc.learn_slice(range.start, &bits);
        ctx.broadcast(Chunk {
            offset: range.start,
            bits,
        });
        self.check();
    }
    fn on_message(&mut self, _f: PeerId, m: Chunk, _c: &mut dyn Context<Chunk>) {
        self.acc.learn_slice(m.offset, &m.bits);
        self.check();
    }
    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

/// Unit-latency adversary with a single static cut isolating `group`
/// over `[0, heal)`. Crash-inert.
struct StaticCut {
    group: Vec<PeerId>,
    heal: Ticks,
}

impl<M: ProtocolMessage> Adversary<M> for StaticCut {
    fn on_send(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _m: &M,
        _r: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }
    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }
    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            partitions: vec![PartitionDirective {
                name: "test-cut".into(),
                group: self.group.clone(),
                from_tick: 0,
                heal_tick: self.heal,
            }],
            ..Default::default()
        }
    }
}

/// Unit-latency adversary whose lossy layer drops *every* transmission
/// attempt, under a configurable retry policy. Crash-inert.
struct AlwaysDrop {
    policy: RetransmitPolicy,
}

impl<M: ProtocolMessage> Adversary<M> for AlwaysDrop {
    fn on_send(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _m: &M,
        _r: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }
    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }
    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            retransmit: self.policy,
            ..Default::default()
        }
    }
    fn lossy(&self) -> bool {
        true
    }
    fn on_transmit(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _a: u32,
        _r: &mut StdRng,
    ) -> LinkDecision {
        LinkDecision::Drop
    }
}

fn run_balanced(
    n: usize,
    k: usize,
    seed: u64,
    shards: usize,
    adversary: impl Adversary<Chunk> + 'static,
) -> Result<RunReport, RunError> {
    SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
        .seed(seed)
        .shards(shards)
        .protocol(move |_| Balanced::new(n))
        .adversary(adversary)
        .build()
        .run()
}

/// The five link-fault counters, for replay-equality assertions (they
/// are deliberately excluded from `RunReport::fingerprint`).
fn link_counters(r: &RunReport) -> [u64; 5] {
    [
        r.parked_messages,
        r.link_drops,
        r.retransmissions,
        r.messages_lost,
        r.deferred_deliveries,
    ]
}

/// Messages sent across an active cut are parked — not lost — and
/// re-enter delivery at heal time: the run completes only after the
/// partition heals, with correct outputs everywhere.
#[test]
fn partition_parks_messages_until_heal() {
    let (n, k) = (64, 4);
    let heal = 5 * TICKS_PER_UNIT;
    let report = run_balanced(
        n,
        k,
        9,
        1,
        StaticCut {
            group: vec![PeerId(0)],
            heal,
        },
    )
    .expect("parked messages re-enter delivery at heal");
    // Chunks cross the cut in both directions: peer 0's k-1 outgoing and
    // the k-1 incoming ones.
    assert_eq!(report.parked_messages, 2 * (k as u64 - 1));
    assert!(
        report.virtual_time_ticks >= heal,
        "completed at {} < heal {heal} — a delivery crossed the unhealed cut",
        report.virtual_time_ticks
    );
    for p in 0..k {
        assert!(report.outputs[p].is_some(), "peer {p} incomplete");
    }
}

/// The trace records the parking: one `Park` entry per parked message,
/// each pointing at the heal tick.
#[test]
fn partition_parking_is_traced() {
    let (n, k) = (64, 4);
    let heal = 3 * TICKS_PER_UNIT;
    let report = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
        .seed(9)
        .trace()
        .protocol(move |_| Balanced::new(n))
        .adversary(StaticCut {
            group: vec![PeerId(0)],
            heal,
        })
        .build()
        .run()
        .unwrap();
    let trace = report.trace.as_ref().expect("trace enabled");
    let parks: Vec<_> = trace
        .iter()
        .filter_map(|e| match e {
            TraceEntry::Park { until, .. } => Some(*until),
            _ => None,
        })
        .collect();
    assert_eq!(parks.len() as u64, report.parked_messages);
    assert!(parks.iter().all(|&u| u == heal));
}

/// Exhausted retries under a fail-fast policy surface as the structured
/// `RetriesExhausted` error — with the exact attempt count — instead of
/// a silent loss or an eventual deadlock.
#[test]
fn exhausted_retries_surface_as_structured_error() {
    let policy = RetransmitPolicy {
        backoff_base: TICKS_PER_UNIT / 8,
        max_retries: 2,
        fail_fast: true,
    };
    match run_balanced(64, 4, 3, 1, AlwaysDrop { policy }) {
        Err(RunError::RetriesExhausted { attempts, .. }) => {
            // Original send + max_retries resends, all dropped.
            assert_eq!(attempts, 3);
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Without fail-fast the same exhaustion is a counted loss: the run goes
/// on (and here deadlocks, since Balanced needs every chunk) — the point
/// is that the loss is *reported*, not hidden.
#[test]
fn exhausted_retries_without_fail_fast_deadlock_balanced() {
    let policy = RetransmitPolicy {
        backoff_base: TICKS_PER_UNIT / 8,
        max_retries: 1,
        fail_fast: false,
    };
    match run_balanced(64, 4, 3, 1, AlwaysDrop { policy }) {
        Err(RunError::Deadlock { stuck }) => assert_eq!(stuck.len(), 4),
        other => panic!("expected deadlock from total loss, got {other:?}"),
    }
}

/// Same-seed record → replay is bit-identical for every new adversary,
/// including under the sharded pump (where the link-fault gate degrades
/// window dispatch to the serial path): equal fingerprints and equal
/// link-fault counters.
#[test]
fn link_fault_adversaries_replay_bit_identically() {
    let (n, k) = (96, 6);
    type MakeAdversary = Box<dyn Fn(u64) -> Box<dyn Adversary<Chunk>>>;
    let make: Vec<(&str, MakeAdversary)> = vec![
        (
            "partition_healer",
            Box::new(|seed| Box::new(PartitionHealer::new(6, seed, 3))),
        ),
        (
            "lossy_links",
            Box::new(|seed| Box::new(LossyLinks::new(seed, 300))),
        ),
        (
            "churn_mixer",
            Box::new(|seed| Box::new(ChurnMixer::new(6, seed, 2))),
        ),
    ];
    for (label, factory) in &make {
        for seed in [5u64, 77] {
            let (recorder, handle) = RecordingAdversary::new(factory(seed));
            let sim = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
                .seed(seed)
                .protocol(move |_| Balanced::new(n))
                .adversary(recorder)
                .build();
            let input = sim.input().clone();
            let original = sim.run().unwrap_or_else(|e| panic!("{label}/{seed}: {e}"));
            original
                .verify_downloads(&input)
                .unwrap_or_else(|v| panic!("{label}/{seed}: {v}"));
            let trace = handle.take();
            for shards in [1usize, 4] {
                let replayed =
                    run_balanced(n, k, seed, shards, ReplayAdversary::new(trace.clone()))
                        .unwrap_or_else(|e| panic!("{label}/{seed}/shards={shards}: {e}"));
                assert_eq!(
                    replayed.fingerprint(),
                    original.fingerprint(),
                    "{label}/{seed}/shards={shards}: fingerprint diverged"
                );
                assert_eq!(
                    link_counters(&replayed),
                    link_counters(&original),
                    "{label}/{seed}/shards={shards}: link counters diverged"
                );
            }
        }
    }
}

/// The degrade gate: a link-fault run under the sharded pump is
/// bit-identical to the serial pump (the eligibility gate falls back to
/// serial windows while partitions, churn, or lossiness are active).
#[test]
fn sharded_pump_degrades_bit_identically_under_link_faults() {
    let (n, k) = (128, 8);
    for seed in [2u64, 13] {
        for shards in [2usize, 3, 8] {
            let serial = run_balanced(n, k, seed, 1, PartitionHealer::new(k, seed, 2)).unwrap();
            let sharded = run_balanced(n, k, seed, shards, PartitionHealer::new(k, seed, 2))
                .unwrap_or_else(|e| panic!("seed={seed} shards={shards}: {e}"));
            assert_eq!(serial.fingerprint(), sharded.fingerprint());
            assert_eq!(link_counters(&serial), link_counters(&sharded));

            let serial = run_balanced(n, k, seed, 1, LossyLinks::new(seed, 250)).unwrap();
            let sharded = run_balanced(n, k, seed, shards, LossyLinks::new(seed, 250)).unwrap();
            assert_eq!(serial.fingerprint(), sharded.fingerprint());
            assert_eq!(link_counters(&serial), link_counters(&sharded));

            let serial = run_balanced(n, k, seed, 1, ChurnMixer::new(k, seed, 2)).unwrap();
            let sharded = run_balanced(n, k, seed, shards, ChurnMixer::new(k, seed, 2)).unwrap();
            assert_eq!(serial.fingerprint(), sharded.fingerprint());
            assert_eq!(link_counters(&serial), link_counters(&sharded));
        }
    }
}

/// Churn defers deliveries to the rejoin tick without losing any: the
/// run completes with correct outputs and a nonzero deferral count.
#[test]
fn churn_defers_deliveries_losslessly() {
    let (n, k) = (96, 6);
    struct FixedChurn;
    impl<M: ProtocolMessage> Adversary<M> for FixedChurn {
        fn on_send(
            &mut self,
            _v: &View<'_>,
            _f: PeerId,
            _t: PeerId,
            _m: &M,
            _r: &mut StdRng,
        ) -> Delivery {
            Delivery::After(1)
        }
        fn planned_crashes(&self) -> Option<usize> {
            Some(0)
        }
        fn link_fault_plan(&self) -> LinkFaultPlan {
            LinkFaultPlan {
                churn: vec![ChurnDirective {
                    peer: PeerId(2),
                    // Away from before its start until well after every
                    // other peer has finished: all its events defer.
                    leave: 0,
                    rejoin: 4 * TICKS_PER_UNIT,
                }],
                ..Default::default()
            }
        }
    }
    let report = run_balanced(n, k, 21, 1, FixedChurn).expect("deferred events re-fire at rejoin");
    assert!(report.deferred_deliveries > 0, "nothing deferred");
    assert!(
        report.virtual_time_ticks >= 4 * TICKS_PER_UNIT,
        "completed before the churned peer rejoined"
    );
    for p in 0..k {
        assert!(report.outputs[p].is_some(), "peer {p} incomplete");
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same-seed `LossyLinks` runs replay bit-identically at any drop
    /// rate, serial and sharded alike: fingerprints and link counters
    /// are equal, and (with the generous default retry budget) the
    /// terminating run's downloads verify at any drop rate < 1.0.
    #[test]
    fn lossy_runs_replay_and_verify_at_any_drop_rate(
        seed in any::<u64>(),
        drop_permille in 1u16..950,
    ) {
        let (n, k) = (64, 4);
        let (recorder, handle) =
            RecordingAdversary::new(LossyLinks::new(seed, drop_permille));
        let sim = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
            .seed(seed)
            .protocol(move |_| Balanced::new(n))
            .adversary(recorder)
            .build();
        let input = sim.input().clone();
        // Retransmission makes termination overwhelmingly likely even at
        // heavy loss (LossyLinks caps per-link rates below 1.0 and the
        // default policy retries 12 times); a terminating run must then
        // download correctly — loss surfaces as deadlock, never as a
        // wrong bit.
        let original = sim.run();
        let trace = handle.take();
        match original {
            Ok(report) => {
                prop_assert!(report.verify_downloads(&input).is_ok());
                if drop_permille > 0 {
                    prop_assert!(report.link_drops > 0 || report.retransmissions == 0);
                }
                for shards in [1usize, 4] {
                    let replayed =
                        run_balanced(n, k, seed, shards, ReplayAdversary::new(trace.clone()))
                            .unwrap_or_else(|e| panic!("replay: {e}"));
                    prop_assert_eq!(replayed.fingerprint(), report.fingerprint());
                    prop_assert_eq!(link_counters(&replayed), link_counters(&report));
                }
            }
            Err(RunError::Deadlock { .. }) => {
                // Legal only if something was genuinely abandoned.
                prop_assert!(trace.transmits.iter().filter(|t| !**t).count() > 12);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Partition + churn adversaries terminate and verify at every seed:
    /// parking and deferring never lose a message.
    #[test]
    fn partitions_and_churn_never_lose_messages(seed in any::<u64>()) {
        let (n, k) = (64, 8);
        let report = run_balanced(n, k, seed, 1, PartitionHealer::new(k, seed, 2))
            .unwrap_or_else(|e| panic!("partition: {e}"));
        prop_assert_eq!(report.messages_lost, 0);
        let report = run_balanced(n, k, seed, 1, ChurnMixer::new(k, seed, 2))
            .unwrap_or_else(|e| panic!("churn: {e}"));
        prop_assert_eq!(report.messages_lost, 0);
    }
}
