//! Integration tests of the adversary interface: selective quiescence
//! release, start scheduling, and fault accounting.

use dr_core::{
    BitArray, Context, FaultModel, ModelParams, PartialArray, PeerId, Protocol, ProtocolMessage,
};
use dr_sim::{
    Adversary, Delivery, HeldInfo, Release, SilentAgent, SimBuilder, View, TICKS_PER_UNIT,
};
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct Chunk {
    offset: usize,
    bits: BitArray,
}

impl ProtocolMessage for Chunk {
    fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

/// Minimal fault-free balanced download used as the workload.
struct Balanced {
    acc: PartialArray,
    out: Option<BitArray>,
}

impl Balanced {
    fn new(n: usize) -> Self {
        Balanced {
            acc: PartialArray::new(n),
            out: None,
        }
    }
    fn check(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }
}

impl Protocol for Balanced {
    type Msg = Chunk;
    fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
        let n = ctx.input_len();
        let k = ctx.num_peers();
        let per = n.div_ceil(k);
        let me = ctx.me().index();
        let range = (me * per).min(n)..((me + 1) * per).min(n);
        let bits = ctx.query_range(range.clone());
        self.acc.learn_slice(range.start, &bits);
        ctx.broadcast(Chunk {
            offset: range.start,
            bits,
        });
        self.check();
    }
    fn on_message(&mut self, _f: PeerId, m: Chunk, _c: &mut dyn Context<Chunk>) {
        self.acc.learn_slice(m.offset, &m.bits);
        self.check();
    }
    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

/// Holds everything and, at quiescence, releases exactly one message —
/// the stingiest legal adversary.
struct DripFeed;

impl Adversary<Chunk> for DripFeed {
    fn on_send(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _m: &Chunk,
        _r: &mut StdRng,
    ) -> Delivery {
        Delivery::Hold
    }
    fn on_quiescence(&mut self, _v: &View<'_>, held: &[HeldInfo]) -> Release {
        // Release only the oldest held message.
        let oldest = held
            .iter()
            .enumerate()
            .min_by_key(|(_, h)| h.sent_at)
            .map(|(i, _)| i);
        Release::Some(oldest.into_iter().collect())
    }
}

#[test]
fn drip_feed_release_still_completes() {
    let n = 64;
    let k = 4;
    let params = ModelParams::fault_free(n, k).unwrap();
    let sim = SimBuilder::new(params)
        .seed(1)
        .protocol(move |_| Balanced::new(n))
        .adversary(DripFeed)
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    // k(k−1) = 12 messages, all held: one forced release each.
    assert_eq!(report.quiescence_releases, 12);
}

/// Starts one peer a full unit after everyone else.
struct LateStarter;

impl Adversary<Chunk> for LateStarter {
    fn start_offset(&mut self, peer: PeerId, _rng: &mut StdRng) -> u64 {
        if peer == PeerId(0) {
            10 * TICKS_PER_UNIT
        } else {
            0
        }
    }
    fn on_send(
        &mut self,
        _v: &View<'_>,
        _f: PeerId,
        _t: PeerId,
        _m: &Chunk,
        _r: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }
}

#[test]
fn staggered_starts_delay_completion() {
    let n = 64;
    let k = 4;
    let params = ModelParams::fault_free(n, k).unwrap();
    let sim = SimBuilder::new(params)
        .seed(2)
        .protocol(move |_| Balanced::new(n))
        .adversary(LateStarter)
        .build();
    let input = sim.input().clone();
    let report = sim.run().unwrap();
    report.verify_downloads(&input).unwrap();
    // Nothing finishes before the late starter's chunk exists.
    assert!(report.virtual_time_ticks >= 10 * TICKS_PER_UNIT);
}

#[test]
fn byzantine_queries_do_not_count_toward_q() {
    // A Byzantine peer that queries everything must not inflate the
    // honest Q metric.
    struct GreedyByz;
    impl Protocol for GreedyByz {
        type Msg = Chunk;
        fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
            let n = ctx.input_len();
            let _ = ctx.query_range(0..n);
        }
        fn on_message(&mut self, _f: PeerId, _m: Chunk, _c: &mut dyn Context<Chunk>) {}
        fn output(&self) -> Option<&BitArray> {
            None
        }
    }
    let n = 40;
    let k = 4;
    let params = ModelParams::builder(n, k)
        .faults(FaultModel::Byzantine, 1)
        .build()
        .unwrap();
    // Honest peers use the naive-per-slice trick plus tolerate the silent
    // byzantine: use a protocol that doesn't need the byz peer — each
    // honest peer queries everything itself.
    struct SelfSufficient(Option<BitArray>);
    impl Protocol for SelfSufficient {
        type Msg = Chunk;
        fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
            let n = ctx.input_len();
            self.0 = Some(ctx.query_range(0..n));
        }
        fn on_message(&mut self, _f: PeerId, _m: Chunk, _c: &mut dyn Context<Chunk>) {}
        fn output(&self) -> Option<&BitArray> {
            self.0.as_ref()
        }
    }
    let sim = SimBuilder::new(params)
        .seed(3)
        .protocol(|_| SelfSufficient(None))
        .byzantine(PeerId(2), GreedyByz)
        .build();
    let report = sim.run().unwrap();
    assert_eq!(report.max_nonfaulty_queries, n as u64);
    assert_eq!(report.query_counts[2], n as u64);
    assert!(!report.nonfaulty.contains(PeerId(2)));
}

#[test]
fn silent_byzantine_is_recorded_in_report() {
    let n = 16;
    let params = ModelParams::builder(n, 3)
        .faults(FaultModel::Byzantine, 1)
        .build()
        .unwrap();
    struct Solo(Option<BitArray>);
    impl Protocol for Solo {
        type Msg = Chunk;
        fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
            let n = ctx.input_len();
            self.0 = Some(ctx.query_range(0..n));
        }
        fn on_message(&mut self, _f: PeerId, _m: Chunk, _c: &mut dyn Context<Chunk>) {}
        fn output(&self) -> Option<&BitArray> {
            self.0.as_ref()
        }
    }
    let sim = SimBuilder::new(params)
        .seed(4)
        .protocol(|_| Solo(None))
        .byzantine(PeerId(1), SilentAgent::new())
        .build();
    let report = sim.run().unwrap();
    assert!(report.byzantine.contains(PeerId(1)));
    assert_eq!(report.byzantine.len(), 1);
    assert_eq!(report.nonfaulty.len(), 2);
}
