//! Slab-lifecycle regressions: slot ownership across crashes, the
//! capacity error path, and the adaptive crasher's pre-start behavior.
//!
//! Debug builds end every successful run with the simulator's
//! no-leaked-slots audit (every payload slot must be owned by a queued
//! delivery, a held message, or a pre-start buffer entry), so simply
//! driving these scenarios to completion is itself the regression check.

use dr_core::{BitArray, Context, FaultModel, ModelParams, PeerId, Protocol, ProtocolMessage};
use dr_sim::{
    AdaptiveCrasher, Adversary, ChaosAdversary, ChaosConfig, Delivery, LinkDecision, LinkFaultPlan,
    PartitionDirective, RetransmitPolicy, RunError, SimBuilder, Ticks, TICKS_PER_UNIT,
};
use rand::rngs::StdRng;

/// A fixed-size ping; its only job is to occupy a slab slot.
#[derive(Debug, Clone)]
struct Ping;

impl ProtocolMessage for Ping {
    fn bit_len(&self) -> usize {
        8
    }
}

/// Crash-resilient protocol: every peer downloads the whole input itself
/// and terminates on its start step, after broadcasting a ping to every
/// other peer. No peer depends on any other, so runs complete no matter
/// who crashes — while the pings exercise every slot-lifecycle path
/// (in-flight, held, pre-start-buffered, dropped-at-crash).
struct Solo {
    out: Option<BitArray>,
}

impl Protocol for Solo {
    type Msg = Ping;

    fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
        let n = ctx.input_len();
        let bits = ctx.query_range(0..n);
        ctx.broadcast(Ping);
        self.out = Some(bits);
    }

    fn on_message(&mut self, _from: PeerId, _msg: Ping, _ctx: &mut dyn Context<Ping>) {}

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

/// Starts the victim almost a full unit after everyone else (so pings
/// pile up in its pre-start buffer) and crashes it at its start event —
/// before it ever takes a step. The regression: those buffered pings'
/// slab slots used to leak at the crash.
struct CrashVictimAtStart {
    victim: PeerId,
}

impl<M: ProtocolMessage> Adversary<M> for CrashVictimAtStart {
    fn start_offset(&mut self, peer: PeerId, _rng: &mut StdRng) -> Ticks {
        if peer == self.victim {
            TICKS_PER_UNIT - 1
        } else {
            peer.index() as Ticks
        }
    }

    fn on_send(
        &mut self,
        _view: &dr_sim::View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        _rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(1)
    }

    fn crash_before_event(&mut self, _view: &dr_sim::View<'_>, peer: PeerId) -> bool {
        peer == self.victim
    }
}

/// Fully deterministic benign schedule: indexed start offsets, unit
/// latency, no crashes.
struct DetBenign;

impl<M: ProtocolMessage> Adversary<M> for DetBenign {
    fn start_offset(&mut self, peer: PeerId, _rng: &mut StdRng) -> Ticks {
        peer.index() as Ticks
    }

    fn on_send(
        &mut self,
        _view: &dr_sim::View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        _rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }
}

/// Holds one peer's start late (messages accumulate pre-start) while an
/// inner adversary makes all other decisions.
struct LateStart<A> {
    victim: PeerId,
    inner: A,
}

impl<M: ProtocolMessage, A: Adversary<M>> Adversary<M> for LateStart<A> {
    fn start_offset(&mut self, peer: PeerId, _rng: &mut StdRng) -> Ticks {
        if peer == self.victim {
            TICKS_PER_UNIT - 1
        } else {
            peer.index() as Ticks
        }
    }

    fn on_send(
        &mut self,
        view: &dr_sim::View<'_>,
        from: PeerId,
        to: PeerId,
        msg: &M,
        rng: &mut StdRng,
    ) -> Delivery {
        self.inner.on_send(view, from, to, msg, rng)
    }

    fn on_quiescence(
        &mut self,
        view: &dr_sim::View<'_>,
        held: &[dr_sim::HeldInfo],
    ) -> dr_sim::Release {
        self.inner.on_quiescence(view, held)
    }

    fn planned_crashes(&self) -> Option<usize> {
        self.inner.planned_crashes()
    }

    fn crash_before_event(&mut self, view: &dr_sim::View<'_>, peer: PeerId) -> bool {
        self.inner.crash_before_event(view, peer)
    }

    fn crash_during_send(
        &mut self,
        view: &dr_sim::View<'_>,
        peer: PeerId,
        planned: usize,
    ) -> Option<usize> {
        self.inner.crash_during_send(view, peer, planned)
    }
}

fn crash_params(n: usize, k: usize, b: usize) -> ModelParams {
    ModelParams::builder(n, k)
        .faults(FaultModel::Crash, b)
        .build()
        .unwrap()
}

/// The held-at-start leak: a peer with pings waiting in its pre-start
/// buffer crashes before its first step. Its buffered slots must be
/// freed at the crash — the debug no-leak audit at end of run fails
/// otherwise. Swept across serial and sharded pumps.
#[test]
fn crash_before_start_frees_buffered_slots() {
    let (n, k) = (64, 5);
    let victim = PeerId(k - 1);
    for shards in [1usize, 2, 3] {
        let sim = SimBuilder::new(crash_params(n, k, 1))
            .seed(7)
            .shards(shards)
            .protocol(move |_| Solo { out: None })
            .adversary(CrashVictimAtStart { victim })
            .build();
        let report = sim
            .run()
            .expect("solo peers terminate regardless of the crash");
        assert!(report.crashed.contains(victim), "shards={shards}");
        for p in 0..k - 1 {
            assert!(
                report.outputs[p].is_some(),
                "honest peer {p} missing output (shards={shards})"
            );
        }
        // The victim never ran: it holds no output and took no queries.
        assert!(report.outputs[victim.index()].is_none());
        assert_eq!(report.query_counts[victim.index()], 0);
    }
}

/// Chaos campaign over the full lifecycle: random crashes (including
/// before-start), mid-send cuts, and holds, across seeds and shard
/// counts. Every run must complete and pass the debug no-leak audit.
#[test]
fn chaos_campaign_leaks_no_slots() {
    let (n, k, b) = (64, 8, 3);
    let cfg = ChaosConfig {
        crash_budget: b,
        crash_prob: 0.5,
        cut_prob: 0.25,
        hold_prob: 0.4,
        partial_release_prob: 0.5,
    };
    for seed in 0..12u64 {
        for shards in [1usize, 4] {
            let sim = SimBuilder::new(crash_params(n, k, b))
                .seed(seed)
                .shards(shards)
                .protocol(move |_| Solo { out: None })
                .adversary(ChaosAdversary::new(seed, cfg))
                .build();
            let report = sim
                .run()
                .unwrap_or_else(|e| panic!("seed={seed} shards={shards}: {e}"));
            assert!(report.crashed.len() <= b, "seed={seed} shards={shards}");
        }
    }
}

/// A slab capped at 2 slots cannot hold the 3-ping broadcast batch of
/// the first peer to start: the run must surface the structured
/// overflow error instead of panicking mid-pump.
#[test]
fn tiny_slab_capacity_is_a_structured_error() {
    let sim = SimBuilder::new(ModelParams::fault_free(64, 4).unwrap())
        .seed(3)
        .slab_capacity(2)
        .protocol(move |_| Solo { out: None })
        .adversary(DetBenign)
        .build();
    match sim.run() {
        Err(RunError::SlabOverflow { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected slab overflow, got {other:?}"),
    }
}

/// Per-shard slabs enforce the cap independently: two of peer 0's three
/// pings land in the same shard, overflowing a 1-slot cap.
#[test]
fn sharded_slab_capacity_is_enforced_per_shard() {
    let sim = SimBuilder::new(ModelParams::fault_free(64, 4).unwrap())
        .seed(3)
        .shards(2)
        .slab_capacity(1)
        .protocol(move |_| Solo { out: None })
        .adversary(DetBenign)
        .build();
    match sim.run() {
        Err(RunError::SlabOverflow { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected slab overflow, got {other:?}"),
    }
}

/// An ample capacity is never hit: the same run that overflows at 2
/// slots completes untouched at 16 (slots are recycled after delivery,
/// so the cap bounds concurrent payloads, not total traffic).
#[test]
fn ample_slab_capacity_never_trips() {
    let sim = SimBuilder::new(ModelParams::fault_free(64, 4).unwrap())
        .seed(3)
        .slab_capacity(16)
        .protocol(move |_| Solo { out: None })
        .adversary(DetBenign)
        .build();
    sim.run()
        .expect("16 slots cover 3 concurrent pings per peer");
}

/// Unit-latency lossy adversary that drops every transmission attempt,
/// under a configurable retry policy. Crash-inert.
struct AlwaysDrop {
    policy: RetransmitPolicy,
}

impl<M: ProtocolMessage> Adversary<M> for AlwaysDrop {
    fn on_send(
        &mut self,
        _view: &dr_sim::View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        _rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            retransmit: self.policy,
            ..Default::default()
        }
    }

    fn lossy(&self) -> bool {
        true
    }

    fn on_transmit(
        &mut self,
        _view: &dr_sim::View<'_>,
        _from: PeerId,
        _to: PeerId,
        _attempt: u32,
        _rng: &mut StdRng,
    ) -> LinkDecision {
        LinkDecision::Drop
    }
}

/// Unit-latency adversary with a single static cut isolating peer 0
/// until `heal`. Crash-inert.
struct StaticCut {
    heal: Ticks,
}

impl<M: ProtocolMessage> Adversary<M> for StaticCut {
    fn on_send(
        &mut self,
        _view: &dr_sim::View<'_>,
        _from: PeerId,
        _to: PeerId,
        _msg: &M,
        _rng: &mut StdRng,
    ) -> Delivery {
        Delivery::After(1)
    }

    fn planned_crashes(&self) -> Option<usize> {
        Some(0)
    }

    fn link_fault_plan(&self) -> LinkFaultPlan {
        LinkFaultPlan {
            partitions: vec![PartitionDirective {
                name: "audit-cut".into(),
                group: vec![PeerId(0)],
                from_tick: 0,
                heal_tick: self.heal,
            }],
            ..Default::default()
        }
    }
}

/// Messages abandoned by the retransmission layer free their slab slots
/// at the loss: with a zero-retry policy every ping is dropped exactly
/// once and lost, and the end-of-run audit must find no orphan slots.
#[test]
fn lost_messages_free_their_slots() {
    let (n, k) = (64, 5);
    let sim = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
        .seed(17)
        .protocol(move |_| Solo { out: None })
        .adversary(AlwaysDrop {
            policy: RetransmitPolicy {
                backoff_base: TICKS_PER_UNIT / 8,
                max_retries: 0,
                fail_fast: false,
            },
        })
        .build();
    let report = sim.run().expect("solo peers need no messages");
    let pings = (k * (k - 1)) as u64;
    assert_eq!(report.link_drops, pings);
    assert_eq!(report.messages_lost, pings);
    assert_eq!(report.retransmissions, 0);
    for p in 0..k {
        assert!(report.outputs[p].is_some());
    }
}

/// A run that ends while messages are still parked behind an unhealed
/// cut: the parked payloads' slots are owned by queued deliveries the
/// run never drains, and the audit must account for every one of them.
/// Swept across serial and sharded pumps (link faults degrade the
/// sharded pump to the serial path, but the audit runs either way).
#[test]
fn parked_payloads_survive_an_unhealed_cut_without_leaking() {
    let (n, k) = (64, 5);
    let heal = 100 * TICKS_PER_UNIT;
    for shards in [1usize, 2] {
        let sim = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
            .seed(23)
            .shards(shards)
            .protocol(move |_| Solo { out: None })
            .adversary(StaticCut { heal })
            .build();
        let report = sim.run().expect("solo peers terminate mid-cut");
        // Peer 0's k-1 outgoing pings plus the k-1 inbound ones all park.
        assert_eq!(
            report.parked_messages,
            2 * (k as u64 - 1),
            "shards={shards}"
        );
        assert!(
            report.virtual_time_ticks < heal,
            "solo run should end before the far-future heal (shards={shards})"
        );
    }
}

/// A run that ends with resends still pending: the backed-off
/// retransmit events own their payload slots and carry side-table
/// state; the audit must drain both together.
#[test]
fn pending_retransmissions_do_not_leak_at_termination() {
    let (n, k) = (64, 5);
    let sim = SimBuilder::new(ModelParams::fault_free(n, k).unwrap())
        .seed(29)
        .protocol(move |_| Solo { out: None })
        .adversary(AlwaysDrop {
            policy: RetransmitPolicy::default(),
        })
        .build();
    let report = sim
        .run()
        .expect("solo peers terminate with resends pending");
    assert!(report.link_drops > 0);
    assert!(report.retransmissions > 0);
    assert_eq!(report.messages_lost, 0, "retries never capped out");
}

/// The adaptive crasher must not spend its budget on the held-at-start
/// peer: every crash consultation in this run happens at a start event
/// (event count still zero), so nothing may be crashed — in particular
/// not the victim, whose start fires last against an all-zero frontier.
#[test]
fn adaptive_crasher_skips_held_at_start_peer() {
    let (n, k) = (64, 5);
    let victim = PeerId(k - 1);
    let sim = SimBuilder::new(crash_params(n, k, 1))
        .seed(11)
        .protocol(move |_| Solo { out: None })
        .adversary(LateStart {
            victim,
            inner: AdaptiveCrasher::new(1, 0),
        })
        .build();
    let report = sim.run().expect("nothing crashes, everyone terminates");
    assert!(
        report.crashed.is_empty(),
        "adaptive budget spent on a peer that never ran: {:?}",
        report.crashed
    );
    assert!(report.outputs[victim.index()].is_some());
}
