//! Exhaustive model checks for the window-barrier meter fold.
//!
//! Run with `cargo test -p dr-sim --features loom-model --test loom_fold`.
//! The property under check is the one `crate::slots` documents as
//! load-bearing for bit-identity: every shard's `MeterDelta` is folded
//! into the shared `QueryMeter` **exactly once** per window, no matter how
//! the shard jobs' slot writes interleave. A lost put would drop query
//! charges; a double put would double-count them; both are modelled here.
#![cfg(feature = "loom-model")]

use dr_core::{PeerId, QueryMeter};
use dr_sim::slots::ResultSlots;
use loom::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn every_shard_delta_is_folded_exactly_once() {
    loom::model(|| {
        let num_shards = 2;
        let meter = Arc::new(QueryMeter::new(4));
        let slots = Arc::new(ResultSlots::new(num_shards));
        // Shard 0 owns peers 0 and 2; shard 1 owns peers 1 and 3
        // (peer.index() % num_shards), mirroring the sim's lane layout.
        let handles: Vec<_> = (0..num_shards)
            .map(|s| {
                let meter = Arc::clone(&meter);
                let slots = Arc::clone(&slots);
                loom::thread::spawn(move || {
                    let mut delta = meter.delta(s, num_shards);
                    delta.record(PeerId(s), 0);
                    delta.record(PeerId(s + num_shards), 1);
                    delta.record(PeerId(s), 2);
                    slots.put(s, delta);
                })
            })
            .collect();
        // The coordinator joins the batch (the executor's barrier) and only
        // then drains: the model proves no schedule lets it observe a
        // partial or duplicated set of deltas.
        for h in handles {
            h.join().unwrap();
        }
        let mut drained = slots.take_all();
        assert_eq!(drained.len(), num_shards);
        for slot in &mut drained {
            let mut delta = slot.take().expect("every shard job filled its slot");
            meter.fold(&mut delta);
        }
        // Exact per-peer counts: any lost or double-folded delta breaks this.
        assert_eq!(meter.counts(), vec![2, 2, 1, 1]);
        // A second drain sees nothing — the window cannot re-fold.
        assert!(slots.take_all().iter().all(|s| s.is_none()));
    });
}

#[test]
fn skipped_shards_leave_empty_slots() {
    // Windows where a shard lends no lane (no participating peers) leave
    // its slot empty; the coordinator must skip it without folding.
    loom::model(|| {
        let meter = Arc::new(QueryMeter::new(3));
        let slots = Arc::new(ResultSlots::new(3));
        let worker = {
            let meter = Arc::clone(&meter);
            let slots = Arc::clone(&slots);
            loom::thread::spawn(move || {
                let mut delta = meter.delta(1, 3);
                delta.record(PeerId(1), 7);
                slots.put(1, delta);
            })
        };
        worker.join().unwrap();
        let mut folded = 0;
        for slot in slots.take_all().iter_mut() {
            if let Some(mut delta) = slot.take() {
                meter.fold(&mut delta);
                folded += 1;
            }
        }
        assert_eq!(folded, 1);
        assert_eq!(meter.counts(), vec![0, 1, 0]);
    });
}

#[test]
fn double_put_panics_instead_of_double_counting() {
    // Two jobs claiming the same shard is the bug class the slot guard
    // exists for: the second write must panic loudly ("written twice"),
    // never silently overwrite (which would lose one delta) or append
    // (which would double-fold).
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let slots: ResultSlots<u32> = ResultSlots::new(1);
            slots.put(0, 1);
            slots.put(0, 2);
        });
    }));
    let payload = result.expect_err("second put must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| {
            payload
                .downcast_ref::<&str>()
                .map_or_else(String::new, |s| (*s).to_owned())
        });
    assert!(
        msg.contains("written twice"),
        "unexpected panic message: {msg}"
    );
}
