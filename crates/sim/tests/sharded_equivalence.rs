//! Serial-vs-sharded pump equivalence: same seed, same configuration,
//! any shard count ⇒ bit-identical execution.
//!
//! The sharded pump (per-shard heaps and slabs under a time-window
//! barrier) claims to reproduce the serial pump's global `(at, seq)`
//! event order exactly — so every observable, down to the run
//! fingerprint, must match. These tests check that claim across random
//! parameter/adversary mixes (proptest) and through the recorded-schedule
//! replay path.

use dr_core::{BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage};
use dr_sim::{
    Adversary, ChaosAdversary, ChaosConfig, CrashPlan, HoldUntilQuiescence, RecordingAdversary,
    ReplayAdversary, RunError, RunReport, SimBuilder, StandardAdversary, UniformDelay,
};

/// Message carrying a chunk of bits (offset + payload).
#[derive(Debug, Clone)]
struct Chunk {
    offset: usize,
    bits: BitArray,
}

impl ProtocolMessage for Chunk {
    fn bit_len(&self) -> usize {
        64 + self.bits.len()
    }
}

/// Fault-free balanced download: query your share, broadcast it, wait
/// for everyone else's share. Small and chatty — every peer talks to
/// every peer, so cross-shard traffic is dense.
struct Balanced {
    out: dr_core::PartialArray,
    done: Option<BitArray>,
}

impl Balanced {
    fn new(n: usize) -> Self {
        Balanced {
            out: dr_core::PartialArray::new(n),
            done: None,
        }
    }
    fn check_done(&mut self) {
        if self.done.is_none() && self.out.is_complete() {
            self.done = Some(self.out.clone().into_complete());
        }
    }
}

impl Protocol for Balanced {
    type Msg = Chunk;
    fn on_start(&mut self, ctx: &mut dyn Context<Chunk>) {
        let n = ctx.input_len();
        let k = ctx.num_peers();
        let me = ctx.me().index();
        let per = n.div_ceil(k);
        let range = (me * per).min(n)..((me + 1) * per).min(n);
        let bits = ctx.query_range(range.clone());
        self.out.learn_slice(range.start, &bits);
        ctx.broadcast(Chunk {
            offset: range.start,
            bits,
        });
        self.check_done();
    }
    fn on_message(&mut self, _from: PeerId, msg: Chunk, _ctx: &mut dyn Context<Chunk>) {
        self.out.learn_slice(msg.offset, &msg.bits);
        self.check_done();
    }
    fn output(&self) -> Option<&BitArray> {
        self.done.as_ref()
    }
}

/// The adversary mixes the property sweeps over. Crashing mixes can
/// legitimately deadlock `Balanced`; equivalence then means the *same*
/// error from both pumps.
fn adversary_for(mix: usize, k: usize) -> Box<dyn Adversary<Chunk>> {
    match mix % 4 {
        0 => Box::new(StandardAdversary::benign()),
        1 => Box::new(StandardAdversary::new(
            UniformDelay::new(),
            CrashPlan::before_event([PeerId(k - 1)], 1),
        )),
        2 => Box::new(HoldUntilQuiescence::new(0.4, 1)),
        _ => Box::new(ChaosAdversary::new(mix as u64, ChaosConfig::aggressive(1))),
    }
}

fn run(
    seed: u64,
    n: usize,
    k: usize,
    b: usize,
    mix: usize,
    shards: usize,
) -> Result<u64, RunError> {
    let params = if b == 0 {
        ModelParams::fault_free(n, k).unwrap()
    } else {
        ModelParams::builder(n, k)
            .faults(dr_core::FaultModel::Crash, b)
            .build()
            .unwrap()
    };
    let sim = SimBuilder::new(params)
        .seed(seed)
        .shards(shards)
        .protocol(move |_| Balanced::new(n))
        .adversary(adversary_for(mix, k))
        .build();
    sim.run().map(|r| r.fingerprint())
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (seed, n, k, shard-count, adversary-mix) combination runs
    /// bit-identically on the serial and sharded pumps: equal
    /// fingerprints on success, the very same error otherwise.
    #[test]
    fn serial_and_sharded_runs_are_bit_identical(
        seed in any::<u64>(),
        n in 16usize..512,
        k in 2usize..12,
        shards in 2usize..9,
        mix in 0usize..4,
    ) {
        let b = if mix == 0 || mix == 2 { 0 } else { 1 };
        let serial = run(seed, n, k, b, mix, 1);
        let sharded = run(seed, n, k, b, mix, shards);
        prop_assert_eq!(serial, sharded, "n={} k={} shards={} mix={}", n, k, shards, mix);
    }

    /// More shards than peers (some shards empty) is still identical.
    #[test]
    fn oversharding_is_identical(seed in any::<u64>(), k in 2usize..6) {
        let serial = run(seed, 64, k, 0, 0, 1);
        let oversharded = run(seed, 64, k, 0, 0, k * 3);
        prop_assert_eq!(serial, oversharded);
    }
}

/// A schedule recorded against the serial pump replays bit-identically
/// through the sharded pump: positional decision alignment holds because
/// the sharded pump consults the adversary in the identical sequence.
#[test]
fn recorded_schedule_replays_through_sharded_pump() {
    let (n, k) = (96, 6);
    for seed in [3u64, 1719, 0xBEEF] {
        let (recorder, handle) = RecordingAdversary::new(HoldUntilQuiescence::new(0.5, 2));
        let params = ModelParams::fault_free(n, k).unwrap();
        let sim = SimBuilder::new(params)
            .seed(seed)
            .protocol(move |_| Balanced::new(n))
            .adversary(recorder)
            .build();
        let recorded: RunReport = sim.run().expect("fault-free run terminates");
        let trace = handle.take();
        for shards in [2, 5] {
            let sim = SimBuilder::new(params)
                .seed(seed)
                .shards(shards)
                .protocol(move |_| Balanced::new(n))
                .adversary(ReplayAdversary::new(trace.clone()))
                .build();
            let replayed = sim.run().expect("replay terminates");
            assert_eq!(
                recorded.fingerprint(),
                replayed.fingerprint(),
                "seed={seed} shards={shards}: sharded replay diverged"
            );
        }
    }
}

/// The held-at-start + adaptive-crash regression mix from the chaos
/// campaign, swept across shard counts against the serial fingerprint.
#[test]
fn chaos_mix_matches_across_shard_counts() {
    for seed in [7u64, 42] {
        let serial = run(seed, 256, 8, 2, 3, 1);
        for shards in [2, 3, 4, 7, 8, 16] {
            assert_eq!(
                serial,
                run(seed, 256, 8, 2, 3, shards),
                "seed={seed} shards={shards}"
            );
        }
    }
}
