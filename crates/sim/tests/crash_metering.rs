//! Regression test for mid-send-crash message metering.
//!
//! The model meters communication complexity over *nonfaulty* peers
//! only. A peer cut down by `CrashTrigger::DuringSend` is faulty from
//! the moment of the crash, so the messages it still manages to emit
//! must not count — even though the peer was honest when the batch was
//! planned. An earlier version keyed the meter on the peer's static
//! role and over-counted exactly those messages.

use dr_core::{BitArray, Context, ModelParams, PeerId, Protocol, ProtocolMessage};
use dr_sim::{
    CrashDirective, CrashPlan, CrashTrigger, SimBuilder, StandardAdversary, UniformDelay,
};

#[derive(Debug, Clone)]
struct Ping;

impl ProtocolMessage for Ping {
    fn bit_len(&self) -> usize {
        8
    }
}

/// Broadcasts one ping to every other peer at start, then terminates.
struct Broadcast {
    done: Option<BitArray>,
}

impl Protocol for Broadcast {
    type Msg = Ping;

    fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
        let me = ctx.me();
        for p in 0..ctx.num_peers() {
            if p != me.index() {
                ctx.send(PeerId(p), Ping);
            }
        }
        let n = ctx.input_len();
        self.done = Some(ctx.query_range(0..n));
    }

    fn on_message(&mut self, _from: PeerId, _msg: Ping, _ctx: &mut dyn Context<Ping>) {}

    fn output(&self) -> Option<&BitArray> {
        self.done.as_ref()
    }
}

#[test]
fn messages_of_a_peer_crashed_mid_send_are_not_metered() {
    let k = 3usize;
    let params = ModelParams::builder(8, k)
        .faults(dr_core::FaultModel::Crash, 1)
        .message_bits(1024)
        .build()
        .expect("valid params");
    let mut plan = CrashPlan::none();
    // Peer 0's start is its event 0; keep the full batch so both pings
    // still leave the (now faulty) peer.
    plan.push(CrashDirective {
        peer: PeerId(0),
        trigger: CrashTrigger::DuringSend { event: 0, keep: 2 },
    });
    let report = SimBuilder::new(params)
        .seed(7)
        .protocol(|_| Broadcast { done: None })
        .adversary(StandardAdversary::new(UniformDelay::new(), plan))
        .build()
        .run()
        .expect("run completes");

    assert!(
        report.crashed.contains(PeerId(0)),
        "peer 0 crashed mid-send"
    );
    // Only the two surviving peers' batches count: 2 peers × 2 pings.
    assert_eq!(report.messages_sent, 4, "crashed sender's packets metered");
    assert_eq!(report.message_bits, 4 * 8, "crashed sender's bits metered");
}
