//! End-to-end tests of the `dr` binary.

use std::process::Command;

fn dr(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dr"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = dr(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("dr run"));
}

#[test]
fn run_alg2_reports_metrics() {
    let (ok, stdout, _) = dr(&[
        "run",
        "--protocol",
        "alg2",
        "--n",
        "256",
        "--k",
        "8",
        "--b",
        "4",
        "--crashes",
        "4",
        "--seed",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("Q (max nonfaulty)"));
    assert!(stdout.contains("verified"));
}

#[test]
fn attack_defeats_balanced() {
    let (ok, stdout, _) = dr(&["attack", "--protocol", "balanced", "--n", "64", "--k", "4"]);
    assert!(ok);
    assert!(stdout.contains("FOOLED"));
}

#[test]
fn attack_fails_against_naive() {
    let (ok, stdout, _) = dr(&["attack", "--protocol", "naive", "--n", "64", "--k", "4"]);
    assert!(ok);
    assert!(stdout.contains("SURVIVES"));
}

#[test]
fn explore_passes_on_tiny_instance() {
    let (ok, stdout, _) = dr(&[
        "explore",
        "--protocol",
        "alg2",
        "--n",
        "4",
        "--k",
        "3",
        "--crash",
        "0",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("PASS"));
}

#[test]
fn trace_renders_events() {
    let (ok, stdout, _) = dr(&["trace", "--n", "16", "--k", "3", "--b", "1"]);
    assert!(ok);
    assert!(stdout.contains("START") && stdout.contains("DONE"));
}

#[test]
fn run_with_pump_threads_reports_metrics() {
    let (ok, stdout, _) = dr(&[
        "run",
        "--protocol",
        "committee",
        "--n",
        "128",
        "--k",
        "7",
        "--b",
        "2",
        "--shards",
        "3",
        "--pump-threads",
        "2",
        "--seed",
        "5",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("pump-threads=2"));
    assert!(stdout.contains("verified"));
}

#[test]
fn pump_threads_without_shards_is_rejected() {
    let (ok, _, stderr) = dr(&[
        "run",
        "--protocol",
        "alg2",
        "--n",
        "64",
        "--k",
        "4",
        "--pump-threads",
        "2",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--pump-threads needs --shards"), "{stderr}");
}

#[test]
fn duplicate_pump_threads_flag_is_rejected() {
    let (ok, _, stderr) = dr(&[
        "run",
        "--protocol",
        "alg2",
        "--n",
        "64",
        "--k",
        "4",
        "--shards",
        "2",
        "--pump-threads",
        "2",
        "--pump-threads",
        "4",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--pump-threads given more than once"),
        "{stderr}"
    );
}

#[test]
fn chaos_duplicate_pump_threads_flag_is_rejected() {
    let (ok, _, stderr) = dr(&[
        "chaos",
        "--runs-per-case",
        "1",
        "--pump-threads",
        "2",
        "--pump-threads",
        "2",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--pump-threads given more than once"),
        "{stderr}"
    );
}

#[test]
fn chaos_link_fault_flags_restrict_the_sweep() {
    // All three selectors on, 1 seed per case, no shrinking, repro dir
    // suppressed via a temp path: the sweep covers exactly the 8 size
    // rows × 3 link-fault columns = 24 runs and holds every invariant.
    let out = std::env::temp_dir().join(format!("dr_cli_chaos_{}", std::process::id()));
    let (ok, stdout, stderr) = dr(&[
        "chaos",
        "--runs-per-case",
        "1",
        "--partition",
        "1",
        "--drop-rate",
        "200",
        "--churn",
        "1",
        "--shrink",
        "0",
        "--out",
        out.to_str().unwrap(),
    ]);
    std::fs::remove_dir_all(&out).ok();
    assert!(ok, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("24 cases x 1 runs"), "{stdout}");
    assert!(stdout.contains("all invariants held"), "{stdout}");
}

#[test]
fn chaos_drop_rate_must_be_a_permille() {
    let (ok, _, stderr) = dr(&["chaos", "--runs-per-case", "1", "--drop-rate", "1000"]);
    assert!(!ok);
    assert!(stderr.contains("below 1000"), "{stderr}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let (ok, _, stderr) = dr(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn missing_required_option_fails() {
    let (ok, _, stderr) = dr(&["run", "--protocol", "alg2"]);
    assert!(!ok);
    assert!(stderr.contains("--n is required"));
}
