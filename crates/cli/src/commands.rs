//! Subcommand implementations.

use crate::args::{ArgError, Args};
use dr_bench::runners::{self, ByzMix};
use dr_core::{BitArray, PeerId};
use dr_protocols::lower_bound::{deterministic_attack, AttackOutcome};
use dr_protocols::{
    BalancedDownload, CommitteeDownload, CrashMultiDownload, NaiveDownload, SingleCrashDownload,
};
use dr_sim::explore::ExploreConfig;
use dr_sim::RunReport;

fn print_report(report: &RunReport, n: usize) {
    println!("nonfaulty peers    : {}", report.nonfaulty.len());
    println!("crashed peers      : {}", report.crashed.len());
    println!("byzantine peers    : {}", report.byzantine.len());
    println!(
        "Q (max nonfaulty)  : {} (naive = {n})",
        report.max_nonfaulty_queries
    );
    println!(
        "mean queries       : {:.1}",
        report.mean_nonfaulty_queries()
    );
    println!("messages (packets) : {}", report.messages_sent);
    println!("message bits       : {}", report.message_bits);
    println!(
        "virtual time       : {:.2} units",
        report.virtual_time_units
    );
    println!("events             : {}", report.events);
    println!("verified           : every nonfaulty peer downloaded the exact input");
}

fn parse_mix(s: &str) -> Result<ByzMix, ArgError> {
    match s {
        "none" => Ok(ByzMix::None),
        "silent" => Ok(ByzMix::Silent),
        "mixed" => Ok(ByzMix::Mixed),
        "colluders" => Ok(ByzMix::Colluders),
        other => Err(ArgError(format!("unknown --byz-mix '{other}'"))),
    }
}

/// `dr run` — execute one protocol under the standard adversary.
pub fn run(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.require_num("n")?;
    let k: usize = args.require_num("k")?;
    let b: usize = args.num("b", 0)?;
    let seed: u64 = args.num("seed", 1)?;
    let msg_bits: usize = args.num("msg-bits", 1024)?;
    let protocol = args.get_or("protocol", "alg2");
    let mix = parse_mix(args.get_or("byz-mix", "silent"))?;
    let crashes: usize = args.num("crashes", b)?;
    let shards: usize = args.num("shards", 1)?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    if shards > 1 && matches!(protocol, "naive" | "alg1" | "two-cycle" | "multi-cycle") {
        return Err(ArgError(format!(
            "--shards is not supported for --protocol {protocol} \
             (use balanced, alg2, alg2-early, or committee)"
        )));
    }
    let pump_threads: usize = args.num("pump-threads", 1)?;
    if pump_threads == 0 {
        return Err(ArgError("--pump-threads must be at least 1".into()));
    }
    if pump_threads > 1 && shards <= 1 {
        return Err(ArgError(
            "--pump-threads needs --shards > 1 (parallel dispatch is per shard)".into(),
        ));
    }
    let pump = runners::PumpMode::parallel(shards, pump_threads);

    let report = match protocol {
        "naive" => runners::run_naive(n, k, seed),
        "balanced" => {
            let params = runners::crash_params(n, k, 0, msg_bits);
            let sim = pump
                .apply(
                    dr_sim::SimBuilder::new(params)
                        .seed(seed)
                        .protocol(move |_| BalancedDownload::new(n, k)),
                )
                .build();
            let input = sim.input().clone();
            let r = sim
                .run()
                .map_err(|e| ArgError(format!("balanced download failed: {e}")))?;
            r.verify_downloads(&input)
                .map_err(|e| ArgError(format!("verification failed: {e}")))?;
            r
        }
        "alg1" => runners::run_single_crash(n, k, seed, (crashes > 0).then_some(PeerId(0))),
        "alg2" => runners::run_crash_multi_pumped(n, k, b, crashes, msg_bits, false, seed, pump),
        "alg2-early" => {
            runners::run_crash_multi_pumped(n, k, b, crashes, msg_bits, true, seed, pump)
        }
        "committee" => runners::run_committee_pumped(n, k, b, b, seed, pump),
        "two-cycle" => runners::run_two_cycle(n, k, b, mix, seed),
        "multi-cycle" => runners::run_multi_cycle(n, k, b, mix, seed),
        other => return Err(ArgError(format!("unknown --protocol '{other}'"))),
    };
    println!(
        "protocol {protocol}: n={n} k={k} b={b} seed={seed} shards={shards} pump-threads={pump_threads}"
    );
    print_report(&report, n);
    Ok(())
}

/// `dr trace` — run Algorithm 2 with a full execution trace.
pub fn trace(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.num("n", 64)?;
    let k: usize = args.num("k", 4)?;
    let b: usize = args.num("b", 1)?;
    let seed: u64 = args.num("seed", 1)?;
    let crashes: usize = args.num("crashes", b)?;
    let shards: usize = args.num("shards", 1)?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    let params = runners::crash_params(n, k, b, 1024);
    let victims: Vec<PeerId> = (0..crashes).map(PeerId).collect();
    let sim = dr_sim::SimBuilder::new(params)
        .seed(seed)
        .shards(shards)
        .protocol(move |_| CrashMultiDownload::new(n, k, b))
        .adversary(dr_sim::StandardAdversary::new(
            dr_sim::UniformDelay::new(),
            dr_sim::CrashPlan::before_event(victims, 1),
        ))
        .trace()
        .build();
    let input = sim.input().clone();
    let report = sim
        .run()
        .map_err(|e| ArgError(format!("run failed: {e}")))?;
    report
        .verify_downloads(&input)
        .map_err(|e| ArgError(format!("verification failed: {e}")))?;
    print!(
        "{}",
        dr_sim::render_trace(report.trace.as_ref().expect("trace enabled"))
    );
    println!(
        "
Q = {}, T = {:.2} units",
        report.max_nonfaulty_queries, report.virtual_time_units
    );
    Ok(())
}

/// `dr attack` — run the Theorem 3.1 attack against a protocol.
pub fn attack(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.require_num("n")?;
    let k: usize = args.require_num("k")?;
    let seed: u64 = args.num("seed", 1)?;
    let target = PeerId(args.num("target", 0usize)?);
    let protocol = args.get_or("protocol", "balanced");
    let outcome = match protocol {
        "naive" => deterministic_attack(n, k, target, |_| NaiveDownload::new(), seed),
        "balanced" => {
            deterministic_attack(n, k, target, move |_| BalancedDownload::new(n, k), seed)
        }
        "alg1" => deterministic_attack(n, k, target, move |_| SingleCrashDownload::new(n, k), seed),
        "committee" => {
            let t: usize = args.num("t", (k - 1) / 4)?;
            deterministic_attack(n, k, target, move |_| CommitteeDownload::new(n, k, t), seed)
        }
        other => return Err(ArgError(format!("unknown --protocol '{other}'"))),
    };
    println!("Theorem 3.1 attack on '{protocol}' (n={n}, k={k}, coalition=k-1):");
    match outcome {
        AttackOutcome::FullyQueried { queries } => {
            println!("  SURVIVES — target queried all {queries} bits (paid Q = n)");
        }
        AttackOutcome::Violated {
            flipped_index,
            queries,
        } => {
            println!(
                "  FOOLED — target queried only {queries}/{n} bits and output a wrong \
                 value at index {flipped_index}"
            );
        }
        AttackOutcome::NoTermination { flipped_index } => {
            println!("  HUNG — target never terminated (flipped bit {flipped_index})");
        }
    }
    Ok(())
}

/// `dr oracle` — run both ODC pipelines and compare.
pub fn oracle(args: &Args) -> Result<(), ArgError> {
    use dr_oracle::{run_baseline, run_download_based, DownloadEngine, OracleConfig};
    let config = OracleConfig {
        nodes: args.num("nodes", 64usize)?,
        byz_nodes: args.num("byz-nodes", 6usize)?,
        honest_sources: args.num("sources", 5usize)?,
        corrupt_sources: args.num("corrupt", 2usize)?,
        cells: args.num("cells", 64usize)?,
        truth_base: args.num("truth", 1_000_000u64)?,
        spread: args.num("spread", 200u64)?,
        seed: args.num("seed", 1u64)?,
    };
    let engine = match args.get_or("engine", "two-cycle") {
        "two-cycle" => DownloadEngine::TwoCycle,
        "crash" => DownloadEngine::CrashMulti,
        other => return Err(ArgError(format!("unknown --engine '{other}'"))),
    };
    let baseline = run_baseline(&config, config.sources());
    let download = run_download_based(&config, engine);
    println!(
        "oracle: {} nodes ({} byz), {} sources ({} corrupt), {} cells",
        config.nodes,
        config.byz_nodes,
        config.sources(),
        config.corrupt_sources,
        config.cells
    );
    println!(
        "baseline : total {} bits, max/node {} bits, ODD ok = {}",
        baseline.total_read_bits,
        baseline.max_node_read_bits,
        baseline.odd_satisfied()
    );
    println!(
        "download : total {} bits, max/node {} bits, ODD ok = {}",
        download.total_read_bits,
        download.max_node_read_bits,
        download.odd_satisfied()
    );
    println!(
        "saving   : {:.1}x total, {:.1}x per node",
        baseline.total_read_bits as f64 / download.total_read_bits.max(1) as f64,
        baseline.max_node_read_bits as f64 / download.max_node_read_bits.max(1) as f64
    );
    println!(
        "upstream : baseline {} bits, download {} bits (admission-plane amortized)",
        baseline.upstream_read_bits, download.upstream_read_bits
    );
    Ok(())
}

/// `dr serve-bench` — drive the multi-client front door and report
/// requests/s, latency percentiles, amortized Q, and coalesce rate.
pub fn serve_bench(args: &Args) -> Result<(), ArgError> {
    use dr_bench::experiments::serve;
    let base = match args.get_or("grid", "full") {
        "full" => serve::ServeGrid::full(),
        "smoke" => serve::ServeGrid::smoke(),
        other => return Err(ArgError(format!("unknown --grid '{other}'"))),
    };
    let grid = serve::ServeGrid {
        clients: args.num("clients", base.clients)?,
        requests_per_client: args.num("requests", base.requests_per_client)?,
        range_bits: args.num("range-bits", base.range_bits)?,
        hot_ranges: args.num("hot", base.hot_ranges)?,
        peers: args.num("peers", base.peers)?,
        throttle_us: args.num("throttle-us", base.throttle_us)?,
    };
    if grid.clients == 0 || grid.requests_per_client == 0 || grid.peers == 0 {
        return Err(ArgError(
            "--clients, --requests, and --peers must be positive".into(),
        ));
    }
    if !grid.range_bits.is_multiple_of(64) || grid.range_bits == 0 {
        return Err(ArgError(
            "--range-bits must be a positive multiple of 64".into(),
        ));
    }
    if grid.hot_ranges == 0 || grid.hot_ranges > grid.requests_per_client {
        return Err(ArgError("--hot must be in 1..=requests".into()));
    }
    let records = serve::run_grid(&grid);
    for table in serve::tables(&records) {
        print!("{table}");
    }
    serve::gate(&records);
    if let Some(dir) = args.get("json") {
        let path = serve::write_json(std::path::Path::new(dir), &records)
            .map_err(|e| ArgError(format!("failed to write metrics to {dir}: {e}")))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// `dr explore` — exhaustively enumerate message schedules.
pub fn explore(args: &Args) -> Result<(), ArgError> {
    let n: usize = args.require_num("n")?;
    let k: usize = args.require_num("k")?;
    let seed: u64 = args.num("seed", 0)?;
    let max_schedules: u64 = args.num("max-schedules", 100_000)?;
    let crashed: Vec<PeerId> = match args.get("crash") {
        Some(v) => vec![PeerId(v.parse::<usize>().map_err(|_| {
            ArgError(format!("--crash expects a peer index, got '{v}'"))
        })?)],
        None => Vec::new(),
    };
    let mut rng_input = BitArray::zeros(n);
    for i in 0..n {
        if (i * 13 + seed as usize).is_multiple_of(3) {
            rng_input.set(i, true);
        }
    }
    let config = ExploreConfig {
        max_schedules,
        seed,
        ..ExploreConfig::new(k, rng_input).with_crashed(crashed)
    };
    let protocol = args.get_or("protocol", "alg2");
    let report = match protocol {
        "alg1" => explore_with(&config, move |_| SingleCrashDownload::new(n, k)),
        "alg2" => {
            let b = config.crashed.len().max(1).min(k - 1);
            explore_with(&config, move |_| CrashMultiDownload::new(n, k, b))
        }
        other => return Err(ArgError(format!("unknown --protocol '{other}'"))),
    };
    println!(
        "explored {} schedules ({})",
        report.schedules,
        if report.exhaustive {
            "exhaustive"
        } else {
            "budget hit"
        }
    );
    match report.counterexample {
        None => println!("verdict: PASS — every explored schedule satisfies Download"),
        Some(ce) => println!(
            "verdict: FAIL — {} (choices {:?})",
            ce.violation, ce.choices
        ),
    }
    Ok(())
}

fn explore_with<M, P, F>(config: &ExploreConfig, factory: F) -> dr_sim::explore::ExploreReport
where
    M: dr_core::ProtocolMessage,
    P: dr_sim::Agent<M> + 'static,
    F: Fn(PeerId) -> P,
{
    dr_sim::explore::explore(config, factory)
}

/// `dr chaos` — run a chaos campaign (seeds × adversaries × protocols
/// with invariant checks and failing-schedule shrinking), or replay a
/// `chaos_repro_*.json` reproducer with `--replay`.
pub fn chaos(args: &Args) -> Result<(), ArgError> {
    use dr_bench::chaos::{load_repro, replay_repro, run_campaign, Campaign};
    if let Some(threads) = args.get("threads") {
        let n: usize = args.require_num("threads")?;
        if n == 0 {
            return Err(ArgError(format!(
                "--threads must be positive, got '{threads}'"
            )));
        }
        dr_bench::par::set_threads(n);
    }
    if let Some(path) = args.get("replay") {
        let repro = load_repro(std::path::Path::new(path)).map_err(ArgError)?;
        println!(
            "replaying {} seed={} — recorded violation: {}",
            repro.case, repro.seed, repro.violation
        );
        let outcome = replay_repro(&repro);
        return match outcome.violation {
            Some(v) if outcome.fingerprint == repro.fingerprint => {
                println!("reproduced: {v} (fingerprint matches)");
                Ok(())
            }
            Some(v) => Err(ArgError(format!(
                "violation reproduced ({v}) but the report fingerprint differs"
            ))),
            None => Err(ArgError("did NOT reproduce — run completed cleanly".into())),
        };
    }
    let mut campaign = Campaign::new(
        args.num("runs-per-case", 18u64)?,
        args.num("seed", 0xc0ffee)?,
    );
    // Link-fault plane selectors: any of --partition / --drop-rate /
    // --churn restricts the campaign to the chosen link-fault adversary
    // columns (the fault-plane smoke path); --drop-rate additionally
    // tunes the per-link loss rate of the LossyLinks cases.
    use dr_bench::chaos::AdversaryKind;
    let want_partition = args.num("partition", 0u8)? != 0;
    let want_churn = args.num("churn", 0u8)? != 0;
    let drop_rate: Option<u16> = match args.get("drop-rate") {
        Some(_) => Some(args.require_num("drop-rate")?),
        None => None,
    };
    if let Some(rate) = drop_rate {
        if rate >= 1000 {
            return Err(ArgError(format!(
                "--drop-rate is a permille loss rate and must be below 1000, got {rate}"
            )));
        }
    }
    if want_partition || want_churn || drop_rate.is_some() {
        campaign.cases.retain(|c| match c.adversary {
            AdversaryKind::PartitionHealer => want_partition,
            AdversaryKind::LossyLinks => drop_rate.is_some(),
            AdversaryKind::ChurnMixer => want_churn,
            _ => false,
        });
        if let Some(rate) = drop_rate {
            for c in &mut campaign.cases {
                if matches!(c.adversary, AdversaryKind::LossyLinks) {
                    c.drop_permille = rate;
                }
            }
        }
    }
    campaign.shrink = args.num("shrink", 1u8)? != 0;
    campaign.out_dir = Some(args.get_or("out", "chaos_repros").into());
    let pump_threads: usize = args.num("pump-threads", 1)?;
    if pump_threads == 0 {
        return Err(ArgError("--pump-threads must be at least 1".into()));
    }
    // Shards default to the pump thread count: one lane per thread.
    let shards: usize = args.num("shards", pump_threads.max(1))?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    if pump_threads > 1 && shards <= 1 {
        return Err(ArgError(
            "--pump-threads needs --shards > 1 (parallel dispatch is per shard)".into(),
        ));
    }
    campaign.pump = dr_bench::runners::PumpMode::parallel(shards, pump_threads);
    println!(
        "chaos campaign: {} cases x {} runs (base seed {:#x})",
        campaign.cases.len(),
        campaign.runs_per_case,
        campaign.base_seed
    );
    let report = run_campaign(&campaign);
    println!(
        "{} runs: {} violation(s)",
        report.total_runs,
        report.violations.len()
    );
    for v in &report.violations {
        println!(
            "  VIOLATION {} seed={}: {}",
            v.repro.case, v.repro.seed, v.repro.violation
        );
        if let Some(path) = &v.path {
            println!("    repro written to {}", path.display());
        }
    }
    if report.violations.is_empty() {
        println!("all invariants held");
        Ok(())
    } else {
        Err(ArgError(format!(
            "{} invariant violation(s) found",
            report.violations.len()
        )))
    }
}

/// `dr lint` — run the determinism static-analysis pass over `crates/`
/// without remembering the `cargo run -p dr-lint` incantation.
pub fn lint(args: &Args) -> Result<(), ArgError> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| ArgError(format!("cannot read current dir: {e}")))?;
            dr_lint::find_workspace_root(&cwd).ok_or_else(|| {
                ArgError(format!(
                    "no workspace root (Cargo.toml + crates/) above {}; pass --root",
                    cwd.display()
                ))
            })?
        }
    };
    let report =
        dr_lint::lint_workspace(&root).map_err(|e| ArgError(format!("lint walk failed: {e}")))?;
    match args.get_or("format", "text") {
        "json" => print!("{}", dr_lint::render_json(&report)),
        "text" => print!("{}", dr_lint::render_text(&report)),
        other => return Err(ArgError(format!("unknown --format '{other}' (text|json)"))),
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(ArgError(format!(
            "{} determinism diagnostic(s) — see report above",
            report.diagnostics.len()
        )))
    }
}

/// `dr experiments` — regenerate the paper's tables. `--json <dir>`
/// additionally writes one `BENCH_<experiment>.json` metrics file per
/// experiment; `--threads`/`--trials` control the parallel trial runner.
pub fn experiments(args: &Args) -> Result<(), ArgError> {
    use dr_bench::experiments as exp;
    use dr_bench::metrics::MetricsSink;
    if let Some(threads) = args.get("threads") {
        let n: usize = args.require_num("threads")?;
        if n == 0 {
            return Err(ArgError(format!(
                "--threads must be positive, got '{threads}'"
            )));
        }
        dr_bench::par::set_threads(n);
    }
    if let Some(trials) = args.get("trials") {
        let n: u64 = args.require_num("trials")?;
        if n == 0 {
            return Err(ArgError(format!(
                "--trials must be positive, got '{trials}'"
            )));
        }
        dr_bench::metrics::set_trials(n);
    }
    let mut sink = MetricsSink::new();
    let tables = match args.get("only") {
        None => exp::run_all_metered(&mut sink),
        Some("table1") => exp::table1::run_metered(&mut sink),
        Some("crash_single") => exp::crash_single::run_metered(&mut sink),
        Some("crash_scaling") => exp::crash_scaling::run_metered(&mut sink),
        Some("byz_committee") => exp::byz_committee::run_metered(&mut sink),
        Some("two_cycle") => exp::two_cycle::run_metered(&mut sink),
        Some("multi_cycle") => exp::multi_cycle::run_metered(&mut sink),
        Some("lower_bound") => exp::lower_bound::run_metered(&mut sink),
        Some("oracle") => exp::oracle::run_metered(&mut sink),
        Some("msg_size") => exp::msg_size::run_metered(&mut sink),
        Some("strategy_ablation") => exp::strategy_ablation::run_metered(&mut sink),
        Some("synchrony") => exp::synchrony::run_metered(&mut sink),
        Some("exhaustive") => exp::exhaustive::run_metered(&mut sink),
        Some("hotpath") => exp::hotpath::run_metered(&mut sink),
        Some("sim_scaling") => exp::sim_scaling::run_metered(&mut sink),
        Some("suite") => exp::suite::run_metered(&mut sink),
        // The serving benchmark writes its own BENCH_serve.json schema;
        // use `dr serve-bench --json <dir>` for that. Here it only prints.
        Some("serve") => exp::serve::run(),
        Some(other) => return Err(ArgError(format!("unknown experiment '{other}'"))),
    };
    for table in tables {
        print!("{table}");
    }
    if let Some(dir) = args.get("json") {
        let paths = sink
            .write_json(std::path::Path::new(dir))
            .map_err(|e| ArgError(format!("failed to write metrics to {dir}: {e}")))?;
        for p in paths {
            eprintln!("wrote {}", p.display());
        }
    }
    Ok(())
}
