//! `dr` — command-line driver for DR Download simulations, attacks, oracle
//! pipelines, and exhaustive schedule exploration.
//!
//! ```text
//! dr run     --protocol <naive|balanced|alg1|alg2|alg2-early|committee|two-cycle|multi-cycle>
//!            --n <bits> --k <peers> [--b <faults>] [--crashes <count>]
//!            [--byz-mix <none|silent|mixed|colluders>] [--seed <u64>] [--msg-bits <a>]
//!            [--shards <count>] [--pump-threads <n>]
//! dr attack  --n <bits> --k <peers> --protocol <naive|balanced|committee> [--seed <u64>]
//! dr oracle  [--nodes <k>] [--byz-nodes <b>] [--sources <m>] [--corrupt <c>] [--cells <n>]
//!            [--engine <two-cycle|crash>] [--seed <u64>]
//! dr explore --protocol <alg1|alg2> --n <bits> --k <peers> [--crash <victim>]
//!            [--max-schedules <count>] [--seed <u64>]
//! dr chaos   [--runs-per-case <n>] [--seed <u64>] [--out <dir>] [--threads <n>]
//!            [--shards <count>] [--pump-threads <n>]
//!            [--partition <0|1>] [--drop-rate <permille>] [--churn <0|1>]
//!            [--shrink <0|1>] [--replay <chaos_repro_*.json>]
//! dr lint    [--root <dir>] [--format <text|json>]
//! dr experiments [--only <name>] [--json <dir>] [--threads <n>] [--trials <n>]
//! dr serve-bench [--grid <full|smoke>] [--clients <n>] [--requests <n>]
//!            [--range-bits <bits>] [--hot <n>] [--peers <k>] [--throttle-us <µs>]
//!            [--json <dir>]
//! ```

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
dr — Distributed Download from an External Data Source

USAGE:
  dr run     --protocol <naive|balanced|alg1|alg2|alg2-early|committee|two-cycle|multi-cycle>
             --n <bits> --k <peers> [--b <faults>] [--crashes <count>]
             [--byz-mix <none|silent|mixed|colluders>] [--seed <u64>] [--msg-bits <a>]
             [--shards <count>]          sharded event pump (balanced/alg2/alg2-early/committee)
             [--pump-threads <n>]        parallel window dispatch (needs --shards > 1)
  dr attack  --n <bits> --k <peers> --protocol <naive|balanced|committee> [--seed <u64>]
  dr oracle  [--nodes <k>] [--byz-nodes <b>] [--sources <m>] [--corrupt <c>] [--cells <n>]
             [--engine <two-cycle|crash>] [--seed <u64>]
  dr explore --protocol <alg1|alg2> --n <bits> --k <peers> [--crash <victim>]
             [--max-schedules <count>] [--seed <u64>]
  dr trace   [--n <bits>] [--k <peers>] [--b <faults>] [--crashes <count>] [--seed <u64>]
             [--shards <count>]
  dr chaos   [--runs-per-case <n>] [--seed <u64>] [--out <dir>] [--threads <n>]
             [--shards <count>] [--pump-threads <n>]   parallel window dispatch in the sweep
             [--partition <0|1>] [--drop-rate <permille>] [--churn <0|1>]
                                 restrict the sweep to the selected link-fault columns
             [--shrink <0|1>] [--replay <chaos_repro_*.json>]
  dr lint    [--root <dir>] [--format <text|json>]     determinism static analysis
  dr experiments [--json <dir>] [--threads <n>] [--trials <n>]
                 [--only <table1|crash_single|crash_scaling|byz_committee|two_cycle|
                  multi_cycle|lower_bound|oracle|msg_size|strategy_ablation|
                  synchrony|exhaustive|hotpath|sim_scaling|suite|serve>]
  dr serve-bench [--grid <full|smoke>] [--clients <n>] [--requests <n>]
                 [--range-bits <bits>] [--hot <n>] [--peers <k>] [--throttle-us <µs>]
                 [--json <dir>]       multi-client front-door load benchmark
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "run" => commands::run(&args),
        "trace" => commands::trace(&args),
        "attack" => commands::attack(&args),
        "oracle" => commands::oracle(&args),
        "explore" => commands::explore(&args),
        "chaos" => commands::chaos(&args),
        "lint" => commands::lint(&args),
        "experiments" => commands::experiments(&args),
        "serve-bench" => commands::serve_bench(&args),
        other => Err(args::ArgError(format!("unknown subcommand '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
