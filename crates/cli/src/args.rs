//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    // dr-lint: allow(unordered-collections): tooling tier; looked up by key, never iterated, and duplicates are rejected at parse time
    options: HashMap<String, String>,
}

/// A parse or validation failure, printed to stderr with usage.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv[1..]`: first token is the subcommand, the rest must
    /// be `--key value` pairs. Repeating an option is an error — silent
    /// last-write-wins would make `--seed 1 ... --seed 2` ambiguous.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut it = argv.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand".into()))?;
        let mut options = HashMap::new();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(ArgError(format!("expected --option, got '{key}'")));
            };
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
            if options.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("--{name} given more than once")));
            }
        }
        Ok(Args { command, options })
    }

    /// Returns a string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Returns a string option or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Returns a numeric option or a default.
    ///
    /// # Errors
    ///
    /// Fails if present but unparsable.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'"))),
        }
    }

    /// Returns a required numeric option.
    ///
    /// # Errors
    ///
    /// Fails if absent or unparsable.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self
            .get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key} expects a number, got '{v}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("run --n 128 --protocol alg2").unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.num::<usize>("n", 0).unwrap(), 128);
        assert_eq!(a.get("protocol"), Some("alg2"));
        assert_eq!(a.get_or("seed", "7"), "7");
    }

    #[test]
    fn rejects_dangling_option() {
        assert!(parse("run --n").is_err());
        assert!(parse("run n 1").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_duplicate_option() {
        let err = parse("run --seed 1 --n 8 --seed 2").unwrap_err();
        assert!(err.0.contains("--seed"), "{err}");
        assert!(err.0.contains("more than once"), "{err}");
        // Same flag twice with the same value is still ambiguous intent.
        assert!(parse("run --n 8 --n 8").is_err());
    }

    #[test]
    fn require_num_enforces_presence() {
        let a = parse("run --n x").unwrap();
        assert!(a.require_num::<usize>("n").is_err());
        assert!(a.require_num::<usize>("k").is_err());
    }
}
