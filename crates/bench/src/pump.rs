//! Event-pump replicas of the simulator hot loop, before and after the
//! zero-copy overhaul.
//!
//! The overhaul (shared-buffer `BitArray`, slab-backed event queue,
//! incremental stop check) replaced the old hot-loop shape in place, so
//! the old code no longer exists to benchmark against. These pumps
//! reproduce both shapes faithfully enough to price the difference: each
//! round, every one of `k` peers broadcasts one `n`-bit payload to the
//! other `k − 1`, and the loop then drains the queue, checking the stop
//! condition per event — exactly the committee workload's traffic
//! pattern (every peer floods its segment, then its full reconstruction).
//!
//! * [`pump_old`]: heap nodes carry the payload inline, each recipient
//!   gets a deep (word-for-word) copy, and the stop check is an O(k)
//!   scan — the pre-overhaul shape.
//! * [`pump_new`]: payloads live in a slot-indexed slab behind `u32`
//!   handles, each recipient's copy is an O(1) shared-buffer clone, and
//!   the stop check is a counter comparison — the shape `dr_sim` now
//!   uses.
//!
//! Both return the number of events processed plus a payload checksum,
//! so the payload reads cannot be optimized away and the two variants
//! can be asserted to agree.

use dr_core::BitArray;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What a pump run processed (for per-second rates and cross-checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpStats {
    /// Delivery events drained from the queue.
    pub events: u64,
    /// XOR/rotate digest over delivered payload words.
    pub checksum: u64,
}

/// Events one pump run generates for the given shape.
pub fn pump_events(k: usize, rounds: usize) -> u64 {
    (k * (k - 1) * rounds) as u64
}

fn fold(checksum: u64, word: u64, seq: u64) -> u64 {
    checksum.rotate_left(7) ^ word.wrapping_add(seq)
}

struct OldNode {
    at: u64,
    seq: u64,
    payload: BitArray,
}

impl PartialEq for OldNode {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for OldNode {}
impl PartialOrd for OldNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OldNode {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The pre-overhaul hot-loop shape: payloads inline in heap nodes, one
/// deep copy per recipient, O(k) stop scan per processed event.
pub fn pump_old(n: usize, k: usize, rounds: usize) -> PumpStats {
    let payload = BitArray::random(n, &mut StdRng::seed_from_u64(0x5ca1e));
    let terminated = vec![false; k];
    let mut heap: BinaryHeap<OldNode> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stats = PumpStats {
        events: 0,
        checksum: 0,
    };
    for round in 0..rounds {
        for _sender in 0..k {
            for _to in 0..k - 1 {
                heap.push(OldNode {
                    at: round as u64,
                    seq,
                    // One full word-for-word copy per recipient, as the
                    // pre-copy-on-write `Clone` did.
                    payload: payload.deep_clone(),
                });
                seq += 1;
            }
        }
        while let Some(node) = heap.pop() {
            if terminated.iter().all(|t| *t) {
                break;
            }
            stats.checksum = fold(stats.checksum, node.payload.word(0), node.seq);
            stats.events += 1;
        }
    }
    stats
}

/// The post-overhaul hot-loop shape: `u32` slot handles in heap nodes,
/// shared-buffer payload clones, counter-based stop check.
pub fn pump_new(n: usize, k: usize, rounds: usize) -> PumpStats {
    #[derive(PartialEq, Eq)]
    struct Node {
        at: u64,
        seq: u64,
        slot: u32,
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    let payload = BitArray::random(n, &mut StdRng::seed_from_u64(0x5ca1e));
    let pending_nonfaulty = k;
    let mut slots: Vec<Option<BitArray>> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stats = PumpStats {
        events: 0,
        checksum: 0,
    };
    for round in 0..rounds {
        for _sender in 0..k {
            for _to in 0..k - 1 {
                // O(1) shared-buffer clone into the slab.
                let msg = payload.clone();
                let slot = match free.pop() {
                    Some(s) => {
                        slots[s as usize] = Some(msg);
                        s
                    }
                    None => {
                        slots.push(Some(msg));
                        (slots.len() - 1) as u32
                    }
                };
                heap.push(Node {
                    at: round as u64,
                    seq,
                    slot,
                });
                seq += 1;
            }
        }
        while let Some(node) = heap.pop() {
            if pending_nonfaulty == 0 {
                break;
            }
            let msg = slots[node.slot as usize].take().expect("live slot");
            free.push(node.slot);
            stats.checksum = fold(stats.checksum, msg.word(0), node.seq);
            stats.events += 1;
        }
    }
    stats
}

/// The sharded hot-loop shape `dr_sim` uses for multi-shard runs:
/// per-recipient-shard heaps and slabs, drained through a time-window
/// barrier. All events of the minimum tick are popped from every shard
/// at once, merged by a single `sort_unstable` on the global sequence
/// number, and served through a cursor — trading one large heap's
/// per-pop sift cost for small per-shard heaps plus an almost-sorted
/// merge. Pop order (and hence the checksum) is identical to
/// [`pump_new`] by construction.
pub fn pump_sharded(n: usize, k: usize, rounds: usize, shards: usize) -> PumpStats {
    #[derive(PartialEq, Eq)]
    struct Node {
        at: u64,
        seq: u64,
        to: u32,
        slot: u32,
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    struct Shard {
        heap: BinaryHeap<Node>,
        slots: Vec<Option<BitArray>>,
        free: Vec<u32>,
    }

    let payload = BitArray::random(n, &mut StdRng::seed_from_u64(0x5ca1e));
    let pending_nonfaulty = k;
    let mut shard_state: Vec<Shard> = (0..shards)
        .map(|_| Shard {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
        })
        .collect();
    let mut window: Vec<Node> = Vec::new();
    let mut cursor = 0usize;
    let mut seq = 0u64;
    let mut stats = PumpStats {
        events: 0,
        checksum: 0,
    };
    for round in 0..rounds {
        for sender in 0..k {
            for j in 0..k - 1 {
                let to = (sender + j + 1) % k;
                let shard = &mut shard_state[to % shards];
                let msg = payload.clone();
                let slot = match shard.free.pop() {
                    Some(s) => {
                        shard.slots[s as usize] = Some(msg);
                        s
                    }
                    None => {
                        shard.slots.push(Some(msg));
                        (shard.slots.len() - 1) as u32
                    }
                };
                shard.heap.push(Node {
                    at: round as u64,
                    seq,
                    to: to as u32,
                    slot,
                });
                seq += 1;
            }
        }
        loop {
            // Serve the current window first, then refill it with every
            // shard's events at the minimum tick, merged by seq.
            if cursor >= window.len() {
                window.clear();
                cursor = 0;
                let Some(min_at) = shard_state
                    .iter()
                    .filter_map(|s| s.heap.peek().map(|node| node.at))
                    .min()
                else {
                    break;
                };
                for shard in &mut shard_state {
                    while shard.heap.peek().is_some_and(|node| node.at == min_at) {
                        window.push(shard.heap.pop().expect("peeked"));
                    }
                }
                window.sort_unstable_by_key(|node| node.seq);
            }
            if pending_nonfaulty == 0 {
                break;
            }
            let node = &window[cursor];
            cursor += 1;
            let shard = &mut shard_state[node.to as usize % shards];
            let msg = shard.slots[node.slot as usize].take().expect("live slot");
            shard.free.push(node.slot);
            stats.checksum = fold(stats.checksum, msg.word(0), node.seq);
            stats.events += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pumps_process_identical_events_and_checksums() {
        let old = pump_old(512, 6, 3);
        let new = pump_new(512, 6, 3);
        assert_eq!(old, new);
        assert_eq!(old.events, pump_events(6, 3));
        for shards in [1, 2, 4, 7] {
            assert_eq!(pump_sharded(512, 6, 3, shards), new, "shards={shards}");
        }
    }
}
