//! Small-sample statistics for multi-trial experiments.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Stats {
    /// Computes statistics over a sample.
    pub fn of(xs: &[f64]) -> Stats {
        let count = xs.len();
        if count == 0 {
            return Stats {
                count: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Stats {
            count,
            mean,
            std: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Runs `f` over `trials` consecutive seeds and summarizes the metric.
    pub fn sample<R: FnMut(u64) -> f64>(trials: u64, base_seed: u64, mut f: R) -> Stats {
        let xs: Vec<f64> = (0..trials).map(|t| f(base_seed + t)).collect();
        Stats::of(&xs)
    }

    /// Parallel [`Stats::sample`]: fans the trials across the worker pool.
    ///
    /// Trial `t` always runs with seed `base_seed + t` and results are
    /// aggregated in trial order, so the returned statistics are
    /// bit-identical to the serial path for any thread count.
    pub fn sample_par<R>(trials: u64, base_seed: u64, f: R) -> Stats
    where
        R: Fn(u64) -> f64 + Send + Sync + 'static,
    {
        Stats::sample_streaming(trials, base_seed, f, |_, _| ())
    }

    /// [`Stats::sample_par`] that additionally streams each trial's
    /// metric to `on_trial(trial_index, value)` in completion order as
    /// it finishes (e.g. for progress reporting), while the returned
    /// statistics are still folded in trial order — bit-identical to
    /// the serial path for any thread count.
    pub fn sample_streaming<R, C>(trials: u64, base_seed: u64, f: R, mut on_trial: C) -> Stats
    where
        R: Fn(u64) -> f64 + Send + Sync + 'static,
        C: FnMut(u64, f64),
    {
        let xs = crate::plane::run_indexed_streaming(
            trials as usize,
            move |t| f(base_seed + t as u64),
            |t, &x| on_trial(t as u64, x),
        );
        Stats::of(&xs)
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1} ± {:.1} [{:.0}, {:.0}] (n={})",
            self.mean, self.std, self.min, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Stats::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(Stats::of(&[]).count, 0);
        let single = Stats::of(&[7.0]);
        assert_eq!(single.std, 0.0);
        assert_eq!(single.mean, 7.0);
    }

    #[test]
    fn sample_runs_consecutive_seeds() {
        let s = Stats::sample(5, 10, |seed| seed as f64);
        assert_eq!(s.mean, 12.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 14.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Stats::of(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("2.0") && text.contains("n=2"));
    }
}
