//! Machine-readable experiment metrics.
//!
//! Every experiment, in addition to its human-readable [`Table`]s,
//! produces one [`ExperimentRecord`] per table row (or representative
//! configuration). Records accumulate in a [`MetricsSink`]; passing
//! `--json <dir>` to `all_experiments`, any `fig_*` binary, or
//! `dr-download experiments` writes them out as one
//! `BENCH_<experiment>.json` file per experiment, each holding a JSON
//! array of records.
//!
//! [`Table`]: crate::Table

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dr_sim::RunReport;
use serde::{Deserialize, Serialize};

use crate::par;
use crate::stats::Stats;

/// Name of the environment variable consulted by [`trials`].
pub const TRIALS_ENV: &str = "DR_BENCH_TRIALS";

/// Process-wide override set by [`set_trials`]; 0 means "not set".
// dr-lint: allow(sync-primitive-outside-facade): process-global config cell; statics cannot hold loom primitives (each model execution needs fresh objects)
static TRIALS_OVERRIDE: AtomicU64 = AtomicU64::new(0);

/// Overrides the per-row trial count for the whole process (e.g. from a
/// `--trials` CLI flag). Passing 0 clears the override.
pub fn set_trials(n: u64) {
    // dr-lint: allow(atomic-ordering): lone config cell, no other memory depends on it
    TRIALS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Trials each multi-trial experiment row runs: the [`set_trials`]
/// override, else `DR_BENCH_TRIALS`, else 3.
pub fn trials() -> u64 {
    // dr-lint: allow(atomic-ordering): lone config cell, no other memory depends on it
    let explicit = TRIALS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var(TRIALS_ENV) {
        if let Ok(n) = v.trim().parse::<u64>() {
            if n > 0 {
                return n;
            }
        }
    }
    3
}

/// Model parameters a record was measured at. Fields that do not apply
/// to an experiment (e.g. `a` outside the message-size sweep) are 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Input length in bits.
    pub n: usize,
    /// Number of peers.
    pub k: usize,
    /// Fault budget (crash or Byzantine, per the experiment).
    pub b: usize,
    /// Message size bound in bits (0 where unbounded / not applicable).
    pub a: usize,
}

impl ExperimentParams {
    /// Parameters with only `n` and `k` set.
    pub fn nk(n: usize, k: usize) -> Self {
        ExperimentParams { n, k, b: 0, a: 0 }
    }

    /// Parameters with `n`, `k`, and the fault budget set.
    pub fn nkb(n: usize, k: usize, b: usize) -> Self {
        ExperimentParams { n, k, b, a: 0 }
    }

    /// Sets the message-size bound.
    pub fn with_a(mut self, a: usize) -> Self {
        self.a = a;
        self
    }
}

/// The four cost metrics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    /// Worst-case oracle queries over nonfaulty peers (the paper's Q).
    pub queries: f64,
    /// Virtual time units until quiescence.
    pub time_units: f64,
    /// Total peer-to-peer messages metered.
    pub messages: f64,
    /// Total metered message payload bits.
    pub message_bits: f64,
}

impl From<&RunReport> for TrialMetrics {
    fn from(report: &RunReport) -> Self {
        TrialMetrics {
            queries: report.max_nonfaulty_queries as f64,
            time_units: report.virtual_time_units,
            messages: report.messages_sent as f64,
            message_bits: report.message_bits as f64,
        }
    }
}

/// Per-metric statistics over the trials of one experiment row.
#[derive(Debug, Clone, PartialEq)]
pub struct Measured {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Statistics of [`TrialMetrics::queries`].
    pub queries: Stats,
    /// Statistics of [`TrialMetrics::time_units`].
    pub time_units: Stats,
    /// Statistics of [`TrialMetrics::messages`].
    pub messages: Stats,
    /// Statistics of [`TrialMetrics::message_bits`].
    pub message_bits: Stats,
    /// Wall-clock seconds the whole fan-out took.
    pub wall_clock_secs: f64,
}

impl Measured {
    /// A single-run measurement (rows whose scenario is inherently one
    /// execution, e.g. paired same-seed comparisons).
    pub fn one(report: &RunReport, wall_clock_secs: f64) -> Measured {
        Measured::of(&[TrialMetrics::from(report)], wall_clock_secs)
    }

    /// A measurement carrying only query statistics (experiments whose
    /// harness does not expose the other meters, e.g. the lower-bound
    /// attacks); the remaining metrics are zero-count stats.
    pub fn queries_only(queries: &[f64], wall_clock_secs: f64) -> Measured {
        Measured {
            trials: queries.len() as u64,
            queries: Stats::of(queries),
            time_units: Stats::of(&[]),
            messages: Stats::of(&[]),
            message_bits: Stats::of(&[]),
            wall_clock_secs,
        }
    }

    /// Aggregates per-trial metrics (in trial order) plus a wall-clock.
    pub fn of(trials: &[TrialMetrics], wall_clock_secs: f64) -> Measured {
        let col = |f: fn(&TrialMetrics) -> f64| -> Stats {
            Stats::of(&trials.iter().map(f).collect::<Vec<_>>())
        };
        Measured {
            trials: trials.len() as u64,
            queries: col(|t| t.queries),
            time_units: col(|t| t.time_units),
            messages: col(|t| t.messages),
            message_bits: col(|t| t.message_bits),
            wall_clock_secs,
        }
    }
}

/// Runs `trials` simulations with seeds `base_seed + t` across the
/// worker pool and aggregates all four metrics.
///
/// Trial seeds and aggregation order are identical to a serial loop,
/// so the statistics are bit-identical for any thread count.
pub fn measure_par<R>(trials: u64, base_seed: u64, run: R) -> Measured
where
    R: Fn(u64) -> RunReport + Send + Sync + 'static,
{
    let started = Instant::now();
    let metrics = par::run_indexed(trials as usize, move |t| {
        TrialMetrics::from(&run(base_seed + t as u64))
    });
    Measured::of(&metrics, started.elapsed().as_secs_f64())
}

/// One serialized row of experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment key (e.g. `"fig_multi_cycle"`); names the JSON file.
    pub experiment: String,
    /// Row label within the experiment (protocol, sweep point, …).
    pub label: String,
    /// Model parameters of the row.
    pub params: ExperimentParams,
    /// Number of trials aggregated.
    pub trials: u64,
    /// Oracle-query statistics (paper's Q, worst nonfaulty peer).
    pub queries: Stats,
    /// Virtual-time statistics.
    pub time_units: Stats,
    /// Message-count statistics.
    pub messages: Stats,
    /// Message-bit statistics.
    pub message_bits: Stats,
    /// Wall-clock seconds spent producing this record.
    pub wall_clock_secs: f64,
}

impl ExperimentRecord {
    /// Builds a record from a measurement.
    pub fn new(
        experiment: &str,
        label: impl Into<String>,
        params: ExperimentParams,
        measured: Measured,
    ) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            label: label.into(),
            params,
            trials: measured.trials,
            queries: measured.queries,
            time_units: measured.time_units,
            messages: measured.messages,
            message_bits: measured.message_bits,
            wall_clock_secs: measured.wall_clock_secs,
        }
    }
}

/// Collects [`ExperimentRecord`]s across experiments and writes them to
/// `BENCH_<experiment>.json` files.
#[derive(Debug, Default)]
pub struct MetricsSink {
    records: Vec<ExperimentRecord>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: ExperimentRecord) {
        self.records.push(record);
    }

    /// All records collected so far, in insertion order.
    pub fn records(&self) -> &[ExperimentRecord] {
        &self.records
    }

    /// Writes one `BENCH_<experiment>.json` per distinct experiment key
    /// into `dir` (created if missing). Each file holds a JSON array of
    /// that experiment's records in insertion order. Returns the paths
    /// written.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut experiments: Vec<&str> = Vec::new();
        for r in &self.records {
            if !experiments.contains(&r.experiment.as_str()) {
                experiments.push(&r.experiment);
            }
        }
        let mut paths = Vec::new();
        for exp in experiments {
            let rows: Vec<&ExperimentRecord> = self
                .records
                .iter()
                .filter(|r| r.experiment == exp)
                .collect();
            let path = dir.join(format!("BENCH_{exp}.json"));
            let mut text = serde::json::to_string_pretty(&rows);
            text.push('\n');
            std::fs::write(&path, text)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ExperimentRecord {
        let trials = [
            TrialMetrics {
                queries: 3.0,
                time_units: 10.0,
                messages: 40.0,
                message_bits: 640.0,
            },
            TrialMetrics {
                queries: 5.0,
                time_units: 12.0,
                messages: 44.0,
                message_bits: 704.0,
            },
        ];
        ExperimentRecord::new(
            "fig_demo",
            "alg2 β=0.5",
            ExperimentParams::nkb(8192, 64, 16).with_a(1024),
            Measured::of(&trials, 0.25),
        )
    }

    #[test]
    fn record_aggregates_all_metrics() {
        let r = sample_record();
        assert_eq!(r.trials, 2);
        assert_eq!(r.queries.mean, 4.0);
        assert_eq!(r.messages.max, 44.0);
        assert_eq!(r.message_bits.min, 640.0);
        assert_eq!(r.time_units.count, 2);
    }

    #[test]
    fn sink_groups_files_by_experiment() {
        let mut sink = MetricsSink::new();
        sink.push(sample_record());
        let mut other = sample_record();
        other.experiment = "fig_other".to_string();
        sink.push(other);
        sink.push(sample_record());
        let dir = std::env::temp_dir().join("dr_bench_metrics_test");
        let paths = sink.write_json(&dir).expect("write metrics");
        assert_eq!(paths.len(), 2);
        assert!(paths[0].ends_with("BENCH_fig_demo.json"));
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        let rows: Vec<ExperimentRecord> = serde::json::from_str(&text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], sample_record());
        std::fs::remove_dir_all(&dir).ok();
    }
}
