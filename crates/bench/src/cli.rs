//! Shared command-line handling for the experiment binaries.
//!
//! Every binary (`all_experiments`, `table1`, `fig_*`) accepts:
//!
//! - `--json <dir>` — write one `BENCH_<experiment>.json` per experiment
//!   into `<dir>` (created if missing);
//! - `--threads <n>` — worker threads for trial fan-outs (overrides the
//!   `DR_BENCH_THREADS` environment variable);
//! - `--trials <n>` — trials per multi-trial row (overrides
//!   `DR_BENCH_TRIALS`; default 3).

use std::path::PathBuf;

use crate::metrics::{self, MetricsSink};
use crate::par;

/// Options parsed from an experiment binary's argv.
#[derive(Debug, Default)]
pub struct BinOptions {
    /// Directory for `BENCH_<experiment>.json` files, from `--json`.
    pub json_dir: Option<PathBuf>,
}

impl BinOptions {
    /// Parses argv, applying `--threads`/`--trials` overrides as a side
    /// effect. Prints usage and exits on `--help` or unknown arguments.
    pub fn parse(bin: &str) -> BinOptions {
        let mut opts = BinOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => {
                    let dir = args.next().unwrap_or_else(|| usage_exit(bin, 2));
                    opts.json_dir = Some(PathBuf::from(dir));
                }
                "--threads" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage_exit(bin, 2));
                    par::set_threads(n);
                }
                "--trials" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage_exit(bin, 2));
                    metrics::set_trials(n);
                }
                "--help" | "-h" => usage_exit(bin, 0),
                _ => {
                    eprintln!("unknown argument: {arg}");
                    usage_exit(bin, 2)
                }
            }
        }
        opts
    }

    /// Writes the sink's records if `--json` was given, reporting the
    /// files written. Exits nonzero if the write fails.
    pub fn finish(&self, sink: &MetricsSink) {
        let Some(dir) = &self.json_dir else {
            return;
        };
        match sink.write_json(dir) {
            Ok(paths) => {
                for p in paths {
                    eprintln!("wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("failed to write metrics to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
}

fn usage_exit<T>(bin: &str, code: i32) -> T {
    eprintln!(
        "usage: {bin} [--json <dir>] [--threads <n>] [--trials <n>]\n\
         \n\
         --json <dir>     write BENCH_<experiment>.json metrics into <dir>\n\
         --threads <n>    worker threads for trial fan-outs (env {})\n\
         --trials <n>     trials per multi-trial row (env {}; default 3)",
        par::THREADS_ENV,
        metrics::TRIALS_ENV,
    );
    std::process::exit(code)
}
