//! Chaos campaigns: randomized fault-injection sweeps with invariant
//! checks, deterministic reproduction, and failing-run minimization.
//!
//! A campaign sweeps seeds × adversary configurations × protocols. Every
//! run records the adversary's full decision schedule (via
//! [`RecordingAdversary`]) and checks four invariants afterwards:
//!
//! 1. **termination** — the run completed (no deadlock, no event-limit);
//! 2. **download** — [`RunReport::verify_downloads`] holds for every
//!    nonfaulty peer;
//! 3. **fault budget** — `|crashed| + |byzantine| ≤ b`;
//! 4. **cost envelope** — `Q` and `T` stay inside the protocol's
//!    paper-bound [`CostEnvelope`].
//!
//! On a violation the schedule is shrunk — delta-debugging the crash
//! directives, mid-send cuts, held sends, partial releases, partition
//! and churn directives, and dropped transmissions down to a
//! 1-minimal failing [`ScheduleTrace`] — and written to
//! `chaos_repro_<hash>.json`, which [`replay_repro`] plays back
//! bit-identically.
//!
//! [`FragileDownload`] is an intentionally broken protocol (an
//! "impatient" zero-filling fallback) used to exercise the
//! violation → shrink → replay pipeline in tests and CI.

use crate::par;
use crate::runners::PumpMode;
use dr_core::{
    BitArray, Context, FaultModel, ModelParams, PartialArray, PeerId, Protocol, ProtocolMessage,
};
use dr_protocols::{
    CommitteeDownload, CostEnvelope, CrashMultiDownload, MultiCycleDownload, SingleCrashDownload,
    TwoCycleDownload,
};
use dr_sim::{AdaptiveCrasher, ChaosAdversary, ChaosConfig, HoldUntilQuiescence};
use dr_sim::{
    Agent, ChurnMixer, LossyLinks, PartitionHealer, RecordingAdversary, ReplayAdversary,
    ScheduleTrace, SilentAgent, SimBuilder, TraceHandle,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Protocol under test in a chaos case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Algorithm 1 (`crash::single`), crash model.
    CrashSingle,
    /// Algorithm 2 (`crash::multi`), crash model.
    CrashMulti,
    /// Deterministic committee protocol, Byzantine model.
    Committee,
    /// Randomized 2-cycle protocol, Byzantine model.
    TwoCycle,
    /// Randomized multi-cycle protocol, Byzantine model.
    MultiCycle,
    /// Intentionally broken fixture ([`FragileDownload`]) — not part of
    /// [`default_cases`], used to exercise the shrink/replay pipeline.
    Fragile,
}

impl ProtocolKind {
    /// Short stable label used in reports and filenames.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::CrashSingle => "crash_single",
            ProtocolKind::CrashMulti => "crash_multi",
            ProtocolKind::Committee => "committee",
            ProtocolKind::TwoCycle => "two_cycle",
            ProtocolKind::MultiCycle => "multi_cycle",
            ProtocolKind::Fragile => "fragile",
        }
    }

    fn fault_model(self) -> FaultModel {
        match self {
            ProtocolKind::CrashSingle | ProtocolKind::CrashMulti | ProtocolKind::Fragile => {
                FaultModel::Crash
            }
            _ => FaultModel::Byzantine,
        }
    }
}

/// Adversary configuration of a chaos case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// [`AdaptiveCrasher`] targeting the most advanced peers.
    AdaptiveCrash,
    /// [`HoldUntilQuiescence`] with heavy holds and stingy releases.
    HoldHeavy,
    /// [`ChaosAdversary`] with [`ChaosConfig::mild`].
    ChaosMild,
    /// [`ChaosAdversary`] with [`ChaosConfig::aggressive`].
    ChaosAggressive,
    /// [`PartitionHealer`]: two successive seed-derived cuts that heal on
    /// schedule, parking (not losing) every message across them.
    PartitionHealer,
    /// [`LossyLinks`]: seeded per-link drop rates with bounded
    /// backed-off retransmission.
    LossyLinks,
    /// [`ChurnMixer`]: peers leave and rejoin; deliveries addressed to an
    /// absent peer defer to its rejoin tick.
    ChurnMixer,
}

impl AdversaryKind {
    /// Short stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AdversaryKind::AdaptiveCrash => "adaptive_crash",
            AdversaryKind::HoldHeavy => "hold_heavy",
            AdversaryKind::ChaosMild => "chaos_mild",
            AdversaryKind::ChaosAggressive => "chaos_aggressive",
            AdversaryKind::PartitionHealer => "partition_healer",
            AdversaryKind::LossyLinks => "lossy_links",
            AdversaryKind::ChurnMixer => "churn_mixer",
        }
    }
}

/// One (protocol, adversary, size) combination of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Adversary configuration.
    pub adversary: AdversaryKind,
    /// Input length.
    pub n: usize,
    /// Number of peers.
    pub k: usize,
    /// Fault budget.
    pub b: usize,
    /// Nominal per-link drop rate in permille for [`LossyLinks`] cases;
    /// `0` means the campaign default (150‰). Ignored by other
    /// adversaries.
    pub drop_permille: u16,
}

impl CaseConfig {
    /// Heal horizon (time units) of [`PartitionHealer`] cases.
    const HEAL_UNITS: u64 = 3;

    /// The effective [`LossyLinks`] drop rate: the field, or the campaign
    /// default of 150‰ when unset.
    pub fn effective_drop_permille(&self) -> u16 {
        if self.drop_permille == 0 {
            150
        } else {
            self.drop_permille
        }
    }

    /// Churners of a [`ChurnMixer`] case: one per eight peers, at least
    /// one.
    pub fn churner_count(&self) -> usize {
        (self.k / 8).max(1)
    }
    /// Byzantine peers actually instantiated (silent): for
    /// Byzantine-model protocols, half the budget rounded up; the rest of
    /// `b` is left to the adversary as crash budget, exercising the joint
    /// fault budget. Crash-model protocols corrupt no one.
    pub fn byz_count(&self) -> usize {
        match self.protocol.fault_model() {
            FaultModel::Byzantine => self.b.div_ceil(2),
            _ => 0,
        }
    }

    /// Crash budget handed to the adversary (`b − byz_count`).
    pub fn crash_budget(&self) -> usize {
        self.b - self.byz_count()
    }

    fn params(&self) -> ModelParams {
        ModelParams::builder(self.n, self.k)
            .faults(self.protocol.fault_model(), self.b)
            .build()
            .expect("valid chaos case params")
    }

    fn envelope(&self) -> CostEnvelope {
        let mut env = self.base_envelope();
        // Link faults stretch T through no fault of the protocol; widen
        // the envelope by the adversary's worst-case link delay. Q is
        // untouched — parking, resending, and deferring never change what
        // a peer queries.
        match self.adversary {
            // Every delivery can park until the last heal
            // (`HEAL_UNITS`); one extra unit of margin for the in-flight
            // latency added on top of the heal tick.
            AdversaryKind::PartitionHealer => env.t_link_slack += Self::HEAL_UNITS as f64 + 1.0,
            // A resend adds at most one backoff clamp (2 units) plus one
            // latency unit to the critical path.
            AdversaryKind::LossyLinks => env.t_per_retry += 3.0,
            // Deliveries defer until the last rejoin tick: leave windows
            // stagger by half a unit per churner, plus a rejoin span of
            // up to two units and margin.
            AdversaryKind::ChurnMixer => {
                env.t_link_slack += 0.5 * self.churner_count() as f64 + 3.0;
            }
            _ => {}
        }
        env
    }

    fn base_envelope(&self) -> CostEnvelope {
        match self.protocol {
            ProtocolKind::CrashSingle => SingleCrashDownload::cost_envelope(self.n, self.k),
            ProtocolKind::CrashMulti => CrashMultiDownload::cost_envelope(self.n, self.k, self.b),
            ProtocolKind::Committee => CommitteeDownload::cost_envelope(self.n, self.k, self.b),
            ProtocolKind::TwoCycle => TwoCycleDownload::cost_envelope(self.n, self.k, self.b),
            ProtocolKind::MultiCycle => MultiCycleDownload::cost_envelope(self.n, self.k, self.b),
            // The fixture is judged on download correctness only; keep
            // its envelope out of the way.
            ProtocolKind::Fragile => CostEnvelope {
                q_max: 4 * self.n as u64 + 64,
                t_base: 1e9,
                t_per_release: 8.0,
                t_per_retry: 0.0,
                t_link_slack: 0.0,
            },
        }
    }
}

impl fmt::Display for CaseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} n={} k={} b={}",
            self.protocol.label(),
            self.adversary.label(),
            self.n,
            self.k,
            self.b
        )
    }
}

/// Where a run's adversary decisions come from.
pub enum AdvSource<'a> {
    /// The case's own [`AdversaryKind`], seeded by the run seed.
    Fresh,
    /// Replay of a recorded (possibly shrink-edited) schedule.
    Replay(&'a ScheduleTrace),
}

/// Outcome of one chaos run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// First invariant violated, if any (human-readable).
    pub violation: Option<String>,
    /// The schedule actually executed (re-recorded on replay, so it is
    /// normalized to the trajectory that really happened).
    pub trace: ScheduleTrace,
    /// [`dr_sim::RunReport::fingerprint`] of the completed run; `None`
    /// when the run ended in a [`dr_sim::RunError`].
    pub fingerprint: Option<u64>,
}

fn make_recorded<M: ProtocolMessage>(
    case: &CaseConfig,
    seed: u64,
    adv: &AdvSource<'_>,
) -> (RecordingAdversary<M>, TraceHandle) {
    let budget = case.crash_budget();
    match adv {
        AdvSource::Replay(trace) => {
            RecordingAdversary::new(ReplayAdversary::new((*trace).clone()).with_fault_cap(case.b))
        }
        AdvSource::Fresh => match case.adversary {
            AdversaryKind::AdaptiveCrash => {
                RecordingAdversary::new(AdaptiveCrasher::new(budget, 1))
            }
            AdversaryKind::HoldHeavy => RecordingAdversary::new(HoldUntilQuiescence::new(0.3, 2)),
            AdversaryKind::ChaosMild => {
                RecordingAdversary::new(ChaosAdversary::new(seed, ChaosConfig::mild(budget)))
            }
            AdversaryKind::ChaosAggressive => {
                RecordingAdversary::new(ChaosAdversary::new(seed, ChaosConfig::aggressive(budget)))
            }
            AdversaryKind::PartitionHealer => {
                RecordingAdversary::new(PartitionHealer::new(case.k, seed, CaseConfig::HEAL_UNITS))
            }
            AdversaryKind::LossyLinks => {
                RecordingAdversary::new(LossyLinks::new(seed, case.effective_drop_permille()))
            }
            AdversaryKind::ChurnMixer => {
                RecordingAdversary::new(ChurnMixer::new(case.k, seed, case.churner_count()))
            }
        },
    }
}

fn execute<M, P, F>(
    case: &CaseConfig,
    seed: u64,
    adv: AdvSource<'_>,
    pump: PumpMode,
    factory: F,
) -> RunOutcome
where
    M: ProtocolMessage,
    P: Agent<M> + 'static,
    F: FnMut(PeerId) -> P + Send + 'static,
{
    let (recorder, handle) = make_recorded::<M>(case, seed, &adv);
    let mut builder = pump.apply(
        SimBuilder::new(case.params())
            .seed(seed)
            .protocol(factory)
            .adversary(recorder),
    );
    for i in 0..case.byz_count() {
        builder = builder.byzantine(PeerId(i), SilentAgent::new());
    }
    let sim = builder.build();
    let input = sim.input().clone();
    let violation;
    let fingerprint;
    match sim.run() {
        Ok(report) => {
            fingerprint = Some(report.fingerprint());
            let faults = report.crashed.len() + report.byzantine.len();
            violation = if let Err(v) = report.verify_downloads(&input) {
                Some(format!("download: {v}"))
            } else if faults > case.b {
                Some(format!("fault budget: {faults} faults exceed b={}", case.b))
            } else if let Err(v) = case.envelope().check(&report) {
                Some(format!("envelope: {v}"))
            } else {
                None
            };
        }
        Err(e) => {
            fingerprint = None;
            violation = Some(format!("termination: {e}"));
        }
    }
    RunOutcome {
        violation,
        trace: handle.take(),
        fingerprint,
    }
}

/// Runs one chaos case with the given seed and adversary source,
/// recording the schedule and checking all invariants.
pub fn run_case(case: &CaseConfig, seed: u64, adv: AdvSource<'_>) -> RunOutcome {
    run_case_pumped(case, seed, adv, PumpMode::serial())
}

/// [`run_case`] under an arbitrary [`PumpMode`]. Every pump mode
/// records the same schedule and fingerprint (crash-capable adversaries
/// degrade window dispatch to serial automatically).
pub fn run_case_pumped(
    case: &CaseConfig,
    seed: u64,
    adv: AdvSource<'_>,
    pump: PumpMode,
) -> RunOutcome {
    let (n, k, b) = (case.n, case.k, case.b);
    match case.protocol {
        ProtocolKind::CrashSingle => execute(case, seed, adv, pump, move |_| {
            SingleCrashDownload::new(n, k)
        }),
        ProtocolKind::CrashMulti => execute(case, seed, adv, pump, move |_| {
            CrashMultiDownload::new(n, k, b)
        }),
        ProtocolKind::Committee => execute(case, seed, adv, pump, move |_| {
            CommitteeDownload::new(n, k, b)
        }),
        ProtocolKind::TwoCycle => execute(case, seed, adv, pump, move |_| {
            TwoCycleDownload::new(n, k, b)
        }),
        ProtocolKind::MultiCycle => execute(case, seed, adv, pump, move |_| {
            MultiCycleDownload::new(n, k, b)
        }),
        ProtocolKind::Fragile => {
            execute(case, seed, adv, pump, move |_| FragileDownload::new(n, k))
        }
    }
}

/// The standard campaign matrix: every real protocol (crash single/multi,
/// committee, 2-cycle and multi-cycle — the latter two in both naive-plan
/// and sampled-plan sizes) crossed with every adversary kind.
pub fn default_cases() -> Vec<CaseConfig> {
    let mut cases = Vec::new();
    let sizes: &[(ProtocolKind, usize, usize, usize)] = &[
        (ProtocolKind::CrashSingle, 96, 6, 1),
        (ProtocolKind::CrashMulti, 128, 8, 3),
        // A wider crash-multi row so churn (one churner per eight peers)
        // and the seeded partition splits see a second peer-count regime.
        (ProtocolKind::CrashMulti, 192, 12, 2),
        (ProtocolKind::Committee, 64, 7, 2),
        // Small sizes collapse the cycle protocols to the naive plan…
        (ProtocolKind::TwoCycle, 64, 8, 1),
        (ProtocolKind::MultiCycle, 64, 8, 1),
        // …so also include sampled-plan sizes (k − 2b ≥ 4τ).
        (ProtocolKind::TwoCycle, 512, 64, 2),
        (ProtocolKind::MultiCycle, 512, 64, 2),
    ];
    let advs = [
        AdversaryKind::AdaptiveCrash,
        AdversaryKind::HoldHeavy,
        AdversaryKind::ChaosMild,
        AdversaryKind::ChaosAggressive,
        AdversaryKind::PartitionHealer,
        AdversaryKind::LossyLinks,
        AdversaryKind::ChurnMixer,
    ];
    for &(protocol, n, k, b) in sizes {
        for &adversary in &advs {
            cases.push(CaseConfig {
                protocol,
                adversary,
                n,
                k,
                b,
                drop_permille: 0,
            });
        }
    }
    cases
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Cases to sweep (see [`default_cases`]).
    pub cases: Vec<CaseConfig>,
    /// Seeded runs per case.
    pub runs_per_case: u64,
    /// Base seed; run `i` of the flattened sweep uses `base_seed + i`.
    pub base_seed: u64,
    /// Shrink failing schedules to minimal reproducers.
    pub shrink: bool,
    /// Directory for `chaos_repro_<hash>.json` files (written only for
    /// violations; created if missing). `None` disables writing.
    pub out_dir: Option<PathBuf>,
    /// Event-pump mode the sweep runs under. Fingerprints are identical
    /// for every mode, so reproducers transfer between modes; shrinking
    /// and replay always run on the serial pump.
    pub pump: PumpMode,
}

impl Campaign {
    /// The default campaign: [`default_cases`] with `runs_per_case` seeds
    /// each, shrinking enabled, no repro files, serial pump.
    pub fn new(runs_per_case: u64, base_seed: u64) -> Self {
        Campaign {
            cases: default_cases(),
            runs_per_case,
            base_seed,
            shrink: true,
            out_dir: None,
            pump: PumpMode::serial(),
        }
    }
}

/// A campaign violation with its (shrunk) reproducer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The reproducer (case, seed, violation, minimal schedule).
    pub repro: ChaosRepro,
    /// Where the reproducer was written, if an output dir was set.
    pub path: Option<PathBuf>,
}

/// Result of a campaign sweep.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Total runs executed.
    pub total_runs: usize,
    /// All invariant violations found (with shrunk reproducers).
    pub violations: Vec<Violation>,
}

/// Runs the campaign: all `cases × runs_per_case` runs fan out over the
/// worker pool (bit-identical results for any thread count), then failing
/// runs are shrunk serially and written as reproducers.
pub fn run_campaign(campaign: &Campaign) -> CampaignReport {
    let rpc = campaign.runs_per_case as usize;
    let total = campaign.cases.len() * rpc;
    // Plane jobs are 'static: move a copy of the (small, Copy-element)
    // case list and base seed into the closure.
    let cases = campaign.cases.clone();
    let base_seed = campaign.base_seed;
    let pump = campaign.pump;
    let failures: Vec<Option<(usize, u64, String)>> = par::run_indexed(total, move |i| {
        let case = &cases[i / rpc];
        let seed = base_seed + i as u64;
        let outcome = run_case_pumped(case, seed, AdvSource::Fresh, pump);
        outcome.violation.map(|v| (i / rpc, seed, v))
    });
    let mut violations = Vec::new();
    for (case_idx, seed, first_violation) in failures.into_iter().flatten() {
        let case = campaign.cases[case_idx];
        let repro = if campaign.shrink {
            shrink_failing(&case, seed)
                .expect("run failed in sweep but not when re-run — nondeterminism bug")
        } else {
            ChaosRepro::from_outcome(&case, seed, run_case(&case, seed, AdvSource::Fresh))
                .unwrap_or_else(|| panic!("unreproducible violation: {first_violation}"))
        };
        let path = campaign
            .out_dir
            .as_deref()
            .map(|dir| write_repro(dir, &repro).expect("write chaos repro"));
        violations.push(Violation { repro, path });
    }
    CampaignReport {
        total_runs: total,
        violations,
    }
}

/// A serializable failing-run reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRepro {
    /// The failing case.
    pub case: CaseConfig,
    /// The failing seed.
    pub seed: u64,
    /// The invariant violated.
    pub violation: String,
    /// Fingerprint of the failing run's report (`None` when the run died
    /// in a termination error instead of completing wrongly).
    pub fingerprint: Option<u64>,
    /// The minimal failing schedule.
    pub trace: ScheduleTrace,
}

impl ChaosRepro {
    fn from_outcome(case: &CaseConfig, seed: u64, outcome: RunOutcome) -> Option<Self> {
        outcome.violation.map(|violation| ChaosRepro {
            case: *case,
            seed,
            violation,
            fingerprint: outcome.fingerprint,
            trace: outcome.trace,
        })
    }

    /// The filename this reproducer is written under.
    pub fn filename(&self) -> String {
        format!("chaos_repro_{:016x}.json", self.trace.content_hash())
    }
}

/// Replays a reproducer's schedule and re-checks all invariants. A valid
/// reproducer yields the same violation and fingerprint again.
pub fn replay_repro(repro: &ChaosRepro) -> RunOutcome {
    run_case(&repro.case, repro.seed, AdvSource::Replay(&repro.trace))
}

/// Writes a reproducer into `dir` (created if missing), named by the
/// schedule's content hash.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_repro(dir: &Path, repro: &ChaosRepro) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(repro.filename());
    std::fs::write(&path, serde::json::to_string_pretty(repro))?;
    Ok(path)
}

/// Loads a reproducer previously written by [`write_repro`].
///
/// # Errors
///
/// Fails on unreadable files or JSON not shaped like a [`ChaosRepro`].
pub fn load_repro(path: &Path) -> Result<ChaosRepro, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    serde::json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
}

/// Shrinks the failing run `(case, seed)` to a 1-minimal failing
/// schedule: repeatedly tries dropping crash directives and mid-send
/// cuts, delivering held sends, widening partial releases to
/// release-all, healing partition and churn directives, and flipping
/// dropped transmissions back to delivered; an edit is kept whenever
/// the replay still violates an
/// invariant. Each kept candidate is replaced by its *re-recorded* trace,
/// so the final schedule is a fixed point of replay (bit-identical
/// reproduction). Returns `None` if the run does not fail.
pub fn shrink_failing(case: &CaseConfig, seed: u64) -> Option<ChaosRepro> {
    let original = run_case(case, seed, AdvSource::Fresh);
    original.violation.as_ref()?;
    let mut best = original;
    // Each pass tries every single-edit reduction once; passes repeat
    // until a fixed point. The cap bounds pathological oscillation.
    for _pass in 0..32 {
        let mut improved = false;
        let try_edit = |best: &mut RunOutcome, cand: ScheduleTrace| -> bool {
            let outcome = run_case(case, seed, AdvSource::Replay(&cand));
            if outcome.violation.is_some() {
                *best = outcome;
                true
            } else {
                false
            }
        };
        // 1. Drop crash directives.
        let mut i = best.trace.crashes.len();
        while i > 0 {
            i -= 1;
            if i >= best.trace.crashes.len() {
                continue;
            }
            let mut cand = best.trace.clone();
            cand.crashes.remove(i);
            improved |= try_edit(&mut best, cand);
        }
        // 2. Drop mid-send cuts.
        let mut i = best.trace.cuts.len();
        while i > 0 {
            i -= 1;
            if i >= best.trace.cuts.len() {
                continue;
            }
            let mut cand = best.trace.clone();
            cand.cuts.remove(i);
            improved |= try_edit(&mut best, cand);
        }
        // 3. Turn held sends into ordinary deliveries.
        let mut i = best.trace.sends.len();
        while i > 0 {
            i -= 1;
            if best.trace.sends.get(i).is_some_and(|s| s.is_none()) {
                let mut cand = best.trace.clone();
                cand.sends[i] = Some(512);
                improved |= try_edit(&mut best, cand);
            }
        }
        // 4. Widen partial releases to release-all.
        let mut i = best.trace.releases.len();
        while i > 0 {
            i -= 1;
            if best.trace.releases.get(i).is_some_and(|r| r.is_some()) {
                let mut cand = best.trace.clone();
                cand.releases[i] = None;
                improved |= try_edit(&mut best, cand);
            }
        }
        // 5. Drop partition directives (heal the cut entirely).
        let mut i = best.trace.partitions.len();
        while i > 0 {
            i -= 1;
            if i >= best.trace.partitions.len() {
                continue;
            }
            let mut cand = best.trace.clone();
            cand.partitions.remove(i);
            improved |= try_edit(&mut best, cand);
        }
        // 6. Drop churn directives (keep the peer present throughout).
        let mut i = best.trace.churn.len();
        while i > 0 {
            i -= 1;
            if i >= best.trace.churn.len() {
                continue;
            }
            let mut cand = best.trace.clone();
            cand.churn.remove(i);
            improved |= try_edit(&mut best, cand);
        }
        // 7. Heal dropped transmissions (flip recorded drops to
        // transmits). The trace stays lossy — `transmits` keeps its
        // length — so the replay's consult positions still align.
        let mut i = best.trace.transmits.len();
        while i > 0 {
            i -= 1;
            if best.trace.transmits.get(i) == Some(&false) {
                let mut cand = best.trace.clone();
                cand.transmits[i] = true;
                improved |= try_edit(&mut best, cand);
            }
        }
        if !improved {
            break;
        }
    }
    // Normalize once more so the stored trace is exactly what replay
    // re-records.
    let outcome = run_case(case, seed, AdvSource::Replay(&best.trace.clone()));
    debug_assert!(outcome.violation.is_some());
    ChaosRepro::from_outcome(case, seed, outcome)
}

/// Message of the [`FragileDownload`] fixture: a balanced-download chunk
/// or a gossip tick.
#[derive(Debug, Clone)]
pub enum FragileMsg {
    /// One peer's share of the input.
    Chunk {
        /// First bit index of the share.
        offset: usize,
        /// The share's bits.
        bits: BitArray,
    },
    /// Branching gossip heartbeat keeping events flowing while chunks
    /// are held: each tick spawns two children with halved budget.
    Tick {
        /// Remaining forwarding budget (halved per generation).
        round: u32,
    },
}

impl ProtocolMessage for FragileMsg {
    fn bit_len(&self) -> usize {
        match self {
            FragileMsg::Chunk { bits, .. } => 64 + bits.len(),
            FragileMsg::Tick { .. } => 32,
        }
    }
}

/// An intentionally broken balanced download: peers gossip heartbeat
/// ticks (a branching tree, so traffic persists even when an adversary
/// holds parts of it) and, after processing `patience` messages without
/// completing, "impatiently" zero-fill whatever bits they are still
/// missing and terminate. Correct under benign schedules (all chunks
/// arrive within one latency unit, long before patience runs out); wrong
/// the moment an adversary holds a chunk while gossip keeps the peer
/// busy — exactly the bug class the chaos campaign exists to catch.
/// Deterministic, so every failure replays bit-identically.
pub struct FragileDownload {
    k: usize,
    acc: PartialArray,
    out: Option<BitArray>,
    msgs_processed: u32,
    patience: u32,
}

impl FragileDownload {
    /// Gossip budget of the tick tree each peer starts (total ticks per
    /// tree is `O(budget)` since the budget halves per generation).
    const GOSSIP_ROUNDS: u32 = 400;
    /// Messages processed before the buggy zero-fill fires.
    const PATIENCE: u32 = 64;

    /// Creates the fixture for `n` bits and `k` peers.
    pub fn new(n: usize, k: usize) -> Self {
        FragileDownload {
            k,
            acc: PartialArray::new(n),
            out: None,
            msgs_processed: 0,
            patience: Self::PATIENCE,
        }
    }

    fn check_done(&mut self) {
        if self.out.is_none() && self.acc.is_complete() {
            self.out = Some(self.acc.clone().into_complete());
        }
    }

    fn impatient_fallback(&mut self) {
        if self.out.is_some() || self.msgs_processed < self.patience {
            return;
        }
        // BUG (intentional): assumes unheard shares are all zero.
        let missing: Vec<usize> = self.acc.unknown_iter().collect();
        for j in missing {
            self.acc.learn(j, false);
        }
        self.check_done();
    }
}

impl Protocol for FragileDownload {
    type Msg = FragileMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<FragileMsg>) {
        let n = ctx.input_len();
        let per = n.div_ceil(self.k);
        let me = ctx.me().index();
        let range = (me * per).min(n)..((me + 1) * per).min(n);
        let bits = ctx.query_range(range.clone());
        self.acc.learn_slice(range.start, &bits);
        ctx.broadcast(FragileMsg::Chunk {
            offset: range.start,
            bits,
        });
        ctx.send(
            PeerId((me + 1) % self.k),
            FragileMsg::Tick {
                round: Self::GOSSIP_ROUNDS,
            },
        );
        self.check_done();
    }

    fn on_message(&mut self, _from: PeerId, msg: FragileMsg, ctx: &mut dyn Context<FragileMsg>) {
        self.msgs_processed += 1;
        match msg {
            FragileMsg::Chunk { offset, bits } => {
                self.acc.learn_slice(offset, &bits);
                self.check_done();
            }
            FragileMsg::Tick { round } => {
                if round > 0 {
                    // Two children with halved budget: the tree is
                    // supercritical under moderate hold rates (expected
                    // 2 × P(delivered) > 1 surviving children), so gossip
                    // keeps peers busy across quiescences while a held
                    // chunk starves them.
                    let me = ctx.me().index();
                    for hop in [1, 2] {
                        ctx.send(
                            PeerId((me + hop) % self.k),
                            FragileMsg::Tick { round: round / 2 },
                        );
                    }
                }
            }
        }
        self.impatient_fallback();
    }

    fn output(&self) -> Option<&BitArray> {
        self.out.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_roundtrips_through_json() {
        let repro = ChaosRepro {
            case: CaseConfig {
                protocol: ProtocolKind::Fragile,
                adversary: AdversaryKind::ChaosAggressive,
                n: 64,
                k: 4,
                b: 0,
                drop_permille: 0,
            },
            seed: 17,
            violation: "download: wrong bit".into(),
            fingerprint: Some(0xdead_beef),
            trace: ScheduleTrace {
                start_offsets: vec![3, 1],
                sends: vec![Some(9), None],
                releases: vec![None],
                crashes: vec![],
                cuts: vec![],
                ..Default::default()
            },
        };
        let text = serde::json::to_string_pretty(&repro);
        let back: ChaosRepro = serde::json::from_str(&text).unwrap();
        assert_eq!(back, repro);
    }

    #[test]
    fn fragile_download_is_correct_when_benign() {
        // Without an adversary the fixture behaves like balanced
        // download: every chunk lands well before patience runs out.
        for seed in 0..8 {
            let case = CaseConfig {
                protocol: ProtocolKind::Fragile,
                adversary: AdversaryKind::AdaptiveCrash,
                n: 64,
                k: 4,
                b: 0,
                drop_permille: 0,
            };
            let outcome = run_case(&case, seed, AdvSource::Fresh);
            assert_eq!(outcome.violation, None, "seed {seed}");
        }
    }

    #[test]
    fn fault_budget_split_respects_joint_budget() {
        let case = CaseConfig {
            protocol: ProtocolKind::TwoCycle,
            adversary: AdversaryKind::ChaosMild,
            n: 64,
            k: 8,
            b: 2,
            drop_permille: 0,
        };
        assert_eq!(case.byz_count(), 1);
        assert_eq!(case.crash_budget(), 1);
        assert_eq!(case.byz_count() + case.crash_budget(), case.b);
    }
}
