//! The unified work-stealing execution plane.
//!
//! One process-wide pool schedules **both** levels of bench parallelism:
//!
//! * **trial jobs** — whole simulation runs fanned out by
//!   [`run_indexed`] (experiment trials, chaos campaign runs), and
//! * **window jobs** — intra-trial per-shard lane tasks submitted by the
//!   simulator through [`PlaneExecutor`] (see
//!   [`dr_sim::WindowExecutor`]).
//!
//! Both kinds share a single two-priority deque: window jobs enter at
//! the **front**, trial jobs at the **back**. A worker that finishes a
//! trial therefore steals pending lane work from still-running trials
//! before starting the next trial, and lane work never starves behind a
//! long backlog of queued trials.
//!
//! # Blocking discipline (deadlock freedom)
//!
//! Submitters never park while work they could run sits in the queue —
//! they *help*:
//!
//! * a [`run_indexed`] caller pops **anything** (it is a top-level
//!   frame; running a stolen trial merely nests a bounded trial→window
//!   DAG),
//! * a [`PlaneExecutor::run_jobs`] caller pops **window jobs only** — it
//!   sits inside a trial, and popping another whole trial there would
//!   recurse unboundedly.
//!
//! A submitter parks (on its batch's completion queue) only when none of
//! its jobs are poppable, which means every unfinished job is *running*
//! on some other thread and will signal completion; hence no lost
//! wakeups and no cycles. Jobs themselves never block on other jobs.
//!
//! These claims are not just argued here: the protocol lives in
//! [`core::PlaneCore`], built on the [`crate::sync`] facade, and
//! `tests/loom_plane.rs` model-checks them exhaustively under the
//! `loom-model` feature (every interleaving of push/pop/park/wakeup/
//! panic-forwarding on small batches).
//!
//! Workers are spawned lazily and grow-only: the pool keeps the largest
//! worker count any submission has asked for. Idle workers park on a
//! condvar and cost nothing. Panics inside jobs are caught, forwarded
//! through the completion queue, and resumed on the submitting thread.
//!
//! # Determinism
//!
//! The plane schedules; it never reorders results. [`run_indexed`]
//! returns results in index order regardless of completion order, and
//! window jobs only ever carry the simulator's pass-1 lane work, whose
//! bit-identity argument lives in `dr_sim`'s lane module. Thread count
//! (including 1, which runs everything inline) never changes any
//! reported value.

// Model tests need to instantiate fresh cores; normal builds keep the
// synchronization internals private to the plane.
#[cfg(feature = "loom-model")]
pub mod core;
#[cfg(not(feature = "loom-model"))]
pub(crate) mod core;

// The process-global knobs below stay on raw std atomics deliberately:
// loom primitives cannot live in statics (each model execution must create
// its own instrumented objects), and these atomics carry no cross-thread
// data — they are monotonic config/bookkeeping cells (DESIGN.md §4).
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use dr_sim::WindowExecutor;

use self::core::PlaneCore;

/// Name of the environment variable consulted by [`thread_count`].
pub const THREADS_ENV: &str = "DR_BENCH_THREADS";

/// Process-wide override set by [`set_threads`]; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for the whole process (e.g. from a
/// `--threads` CLI flag). Passing 0 clears the override. Already-spawned
/// workers are never torn down (they park when idle); lowering the count
/// only limits how much new submissions fan out.
pub fn set_threads(n: usize) {
    // dr-lint: allow(atomic-ordering): lone config cell, no other memory depends on it
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker threads submissions fan out over: the [`set_threads`] override,
/// else `DR_BENCH_THREADS`, else the machine's available parallelism.
pub fn thread_count() -> usize {
    // dr-lint: allow(atomic-ordering): lone config cell, no other memory depends on it
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide plane: the model-checked core plus the grow-only
/// worker accounting that only makes sense as a singleton.
struct Plane {
    core: PlaneCore,
    /// Workers spawned so far (grow-only).
    workers: AtomicUsize,
}

fn plane() -> &'static Plane {
    static PLANE: OnceLock<Plane> = OnceLock::new();
    PLANE.get_or_init(|| Plane {
        core: PlaneCore::new(),
        workers: AtomicUsize::new(0),
    })
}

impl Plane {
    /// Grows the pool to at least `want` workers.
    fn ensure_workers(&self, want: usize) {
        loop {
            // dr-lint: allow(atomic-ordering): spawn-count gate only; the spawn itself synchronizes
            let cur = self.workers.load(Ordering::Relaxed);
            if cur >= want {
                return;
            }
            if self
                .workers
                // dr-lint: allow(atomic-ordering): CAS decides which thread spawns worker `cur`; no data is published through it
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                std::thread::Builder::new()
                    .name(format!("dr-plane-{cur}"))
                    .spawn(|| plane().core.worker_loop())
                    .expect("spawn plane worker");
            }
        }
    }
}

/// Runs `f(0..count)` across the plane and returns the results **in
/// index order** (bit-identical to a serial loop for any thread count).
/// Runs inline when the plane would use a single thread.
///
/// The closure must be `'static`: jobs outlive the submitting stack
/// frame on persistent workers, so captures are moved (clone or
/// `Arc`-wrap shared data at the call site).
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    run_indexed_streaming(count, f, |_, _| ())
}

/// [`run_indexed`], additionally invoking `on_done(index, &result)` on
/// the submitting thread **in completion order** as each job finishes —
/// the hook for streaming progress while the index-ordered aggregate
/// stays bit-identical. The callback must not submit plane work.
pub fn run_indexed_streaming<T, F, C>(count: usize, f: F, mut on_done: C) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
    C: FnMut(usize, &T),
{
    let workers = thread_count().min(count);
    if workers <= 1 {
        return (0..count)
            .map(|i| {
                let v = f(i);
                on_done(i, &v);
                v
            })
            .collect();
    }
    let p = plane();
    p.ensure_workers(workers - 1);

    let f = Arc::new(f);
    let jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>> = (0..count)
        .map(|i| {
            let f = Arc::clone(&f);
            let job: Box<dyn FnOnce() -> T + Send + 'static> = Box::new(move || f(i));
            job
        })
        .collect();
    p.core.run_batch(jobs, false, |i, v| on_done(i, v))
}

/// [`dr_sim::WindowExecutor`] backed by the plane: lane jobs are pushed
/// to the front of the shared queue and the calling thread helps run
/// window work until its own batch completes.
///
/// `threads` is the desired *window-level* parallelism, independent of
/// the trial-level [`thread_count`] (a `--pump-threads 4` run must fan
/// its lanes out even when trials are serial). At `threads <= 1` the
/// batch runs inline on the caller.
#[derive(Debug, Clone, Copy)]
pub struct PlaneExecutor {
    threads: usize,
}

impl PlaneExecutor {
    /// An executor fanning window jobs over `threads` threads (the
    /// caller counts as one).
    pub fn new(threads: usize) -> Self {
        PlaneExecutor { threads }
    }

    /// The configured window-level thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl WindowExecutor for PlaneExecutor {
    fn run_jobs(&self, jobs: Vec<Box<dyn FnOnce() + Send>>) {
        if self.threads <= 1 || jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let p = plane();
        p.ensure_workers(self.threads - 1);
        p.core.run_batch(jobs, true, |_, _| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        set_threads(4);
        let got = run_indexed(37, |i| i * i);
        set_threads(0);
        let want: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_thread_runs_inline() {
        set_threads(1);
        let got = run_indexed(5, |i| i + 1);
        set_threads(0);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_count_yields_empty() {
        assert_eq!(run_indexed(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn streaming_sees_every_index_once() {
        set_threads(3);
        let mut seen = vec![0u32; 20];
        let got = run_indexed_streaming(
            20,
            |i| i,
            |i, &v| {
                assert_eq!(i, v);
                seen[i] += 1;
            },
        );
        set_threads(0);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(seen, vec![1; 20]);
    }

    #[test]
    fn executor_runs_every_job() {
        use std::sync::atomic::AtomicU32;
        let hits = Arc::new(AtomicU32::new(0));
        let ex = PlaneExecutor::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                let hits = Arc::clone(&hits);
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    // dr-lint: allow(atomic-ordering): test counter, read only after the batch barrier
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                job
            })
            .collect();
        ex.run_jobs(jobs);
        // dr-lint: allow(atomic-ordering): test counter, read only after the batch barrier
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn executor_single_thread_is_inline() {
        let ex = PlaneExecutor::new(1);
        let mut ran = false;
        // A non-Send-hostile check: inline execution happens on this
        // thread, so a borrowed flag would not even compile if jobs were
        // shipped to workers; use a channel to stay within 'static.
        let (tx, rx) = crossbeam::channel::unbounded();
        ex.run_jobs(vec![Box::new(move || tx.send(()).unwrap())]);
        if rx.try_recv().is_ok() {
            ran = true;
        }
        assert!(ran);
    }

    #[test]
    fn trials_and_window_jobs_share_the_plane() {
        // Trials that each fan out window jobs: exercises the nested
        // help path (window submitters inside trial jobs).
        set_threads(4);
        let got = run_indexed(8, |t| {
            let ex = PlaneExecutor::new(2);
            let sum = Arc::new(AtomicUsize::new(0));
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|j| {
                    let sum = Arc::clone(&sum);
                    let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                        // dr-lint: allow(atomic-ordering): test counter, read only after the batch barrier
                        sum.fetch_add(t * 10 + j, Ordering::Relaxed);
                    });
                    job
                })
                .collect();
            ex.run_jobs(jobs);
            // dr-lint: allow(atomic-ordering): test counter, read only after the batch barrier
            sum.load(Ordering::Relaxed)
        });
        set_threads(0);
        let want: Vec<usize> = (0..8).map(|t| 4 * (t * 10) + 6).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn job_panics_propagate_to_the_submitter() {
        set_threads(2);
        let out = std::panic::catch_unwind(|| {
            run_indexed(6, |i| {
                if i == 3 {
                    panic!("boom in trial 3");
                }
                i
            })
        });
        set_threads(0);
        assert!(out.is_err());
    }
}
